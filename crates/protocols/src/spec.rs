//! Declarative, serde-able protocol configuration.
//!
//! A [`ProtocolSpec`] is a plain data value describing *which* protocol to
//! run and *how strongly* to randomize — the whole configuration surface of
//! the paper's four mechanisms in one `Serialize`/`Deserialize` enum.
//! Experiments, the streaming simulator and examples select protocols by
//! deserializing a spec (from JSON, a config file, a CLI flag) and calling
//! [`ProtocolSpec::build`], instead of hard-coding per-protocol
//! constructor calls:
//!
//! ```
//! use mdrr_data::{Attribute, Schema};
//! use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
//!
//! let schema = Schema::new(vec![
//!     Attribute::indexed("A", 3)?,
//!     Attribute::indexed("B", 2)?,
//! ])?;
//! let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
//!
//! // Specs round-trip through JSON…
//! let json = serde_json::to_string(&spec).expect("serializable");
//! let restored: ProtocolSpec = serde_json::from_str(&json).expect("deserializable");
//! assert_eq!(spec, restored);
//!
//! // …and build ready-to-run trait objects.
//! let protocol = restored.build(&schema)?;
//! assert_eq!(protocol.name(), "RR-Independent");
//! assert_eq!(protocol.channel_sizes(), vec![3, 2]);
//! # Ok::<(), mdrr_protocols::MdrrError>(())
//! ```

use crate::adjustment::{AdjustmentConfig, RRAdjustment};
use crate::clustering::Clustering;
use crate::clusters::RRClusters;
use crate::error::MdrrError;
use crate::independent::RRIndependent;
use crate::joint::RRJoint;
use crate::protocol::{Protocol, RandomizationLevel};
use mdrr_data::Schema;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A declarative description of one of the paper's protocols, constructible
/// from configuration data.
///
/// The [`RandomizationLevel`] of every variant names the *per-attribute*
/// randomization strength RR-Independent would use.  `Joint` and `Clusters`
/// spend those budgets jointly through the Section 6.3.2 equivalent-risk
/// construction by default (`equivalent_risk: true`), so one level buys the
/// same total differential-privacy guarantee under every protocol; with
/// `equivalent_risk: false` they instead apply the keep-probability
/// mechanism directly over each joint domain (the paper's ablation shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProtocolSpec {
    /// Protocol 1: per-attribute randomized response.
    Independent {
        /// Strength of the per-attribute randomization.
        level: RandomizationLevel,
    },
    /// Protocol 2: a single randomized response over the full joint domain.
    Joint {
        /// Strength of the randomization (see the enum docs for how the
        /// per-attribute level maps onto the joint matrix).
        level: RandomizationLevel,
        /// Cap on the joint-domain size
        /// ([`crate::DEFAULT_MAX_JOINT_DOMAIN`] when `None`).
        max_domain: Option<usize>,
        /// `true`: equivalent-risk matrix for `Σ_A ε_A` (Section 6.3.2);
        /// `false`: the level's mechanism applied directly over the joint
        /// domain.
        equivalent_risk: bool,
    },
    /// RR-Clusters: RR-Joint within each cluster of a fixed clustering.
    Clusters {
        /// Strength of the randomization.
        level: RandomizationLevel,
        /// The attribute clustering (explicit; derive one with
        /// [`crate::cluster_attributes`] before building the spec).
        clustering: Clustering,
        /// `true`: per-cluster equivalent-risk matrices (Section 6.3.2);
        /// `false`: the keep-probability mechanism directly over each
        /// cluster's joint domain.
        equivalent_risk: bool,
    },
    /// Algorithm 2: any base protocol followed by RR-Adjustment.
    Adjusted {
        /// The protocol whose release is adjusted.
        base: Box<ProtocolSpec>,
        /// Termination parameters of the iterative fitting.
        config: AdjustmentConfig,
    },
}

impl ProtocolSpec {
    /// Spec for RR-Independent at `level`.
    pub fn independent(level: RandomizationLevel) -> Self {
        ProtocolSpec::Independent { level }
    }

    /// Spec for equivalent-risk RR-Joint at `level` with the default
    /// domain cap.
    pub fn joint(level: RandomizationLevel) -> Self {
        ProtocolSpec::Joint {
            level,
            max_domain: None,
            equivalent_risk: true,
        }
    }

    /// Spec for equivalent-risk RR-Clusters at `level` over `clustering`.
    pub fn clusters(level: RandomizationLevel, clustering: Clustering) -> Self {
        ProtocolSpec::Clusters {
            level,
            clustering,
            equivalent_risk: true,
        }
    }

    /// Spec for RR-Adjustment stacked on `self`.
    #[must_use]
    pub fn adjusted(self, config: AdjustmentConfig) -> Self {
        ProtocolSpec::Adjusted {
            base: Box::new(self),
            config,
        }
    }

    /// Display label of the described protocol (without building it).
    pub fn label(&self) -> String {
        match self {
            ProtocolSpec::Independent { .. } => "RR-Independent".to_string(),
            ProtocolSpec::Joint { .. } => "RR-Joint".to_string(),
            ProtocolSpec::Clusters { .. } => "RR-Clusters".to_string(),
            ProtocolSpec::Adjusted { base, .. } => format!("{} + RR-Adjustment", base.label()),
        }
    }

    /// Builds the described protocol for `schema` as a boxed trait object.
    ///
    /// # Errors
    /// Propagates the constructor errors of the concrete protocol
    /// (invalid level, domain cap exceeded, clustering/schema mismatch, …).
    pub fn build(&self, schema: &Schema) -> Result<Box<dyn Protocol>, MdrrError> {
        match self {
            ProtocolSpec::Independent { level } => {
                Ok(Box::new(RRIndependent::new(schema.clone(), level)?))
            }
            ProtocolSpec::Joint {
                level,
                max_domain,
                equivalent_risk,
            } => {
                let joint = if *equivalent_risk {
                    RRJoint::with_level(schema.clone(), level, *max_domain)?
                } else {
                    match level {
                        RandomizationLevel::KeepProbability(p) => {
                            RRJoint::with_keep_probability(schema.clone(), *p, *max_domain)?
                        }
                        RandomizationLevel::EpsilonPerAttribute(eps) => {
                            RRJoint::with_epsilon(schema.clone(), *eps, *max_domain)?
                        }
                        RandomizationLevel::Epsilons(_) => {
                            return Err(MdrrError::config(
                                "per-attribute budget lists require equivalent_risk: true \
                                 for RR-Joint (a direct joint matrix has a single budget)",
                            ));
                        }
                    }
                };
                Ok(Box::new(joint))
            }
            ProtocolSpec::Clusters {
                level,
                clustering,
                equivalent_risk,
            } => {
                let clusters = if *equivalent_risk {
                    RRClusters::with_level(schema.clone(), clustering.clone(), level)?
                } else {
                    match level {
                        RandomizationLevel::KeepProbability(p) => {
                            RRClusters::with_keep_probability(
                                schema.clone(),
                                clustering.clone(),
                                *p,
                            )?
                        }
                        _ => {
                            return Err(MdrrError::config(
                                "equivalent_risk: false for RR-Clusters requires a \
                                 KeepProbability level (the direct mechanism is the \
                                 per-cluster uniform-keep ablation)",
                            ));
                        }
                    }
                };
                Ok(Box::new(clusters))
            }
            ProtocolSpec::Adjusted { base, config } => {
                if matches!(**base, ProtocolSpec::Adjusted { .. }) {
                    // An adjusted release already matches its targets, so a
                    // second adjustment could never run; fail at build time
                    // instead of on the first run().
                    return Err(MdrrError::config(
                        "RR-Adjustment cannot stack on an already-adjusted protocol; \
                         adjust the base protocol once",
                    ));
                }
                let base = base.build_arc(schema)?;
                Ok(Box::new(RRAdjustment::new(base, *config)))
            }
        }
    }

    /// Builds the described protocol as an `Arc<dyn Protocol>` — the shape
    /// the sharded streaming collector and other shared consumers take.
    ///
    /// # Errors
    /// Same conditions as [`ProtocolSpec::build`].
    pub fn build_arc(&self, schema: &Schema) -> Result<Arc<dyn Protocol>, MdrrError> {
        Ok(Arc::from(self.build(schema)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::indexed("A", 3).unwrap(),
            Attribute::indexed("B", 2).unwrap(),
            Attribute::indexed("C", 2).unwrap(),
        ])
        .unwrap()
    }

    fn clustering() -> Clustering {
        Clustering::new(vec![vec![0, 1], vec![2]], 3).unwrap()
    }

    #[test]
    fn specs_build_every_protocol_shape() {
        let s = schema();
        let level = RandomizationLevel::KeepProbability(0.7);

        let independent = ProtocolSpec::independent(level.clone()).build(&s).unwrap();
        assert_eq!(independent.channel_sizes(), vec![3, 2, 2]);

        let joint = ProtocolSpec::joint(level.clone()).build(&s).unwrap();
        assert_eq!(joint.channel_sizes(), vec![12]);

        let clusters = ProtocolSpec::clusters(level.clone(), clustering())
            .build(&s)
            .unwrap();
        assert_eq!(clusters.channel_sizes(), vec![6, 2]);

        let adjusted = ProtocolSpec::independent(level)
            .adjusted(AdjustmentConfig::default())
            .build(&s)
            .unwrap();
        assert_eq!(adjusted.name(), "RR-Independent + RR-Adjustment");
        assert_eq!(adjusted.channel_sizes(), vec![3, 2, 2]);
    }

    #[test]
    fn equivalent_risk_specs_spend_the_independent_budget() {
        let s = schema();
        let level = RandomizationLevel::KeepProbability(0.7);
        let independent = ProtocolSpec::independent(level.clone()).build(&s).unwrap();
        let joint = ProtocolSpec::joint(level.clone()).build(&s).unwrap();
        let clusters = ProtocolSpec::clusters(level, clustering())
            .build(&s)
            .unwrap();
        let total = independent.total_epsilon();
        assert!((joint.total_epsilon() - total).abs() < 1e-9);
        assert!((clusters.total_epsilon() - total).abs() < 1e-9);
    }

    #[test]
    fn direct_specs_match_the_legacy_constructors() {
        let s = schema();
        let spec = ProtocolSpec::Joint {
            level: RandomizationLevel::KeepProbability(0.5),
            max_domain: None,
            equivalent_risk: false,
        };
        let direct = spec.build(&s).unwrap();
        let legacy = RRJoint::with_keep_probability(s.clone(), 0.5, None).unwrap();
        assert_eq!(direct.epsilons(), Protocol::epsilons(&legacy));

        let spec = ProtocolSpec::Clusters {
            level: RandomizationLevel::KeepProbability(0.5),
            clustering: clustering(),
            equivalent_risk: false,
        };
        let direct = spec.build(&s).unwrap();
        let legacy = RRClusters::with_keep_probability(s, clustering(), 0.5).unwrap();
        assert_eq!(direct.epsilons(), Protocol::epsilons(&legacy));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let s = schema();
        // Budget lists cannot drive a direct joint matrix.
        assert!(ProtocolSpec::Joint {
            level: RandomizationLevel::Epsilons(vec![1.0, 1.0, 1.0]),
            max_domain: None,
            equivalent_risk: false,
        }
        .build(&s)
        .is_err());
        // Direct clusters require a keep probability.
        assert!(ProtocolSpec::Clusters {
            level: RandomizationLevel::EpsilonPerAttribute(1.0),
            clustering: clustering(),
            equivalent_risk: false,
        }
        .build(&s)
        .is_err());
        // Domain caps still apply.
        assert!(ProtocolSpec::Joint {
            level: RandomizationLevel::KeepProbability(0.5),
            max_domain: Some(5),
            equivalent_risk: true,
        }
        .build(&s)
        .is_err());
        // Constructor validation propagates.
        assert!(
            ProtocolSpec::independent(RandomizationLevel::KeepProbability(1.5))
                .build(&s)
                .is_err()
        );
        // Double adjustment can never produce a release; rejected at build.
        let config = AdjustmentConfig::default();
        assert!(
            ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.5))
                .adjusted(config)
                .adjusted(config)
                .build(&s)
                .is_err()
        );
    }

    #[test]
    fn labels_describe_the_stack() {
        let spec = ProtocolSpec::clusters(RandomizationLevel::KeepProbability(0.7), clustering())
            .adjusted(AdjustmentConfig::default());
        assert_eq!(spec.label(), "RR-Clusters + RR-Adjustment");
    }

    #[test]
    fn json_round_trip_preserves_nested_specs() {
        let spec = ProtocolSpec::clusters(
            RandomizationLevel::Epsilons(vec![0.5, 1.0, 2.0]),
            clustering(),
        )
        .adjusted(AdjustmentConfig::new(25, 1e-8).unwrap());
        let json = serde_json::to_string(&spec).unwrap();
        let restored: ProtocolSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, restored);
    }
}
