//! Synthetic microdata re-creation from an estimated joint distribution.
//!
//! The paper points out (Sections 1 and 3.2) that once the joint
//! distribution of the true data has been estimated, anyone can re-create a
//! synthetic estimate of the original data set by repeating each value
//! combination as many times as dictated by its estimated frequency.  Two
//! variants are provided:
//!
//! * [`synthesize_deterministic`] — deterministic largest-remainder
//!   rounding of `n × π̂`, the direct reading of the paper;
//! * [`synthesize_sampling`] — i.i.d. sampling from `π̂`, useful when the
//!   target size is much larger than the domain or when several independent
//!   synthetic replicas are wanted.
//!
//! Both work over an arbitrary subset of attributes (usually a cluster or
//! the whole schema for small domains).

use crate::error::ProtocolError;
use mdrr_data::{Dataset, JointDomain, Schema};
use rand::Rng;

/// Deterministically synthesizes `n` records over the attributes at
/// `attributes` from an estimated joint distribution over their joint
/// domain: each combination appears `round(n · π̂)` times, with
/// largest-remainder correction so the total is exactly `n`.
///
/// The resulting dataset's schema is the projection of `schema` onto
/// `attributes` (in that order).
///
/// # Errors
/// Returns [`ProtocolError::InvalidConfiguration`] if the distribution
/// length does not match the joint domain, is not a probability vector, or
/// `n == 0`.
pub fn synthesize_deterministic(
    schema: &Schema,
    attributes: &[usize],
    distribution: &[f64],
    n: usize,
) -> Result<Dataset, ProtocolError> {
    let (projected, domain) = prepare(schema, attributes, distribution, n)?;

    // Largest-remainder (Hamilton) apportionment of n records.
    let mut floors = vec![0usize; distribution.len()];
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(distribution.len());
    let mut assigned = 0usize;
    for (cell, &p) in distribution.iter().enumerate() {
        let exact = p * n as f64;
        let floor = exact.floor() as usize;
        floors[cell] = floor;
        assigned += floor;
        remainders.push((exact - floor as f64, cell));
    }
    remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut leftover = n.saturating_sub(assigned);
    for &(_, cell) in &remainders {
        if leftover == 0 {
            break;
        }
        floors[cell] += 1;
        leftover -= 1;
    }

    let mut dataset = Dataset::empty(projected);
    for (cell, &count) in floors.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let record = domain.decode(cell)?;
        for _ in 0..count {
            dataset.push_record(&record)?;
        }
    }
    Ok(dataset)
}

/// Synthesizes `n` records by i.i.d. sampling from the estimated joint
/// distribution.
///
/// # Errors
/// Same conditions as [`synthesize_deterministic`].
pub fn synthesize_sampling(
    schema: &Schema,
    attributes: &[usize],
    distribution: &[f64],
    n: usize,
    rng: &mut impl Rng,
) -> Result<Dataset, ProtocolError> {
    let (projected, domain) = prepare(schema, attributes, distribution, n)?;
    let mut dataset = Dataset::empty(projected);
    for _ in 0..n {
        let mut draw: f64 = rng.gen();
        let mut chosen = distribution.len() - 1;
        for (cell, &p) in distribution.iter().enumerate() {
            draw -= p;
            if draw <= 0.0 {
                chosen = cell;
                break;
            }
        }
        dataset.push_record(&domain.decode(chosen)?)?;
    }
    Ok(dataset)
}

fn prepare(
    schema: &Schema,
    attributes: &[usize],
    distribution: &[f64],
    n: usize,
) -> Result<(Schema, JointDomain), ProtocolError> {
    if n == 0 {
        return Err(ProtocolError::config(
            "synthetic dataset size must be positive",
        ));
    }
    if attributes.is_empty() {
        return Err(ProtocolError::config("at least one attribute is required"));
    }
    let projected = schema.project(attributes)?;
    let domain = JointDomain::new(&projected.cardinalities())?;
    if domain.size() != distribution.len() {
        return Err(ProtocolError::config(format!(
            "distribution has {} probabilities but the joint domain has {} combinations",
            distribution.len(),
            domain.size()
        )));
    }
    if !mdrr_math::is_probability_vector(distribution, 1e-6) {
        return Err(ProtocolError::config(
            "distribution must be a probability vector",
        ));
    }
    Ok((projected, domain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::{Attribute, AttributeKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("A", AttributeKind::Nominal, vec!["a".into(), "b".into()]).unwrap(),
            Attribute::new(
                "B",
                AttributeKind::Nominal,
                vec!["x".into(), "y".into(), "z".into()],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn validation_errors() {
        let s = schema();
        let uniform = vec![1.0 / 6.0; 6];
        assert!(synthesize_deterministic(&s, &[0, 1], &uniform, 0).is_err());
        assert!(synthesize_deterministic(&s, &[], &uniform, 10).is_err());
        assert!(synthesize_deterministic(&s, &[0, 1], &[0.5, 0.5], 10).is_err());
        assert!(synthesize_deterministic(&s, &[0, 1], &[0.3; 6], 10).is_err());
        assert!(synthesize_deterministic(&s, &[0, 9], &uniform, 10).is_err());
    }

    #[test]
    fn deterministic_synthesis_matches_expected_counts() {
        let s = schema();
        // Distribution over the pair (A, B): put mass on three cells.
        let mut dist = vec![0.0; 6];
        dist[0] = 0.5; // (a, x)
        dist[4] = 0.3; // (b, y)
        dist[5] = 0.2; // (b, z)
        let ds = synthesize_deterministic(&s, &[0, 1], &dist, 10).unwrap();
        assert_eq!(ds.n_records(), 10);
        assert_eq!(ds.count_matching(&[(0, 0), (1, 0)]).unwrap(), 5);
        assert_eq!(ds.count_matching(&[(0, 1), (1, 1)]).unwrap(), 3);
        assert_eq!(ds.count_matching(&[(0, 1), (1, 2)]).unwrap(), 2);
    }

    #[test]
    fn deterministic_synthesis_handles_rounding_with_largest_remainder() {
        let s = schema();
        // 1/3 each over three cells with n = 10: counts must be 4/3/3 in
        // some order and always total 10.
        let mut dist = vec![0.0; 6];
        dist[0] = 1.0 / 3.0;
        dist[1] = 1.0 / 3.0;
        dist[2] = 1.0 / 3.0;
        let ds = synthesize_deterministic(&s, &[0, 1], &dist, 10).unwrap();
        assert_eq!(ds.n_records(), 10);
        let counts: Vec<u64> = (0..3)
            .map(|b| ds.count_matching(&[(0, 0), (1, b as u32)]).unwrap())
            .collect();
        assert_eq!(counts.iter().sum::<u64>(), 10);
        assert!(counts.iter().all(|&c| c == 3 || c == 4));
    }

    #[test]
    fn single_attribute_synthesis_uses_projected_schema() {
        let s = schema();
        let dist = vec![0.25, 0.75];
        let ds = synthesize_deterministic(&s, &[0], &dist, 8).unwrap();
        assert_eq!(ds.n_attributes(), 1);
        assert_eq!(ds.schema().attribute(0).unwrap().name(), "A");
        assert_eq!(ds.marginal_counts(0).unwrap(), vec![2, 6]);
    }

    #[test]
    fn sampling_synthesis_approximates_the_distribution() {
        let s = schema();
        let mut dist = vec![0.0; 6];
        dist[0] = 0.7;
        dist[5] = 0.3;
        let mut rng = StdRng::seed_from_u64(3);
        let ds = synthesize_sampling(&s, &[0, 1], &dist, 20_000, &mut rng).unwrap();
        assert_eq!(ds.n_records(), 20_000);
        let f0 = ds.count_matching(&[(0, 0), (1, 0)]).unwrap() as f64 / 20_000.0;
        let f5 = ds.count_matching(&[(0, 1), (1, 2)]).unwrap() as f64 / 20_000.0;
        assert!((f0 - 0.7).abs() < 0.02);
        assert!((f5 - 0.3).abs() < 0.02);
    }

    #[test]
    fn synthesis_roundtrips_an_empirical_distribution() {
        // Estimate → synthesize → re-estimate gives back the original
        // distribution (up to rounding).
        let s = schema();
        let original = Dataset::from_records(
            s.clone(),
            &[vec![0, 0], vec![0, 0], vec![1, 2], vec![1, 1], vec![0, 2]],
        )
        .unwrap();
        let (_, dist) = original.joint_distribution(&[0, 1]).unwrap();
        let synthetic = synthesize_deterministic(&s, &[0, 1], &dist, 5).unwrap();
        let (_, dist_back) = synthetic.joint_distribution(&[0, 1]).unwrap();
        for (a, b) in dist.iter().zip(dist_back.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
