//! Error type for the multi-dimensional RR protocols.

use mdrr_core::CoreError;
use mdrr_data::DataError;
use mdrr_math::MathError;
use std::fmt;

/// Errors produced by the protocol layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// An error bubbled up from the core RR mechanism.
    Core(CoreError),
    /// An error bubbled up from the dataset layer.
    Data(DataError),
    /// An error bubbled up from the numerical substrate.
    Math(MathError),
    /// A protocol configuration was invalid (empty cluster, bad thresholds,
    /// mismatched attribute lists, …).
    InvalidConfiguration {
        /// Description of the violated constraint.
        message: String,
    },
    /// A query referenced attributes the release cannot answer (e.g. an
    /// attribute missing from every cluster estimate).
    UnsupportedQuery {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Core(e) => write!(f, "core error: {e}"),
            ProtocolError::Data(e) => write!(f, "data error: {e}"),
            ProtocolError::Math(e) => write!(f, "math error: {e}"),
            ProtocolError::InvalidConfiguration { message } => {
                write!(f, "invalid protocol configuration: {message}")
            }
            ProtocolError::UnsupportedQuery { message } => {
                write!(f, "unsupported query: {message}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Core(e) => Some(e),
            ProtocolError::Data(e) => Some(e),
            ProtocolError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ProtocolError {
    fn from(e: CoreError) -> Self {
        ProtocolError::Core(e)
    }
}

impl From<DataError> for ProtocolError {
    fn from(e: DataError) -> Self {
        ProtocolError::Data(e)
    }
}

impl From<MathError> for ProtocolError {
    fn from(e: MathError) -> Self {
        ProtocolError::Math(e)
    }
}

impl ProtocolError {
    /// Convenience constructor for [`ProtocolError::InvalidConfiguration`].
    pub fn config(message: impl Into<String>) -> Self {
        ProtocolError::InvalidConfiguration {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`ProtocolError::UnsupportedQuery`].
    pub fn unsupported(message: impl Into<String>) -> Self {
        ProtocolError::UnsupportedQuery {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let c: ProtocolError = CoreError::invalid("p", "bad").into();
        assert!(c.to_string().contains("core error"));
        let d: ProtocolError = DataError::UnknownAttribute { name: "A".into() }.into();
        assert!(d.to_string().contains("data error"));
        let m: ProtocolError = MathError::SingularMatrix { pivot: 1 }.into();
        assert!(m.to_string().contains("math error"));
        assert!(ProtocolError::config("Tv must be positive")
            .to_string()
            .contains("Tv"));
        assert!(ProtocolError::unsupported("attribute 9")
            .to_string()
            .contains("attribute 9"));
    }

    #[test]
    fn source_is_present_for_wrapped_errors() {
        use std::error::Error;
        let c: ProtocolError = CoreError::invalid("p", "bad").into();
        assert!(c.source().is_some());
        assert!(ProtocolError::config("x").source().is_none());
    }
}
