//! The single error type of the MDRR protocol and streaming layers.
//!
//! Everything above the substrate crates reports one error type,
//! [`MdrrError`]: protocol configuration, client-side encoding, collector
//! estimation, release queries and streaming ingestion.  Substrate errors
//! ([`CoreError`], [`DataError`], [`MathError`]) are wrapped via `From`, so
//! `?` composes across every layer without ad-hoc conversion shims.
//!
//! The former per-layer names `ProtocolError` (this crate) and
//! `StreamError` (`mdrr-stream`) survive as plain type aliases of
//! [`MdrrError`] so existing call sites and signatures keep compiling; new
//! code should name [`MdrrError`] directly.

use mdrr_core::CoreError;
use mdrr_data::DataError;
use mdrr_math::MathError;
use std::fmt;

/// Errors produced by the protocol and streaming layers.
#[derive(Debug, Clone, PartialEq)]
pub enum MdrrError {
    /// An error bubbled up from the core RR mechanism.
    Core(CoreError),
    /// An error bubbled up from the dataset layer.
    Data(DataError),
    /// An error bubbled up from the numerical substrate.
    Math(MathError),
    /// A configuration was invalid (empty cluster, bad thresholds,
    /// mismatched attribute lists, zero shards, malformed reports, …).
    InvalidConfiguration {
        /// Description of the violated constraint.
        message: String,
    },
    /// A query referenced attributes the release cannot answer, or asked a
    /// release for something it does not support (e.g. streaming counts
    /// into RR-Adjustment, which needs the randomized microdata).
    UnsupportedQuery {
        /// Description of the problem.
        message: String,
    },
    /// A shard worker died (its thread panicked) or a quarantined shard
    /// was asked to ingest.  The collector survives: the failed shard is
    /// quarantined and the rest keep working — callers decide whether to
    /// re-run the lost range or continue degraded.
    ShardFailed {
        /// Index of the shard whose worker failed.
        shard: usize,
        /// The panic payload (or quarantine reason), as text.
        message: String,
    },
}

/// Compatibility alias: the protocol layer's historical error name.
pub type ProtocolError = MdrrError;

impl fmt::Display for MdrrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdrrError::Core(e) => write!(f, "core error: {e}"),
            MdrrError::Data(e) => write!(f, "data error: {e}"),
            MdrrError::Math(e) => write!(f, "math error: {e}"),
            MdrrError::InvalidConfiguration { message } => {
                write!(f, "invalid configuration: {message}")
            }
            MdrrError::UnsupportedQuery { message } => {
                write!(f, "unsupported query: {message}")
            }
            MdrrError::ShardFailed { shard, message } => {
                write!(f, "shard {shard} failed: {message}")
            }
        }
    }
}

impl std::error::Error for MdrrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MdrrError::Core(e) => Some(e),
            MdrrError::Data(e) => Some(e),
            MdrrError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for MdrrError {
    fn from(e: CoreError) -> Self {
        MdrrError::Core(e)
    }
}

impl From<DataError> for MdrrError {
    fn from(e: DataError) -> Self {
        MdrrError::Data(e)
    }
}

impl From<MathError> for MdrrError {
    fn from(e: MathError) -> Self {
        MdrrError::Math(e)
    }
}

impl MdrrError {
    /// Convenience constructor for [`MdrrError::InvalidConfiguration`].
    pub fn config(message: impl Into<String>) -> Self {
        MdrrError::InvalidConfiguration {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`MdrrError::UnsupportedQuery`].
    pub fn unsupported(message: impl Into<String>) -> Self {
        MdrrError::UnsupportedQuery {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`MdrrError::ShardFailed`].
    pub fn shard_failed(shard: usize, message: impl Into<String>) -> Self {
        MdrrError::ShardFailed {
            shard,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let c: MdrrError = CoreError::invalid("p", "bad").into();
        assert!(c.to_string().contains("core error"));
        let d: MdrrError = DataError::UnknownAttribute { name: "A".into() }.into();
        assert!(d.to_string().contains("data error"));
        let m: MdrrError = MathError::SingularMatrix { pivot: 1 }.into();
        assert!(m.to_string().contains("math error"));
        assert!(MdrrError::config("Tv must be positive")
            .to_string()
            .contains("Tv"));
        assert!(MdrrError::unsupported("attribute 9")
            .to_string()
            .contains("attribute 9"));
        let s = MdrrError::shard_failed(3, "worker panicked: boom");
        assert_eq!(s.to_string(), "shard 3 failed: worker panicked: boom");
    }

    #[test]
    fn source_is_present_for_wrapped_errors() {
        use std::error::Error;
        let c: MdrrError = CoreError::invalid("p", "bad").into();
        assert!(c.source().is_some());
        assert!(MdrrError::config("x").source().is_none());
    }

    #[test]
    fn layer_aliases_are_the_same_type() {
        // `ProtocolError` is a plain alias: values flow freely in both
        // directions with no conversion.
        let e: ProtocolError = MdrrError::config("alias");
        let back: MdrrError = e;
        assert!(back.to_string().contains("alias"));
    }
}
