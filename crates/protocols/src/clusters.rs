//! RR-Clusters (Section 4 of the paper).
//!
//! Attributes are partitioned into clusters of mutually dependent
//! attributes (Algorithm 1, [`crate::clustering`]) and RR-Joint is run
//! *within* each cluster: every party randomizes the Cartesian product of
//! her values for the attributes of each cluster and publishes one joint
//! code per cluster.  Dependences inside a cluster are preserved in the
//! estimate; dependences across clusters are neglected (and can be partly
//! repaired afterwards by RR-Adjustment, Section 5).
//!
//! For the comparison of the paper's Section 6 to be fair, the matrix of a
//! cluster `C` is the optimal matrix for the budget `Σ_{A∈C} ε_A`
//! (Section 6.3.2), where `ε_A` is the budget RR-Independent would have
//! spent on attribute `A` alone.

use crate::adjustment::AdjustmentTarget;
use crate::clustering::Clustering;
use crate::error::{MdrrError, ProtocolError};
use crate::estimator::{validate_assignment, Assignment, FrequencyEstimator};
use crate::protocol::{
    gather_joint_codes, validate_batch_shape, validate_records_view, validate_report_shape,
    validate_tally_shape, with_predrawn, Protocol, RandomizationLevel, Release,
};
use mdrr_core::{
    estimate_proper_from_counts, randomize_joint, PreparedRandomizer, PrivacyAccountant, RRMatrix,
};
use mdrr_data::{Dataset, JointDomain, RecordsView, Schema};
use rand::{Rng, RngCore};

/// Hoisted per-cluster batch-encode state: the cluster's columns (in
/// cluster order), its mixed-radix strides, and its prepared
/// randomization kernel.
type PreparedCluster<'a> = (Vec<&'a [u32]>, &'a [usize], PreparedRandomizer<'a>);

/// The RR-Clusters protocol: a clustering plus one randomization matrix per
/// cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct RRClusters {
    schema: Schema,
    clustering: Clustering,
    domains: Vec<JointDomain>,
    matrices: Vec<RRMatrix>,
}

impl RRClusters {
    /// Section 6.3.2 construction: the cluster matrices provide the same
    /// differential-privacy level as RR-Independent with per-attribute
    /// budgets `epsilons` (in schema order): cluster `C` gets the optimal
    /// matrix for `Σ_{A∈C} ε_A` over its joint domain.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if the clustering
    /// does not cover the schema or the budget list has the wrong length.
    pub fn with_equivalent_risk(
        schema: Schema,
        clustering: Clustering,
        epsilons: &[f64],
    ) -> Result<Self, ProtocolError> {
        if epsilons.len() != schema.len() {
            return Err(ProtocolError::config(format!(
                "expected {} per-attribute budgets, got {}",
                schema.len(),
                epsilons.len()
            )));
        }
        Self::validate_clustering(&schema, &clustering)?;
        let mut domains = Vec::with_capacity(clustering.len());
        let mut matrices = Vec::with_capacity(clustering.len());
        for cluster in clustering.clusters() {
            let cards: Vec<usize> = cluster
                .iter()
                .map(|&a| schema.attribute(a).map(|attr| attr.cardinality()))
                .collect::<Result<_, _>>()?;
            let domain = JointDomain::new(&cards)?;
            let cluster_epsilons: Vec<f64> = cluster.iter().map(|&a| epsilons[a]).collect();
            let matrix = RRMatrix::cluster_from_epsilons(&cluster_epsilons, domain.size())?;
            domains.push(domain);
            matrices.push(matrix);
        }
        Ok(RRClusters {
            schema,
            clustering,
            domains,
            matrices,
        })
    }

    /// Convenience constructor for the paper's experiments: the
    /// per-attribute budgets are those of the uniform-keep mechanism at keep
    /// probability `p` (the same `p` used for RR-Independent), then the
    /// equivalent-risk cluster matrices are derived as in Section 6.3.2.
    ///
    /// # Errors
    /// Same conditions as [`RRClusters::with_equivalent_risk`] plus an
    /// invalid `p`.
    pub fn with_equivalent_risk_from_keep_probability(
        schema: Schema,
        clustering: Clustering,
        p: f64,
    ) -> Result<Self, ProtocolError> {
        Self::with_level(schema, clustering, &RandomizationLevel::KeepProbability(p))
    }

    /// Configures RR-Clusters at the equivalent risk of RR-Independent with
    /// `level`: the per-attribute budgets the level implies are spent
    /// jointly per cluster (Section 6.3.2).  Generalises
    /// [`RRClusters::with_equivalent_risk_from_keep_probability`] to every
    /// [`RandomizationLevel`] variant.
    ///
    /// # Errors
    /// Same conditions as [`RRClusters::with_equivalent_risk`] plus an
    /// invalid level.
    pub fn with_level(
        schema: Schema,
        clustering: Clustering,
        level: &RandomizationLevel,
    ) -> Result<Self, ProtocolError> {
        let epsilons = level.attribute_epsilons(&schema)?;
        Self::with_equivalent_risk(schema, clustering, &epsilons)
    }

    /// Direct construction: each cluster uses the uniform-keep mechanism at
    /// keep probability `p` over its own joint domain (no equivalent-risk
    /// adjustment).  Useful for ablations.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] for an invalid `p` or
    /// a clustering that does not cover the schema.
    pub fn with_keep_probability(
        schema: Schema,
        clustering: Clustering,
        p: f64,
    ) -> Result<Self, ProtocolError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ProtocolError::config(format!(
                "keep probability must lie in [0, 1], got {p}"
            )));
        }
        Self::validate_clustering(&schema, &clustering)?;
        let mut domains = Vec::with_capacity(clustering.len());
        let mut matrices = Vec::with_capacity(clustering.len());
        for cluster in clustering.clusters() {
            let cards: Vec<usize> = cluster
                .iter()
                .map(|&a| schema.attribute(a).map(|attr| attr.cardinality()))
                .collect::<Result<_, _>>()?;
            let domain = JointDomain::new(&cards)?;
            let matrix = RRMatrix::uniform_keep(p, domain.size())?;
            domains.push(domain);
            matrices.push(matrix);
        }
        Ok(RRClusters {
            schema,
            clustering,
            domains,
            matrices,
        })
    }

    fn validate_clustering(schema: &Schema, clustering: &Clustering) -> Result<(), ProtocolError> {
        if clustering.attribute_count() != schema.len() {
            return Err(ProtocolError::config(format!(
                "clustering covers {} attributes but the schema has {}",
                clustering.attribute_count(),
                schema.len()
            )));
        }
        Ok(())
    }

    /// Hoists each cluster's column set (in cluster order), mixed-radix
    /// strides and prepared randomization kernel — the loop-invariant
    /// state shared by the batched encoders.
    fn prepared_clusters<'a>(&'a self, columns: &[&'a [u32]]) -> Vec<PreparedCluster<'a>> {
        self.clustering
            .clusters()
            .iter()
            .zip(self.domains.iter().zip(self.matrices.iter()))
            .map(|(cluster, (domain, matrix))| {
                let cluster_columns = cluster.iter().map(|&a| columns[a]).collect();
                (cluster_columns, domain.strides(), matrix.prepared())
            })
            .collect()
    }

    /// The schema the protocol was configured for.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The clustering the protocol uses.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The per-cluster randomization matrices (cluster order).
    pub fn matrices(&self) -> &[RRMatrix] {
        &self.matrices
    }

    /// The per-cluster joint-domain codecs (cluster order).
    pub fn domains(&self) -> &[JointDomain] {
        &self.domains
    }

    /// Client-side encoding: randomizes one true record into its report —
    /// one randomized joint code per cluster, in cluster order.
    ///
    /// # Errors
    /// * [`ProtocolError::Data`] if the record does not fit the schema;
    /// * propagated randomization errors otherwise.
    pub fn encode_record(
        &self,
        record: &[u32],
        rng: &mut impl Rng,
    ) -> Result<Vec<u32>, ProtocolError> {
        self.schema.validate_record(record)?;
        let mut report = Vec::with_capacity(self.clustering.len());
        let mut tuple = Vec::new();
        for (cluster, (domain, matrix)) in self
            .clustering
            .clusters()
            .iter()
            .zip(self.domains.iter().zip(self.matrices.iter()))
        {
            tuple.clear();
            tuple.extend(cluster.iter().map(|&a| record[a]));
            let code = domain.encode(&tuple)?;
            report.push(matrix.randomize(code as u32, rng)?);
        }
        Ok(report)
    }

    /// Collector-side estimation from accumulated sufficient statistics:
    /// builds a release from per-cluster count vectors over the randomized
    /// joint codes of `n_records` reports.  Numerically identical to the
    /// estimate [`RRClusters::run`] computes from the same codes, but
    /// carries no randomized microdata
    /// ([`ClustersRelease::randomized`] is `None`).
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if `n_records` is
    /// zero, the number of count vectors differs from the number of
    /// clusters, a count vector's length differs from its cluster's
    /// joint-domain size, or a count vector does not sum to `n_records`.
    pub fn release_from_counts(
        &self,
        counts: &[Vec<u64>],
        n_records: usize,
    ) -> Result<ClustersRelease, ProtocolError> {
        if n_records == 0 {
            return Err(ProtocolError::config(
                "cannot build an RR-Clusters release from zero reports",
            ));
        }
        if counts.len() != self.clustering.len() {
            return Err(ProtocolError::config(format!(
                "expected {} per-cluster count vectors, got {}",
                self.clustering.len(),
                counts.len()
            )));
        }
        let mut distributions = Vec::with_capacity(self.clustering.len());
        let mut accountant = PrivacyAccountant::new();
        for (k, cluster) in self.clustering.clusters().iter().enumerate() {
            let matrix = &self.matrices[k];
            let domain = &self.domains[k];
            let channel = &counts[k];
            if channel.len() != domain.size() {
                return Err(ProtocolError::config(format!(
                    "count vector for cluster {k} has {} cells but its joint domain has {}",
                    channel.len(),
                    domain.size()
                )));
            }
            let total: u64 = channel.iter().sum();
            if total != n_records as u64 {
                return Err(ProtocolError::config(format!(
                    "count vector for cluster {k} sums to {total} but {n_records} reports \
                     were accumulated"
                )));
            }
            distributions.push(estimate_proper_from_counts(matrix, channel)?);
            accountant.record_matrix(
                format!("RR-Clusters on cluster {k} (attributes {cluster:?})"),
                matrix,
            );
        }
        Ok(ClustersRelease {
            schema: self.schema.clone(),
            clustering: self.clustering.clone(),
            domains: self.domains.clone(),
            distributions,
            randomized: None,
            accountant,
            n_records,
        })
    }

    /// Collector-side estimation from an already-randomized data set (the
    /// pooled per-cluster reports of all parties, decoded to microdata).
    /// [`RRClusters::run`] is exactly client-side randomization followed by
    /// this constructor.
    ///
    /// # Errors
    /// * [`ProtocolError::InvalidConfiguration`] for a schema mismatch or an
    ///   empty data set;
    /// * propagated estimation errors otherwise.
    pub fn release_from_randomized(
        &self,
        randomized: Dataset,
    ) -> Result<ClustersRelease, ProtocolError> {
        if randomized.schema() != &self.schema {
            return Err(ProtocolError::config(
                "randomized dataset schema does not match the protocol configuration",
            ));
        }
        if randomized.is_empty() {
            return Err(ProtocolError::config(
                "cannot build an RR-Clusters release from an empty dataset",
            ));
        }
        let counts: Vec<Vec<u64>> = self
            .clustering
            .clusters()
            .iter()
            .map(|cluster| randomized.joint_counts(cluster).map(|(_, c)| c))
            .collect::<Result<_, _>>()?;
        let mut release = self.release_from_counts(&counts, randomized.n_records())?;
        release.randomized = Some(randomized);
        Ok(release)
    }

    /// Runs the protocol: randomizes each cluster's joint codes, estimates
    /// each cluster's joint distribution and reconstructs the randomized
    /// microdata set.
    ///
    /// # Errors
    /// * [`ProtocolError::InvalidConfiguration`] for schema mismatch or an
    ///   empty dataset;
    /// * propagated randomization/estimation errors otherwise.
    pub fn run(
        &self,
        dataset: &Dataset,
        rng: &mut impl Rng,
    ) -> Result<ClustersRelease, ProtocolError> {
        if dataset.schema() != &self.schema {
            return Err(ProtocolError::config(
                "dataset schema does not match the protocol configuration",
            ));
        }
        if dataset.is_empty() {
            return Err(ProtocolError::config(
                "cannot run RR-Clusters on an empty dataset",
            ));
        }
        let n = dataset.n_records();
        // Column-major buffer for the reconstructed randomized dataset,
        // plus per-cluster counts tallied from the in-hand joint codes so
        // estimation needs no re-encoding round-trip.
        let mut randomized_columns: Vec<Vec<u32>> = vec![vec![0; n]; self.schema.len()];
        let mut counts: Vec<Vec<u64>> = self.domains.iter().map(|d| vec![0u64; d.size()]).collect();
        for (k, cluster) in self.clustering.clusters().iter().enumerate() {
            let randomized_codes = randomize_joint(dataset, cluster, &self.matrices[k], rng)?;
            // Scatter the decoded randomized values back into the columns.
            for (i, &code) in randomized_codes.iter().enumerate() {
                counts[k][code as usize] += 1;
                let tuple = self.domains[k].decode(code as usize)?;
                for (&attribute, &value) in cluster.iter().zip(tuple.iter()) {
                    randomized_columns[attribute][i] = value;
                }
            }
        }
        let randomized = Dataset::from_columns(self.schema.clone(), randomized_columns)?;
        let mut release = self.release_from_counts(&counts, n)?;
        release.randomized = Some(randomized);
        Ok(release)
    }
}

/// The output of one run of RR-Clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClustersRelease {
    schema: Schema,
    clustering: Clustering,
    domains: Vec<JointDomain>,
    distributions: Vec<Vec<f64>>,
    randomized: Option<Dataset>,
    accountant: PrivacyAccountant,
    n_records: usize,
}

impl ClustersRelease {
    /// The published randomized microdata set — `Some` for batch releases,
    /// `None` for releases assembled from streamed sufficient statistics
    /// ([`RRClusters::release_from_counts`]).
    pub fn randomized(&self) -> Option<&Dataset> {
        self.randomized.as_ref()
    }

    /// The clustering the release was produced with.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The estimated joint distribution of cluster `k` (code order of the
    /// cluster's joint domain).
    ///
    /// # Errors
    /// Returns [`ProtocolError::UnsupportedQuery`] for a bad index.
    pub fn cluster_distribution(&self, k: usize) -> Result<&[f64], ProtocolError> {
        self.distributions
            .get(k)
            .map(Vec::as_slice)
            .ok_or_else(|| ProtocolError::unsupported(format!("cluster index {k} out of range")))
    }

    /// The per-cluster joint-domain codecs.
    pub fn domains(&self) -> &[JointDomain] {
        &self.domains
    }

    /// The privacy ledger (one entry per cluster).
    pub fn accountant(&self) -> &PrivacyAccountant {
        &self.accountant
    }

    /// The estimated marginal distribution of a single attribute, obtained
    /// by marginalising its cluster's estimated joint distribution (the
    /// shared [`Release::marginal`] accessor, formerly
    /// `attribute_marginal`).
    ///
    /// # Errors
    /// Returns [`ProtocolError::UnsupportedQuery`] for a bad attribute
    /// index.
    pub fn marginal(&self, attribute: usize) -> Result<Vec<f64>, ProtocolError> {
        let k = self.clustering.cluster_of(attribute).ok_or_else(|| {
            ProtocolError::unsupported(format!("attribute {attribute} not covered by any cluster"))
        })?;
        let cluster = &self.clustering.clusters()[k];
        let position = cluster
            .iter()
            .position(|&a| a == attribute)
            .expect("cluster_of guarantees membership");
        let domain = &self.domains[k];
        let cardinality = domain.cardinalities()[position];
        let mut marginal = vec![0.0; cardinality];
        for (cell, &prob) in self.distributions[k].iter().enumerate() {
            let tuple = domain.decode(cell)?;
            marginal[tuple[position] as usize] += prob;
        }
        Ok(marginal)
    }
}

impl FrequencyEstimator for ClustersRelease {
    fn frequency(&self, assignment: &Assignment) -> Result<f64, ProtocolError> {
        validate_assignment(assignment, &self.schema.cardinalities())?;
        // Group the constraints by cluster.
        let mut per_cluster: Vec<Vec<(usize, u32)>> = vec![Vec::new(); self.clustering.len()];
        for &(attribute, code) in assignment {
            let k = self.clustering.cluster_of(attribute).ok_or_else(|| {
                ProtocolError::unsupported(format!(
                    "attribute {attribute} not covered by any cluster"
                ))
            })?;
            per_cluster[k].push((attribute, code));
        }

        // Independence across clusters: multiply the per-cluster marginal
        // probabilities of the constrained cells.
        let mut freq = 1.0;
        for (k, constraints) in per_cluster.iter().enumerate() {
            if constraints.is_empty() {
                continue;
            }
            let cluster = &self.clustering.clusters()[k];
            let domain = &self.domains[k];
            // Positions of the constrained attributes inside the cluster.
            let positional: Vec<(usize, u32)> = constraints
                .iter()
                .map(|&(attribute, code)| {
                    let position = cluster
                        .iter()
                        .position(|&a| a == attribute)
                        .expect("validated above");
                    (position, code)
                })
                .collect();
            let mut cluster_freq = 0.0;
            for (cell, &prob) in self.distributions[k].iter().enumerate() {
                if prob == 0.0 {
                    continue;
                }
                let tuple = domain.decode(cell)?;
                if positional
                    .iter()
                    .all(|&(position, code)| tuple[position] == code)
                {
                    cluster_freq += prob;
                }
            }
            freq *= cluster_freq;
        }
        Ok(freq)
    }

    fn record_count(&self) -> usize {
        self.n_records
    }
}

impl Protocol for RRClusters {
    fn name(&self) -> String {
        "RR-Clusters".to_string()
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn channel_sizes(&self) -> Vec<usize> {
        self.domains.iter().map(JointDomain::size).collect()
    }

    fn encode_record(&self, record: &[u32], rng: &mut dyn RngCore) -> Result<Vec<u32>, MdrrError> {
        RRClusters::encode_record(self, record, &mut &mut *rng)
    }

    /// Tuned batch override: the schema is validated once per batch and
    /// each cluster's column set, mixed-radix strides and prepared
    /// randomization kernel are gathered once up front, so the hot loop
    /// fuses the joint encoding and the randomization over bulk-pre-drawn
    /// randomness with no per-record tuple buffer.  Draws are consumed
    /// record-major (record `i`'s clusters in cluster order) —
    /// bit-identical to repeated [`RRClusters::encode_record`] calls.
    fn encode_batch(
        &self,
        records: &RecordsView<'_>,
        rng: &mut dyn RngCore,
        out: &mut [Vec<u32>],
    ) -> Result<(), MdrrError> {
        validate_batch_shape(out.len(), self.clustering.len())?;
        validate_records_view(records, &self.schema)?;
        let n = records.n_records();
        for channel in out.iter_mut() {
            channel.reserve(n);
        }
        let prepared = self.prepared_clusters(records.columns());
        let n_clusters = prepared.len();
        // Scratch for the fused mixed-radix joint codes of one cluster of
        // one chunk.
        let mut codes: Vec<u32> = Vec::new();
        with_predrawn(n, n_clusters, rng, |range, draws| {
            // Cluster-at-a-time over the pre-drawn randomness: cluster `j`
            // of record `i` consumes draw `i·n_clusters + j` — the
            // record-major mapping of the per-record path.
            for (j, ((cluster_columns, strides, sampler), channel)) in
                prepared.iter().zip(out.iter_mut()).enumerate()
            {
                gather_joint_codes(cluster_columns, strides, range.clone(), &mut codes);
                sampler.randomize_strided_into(&codes, draws, j, n_clusters, channel);
            }
        });
        Ok(())
    }

    /// Fused randomize-and-count override: the same draw schedule and
    /// codes as the batch encoder, tallied per cluster in one pass.
    fn encode_tally(
        &self,
        records: &RecordsView<'_>,
        rng: &mut dyn RngCore,
        tallies: &mut [Vec<u64>],
    ) -> Result<(), MdrrError> {
        validate_tally_shape(tallies, &Protocol::channel_sizes(self))?;
        validate_records_view(records, &self.schema)?;
        let prepared = self.prepared_clusters(records.columns());
        let n_clusters = prepared.len();
        let mut codes: Vec<u32> = Vec::new();
        with_predrawn(records.n_records(), n_clusters, rng, |range, draws| {
            for (j, ((cluster_columns, strides, sampler), tally)) in
                prepared.iter().zip(tallies.iter_mut()).enumerate()
            {
                gather_joint_codes(cluster_columns, strides, range.clone(), &mut codes);
                sampler.randomize_strided_tally(&codes, draws, j, n_clusters, tally);
            }
        });
        Ok(())
    }

    fn decode_report(&self, codes: &[u32]) -> Result<Vec<u32>, MdrrError> {
        validate_report_shape(codes, &Protocol::channel_sizes(self))?;
        let mut record = vec![0u32; self.schema.len()];
        for (k, cluster) in self.clustering.clusters().iter().enumerate() {
            let tuple = self.domains[k].decode(codes[k] as usize)?;
            for (&attribute, &value) in cluster.iter().zip(tuple.iter()) {
                record[attribute] = value;
            }
        }
        Ok(record)
    }

    fn release_from_counts(
        &self,
        counts: &[Vec<u64>],
        n_records: usize,
    ) -> Result<Box<dyn Release>, MdrrError> {
        Ok(Box::new(RRClusters::release_from_counts(
            self, counts, n_records,
        )?))
    }

    fn release_from_randomized(&self, randomized: Dataset) -> Result<Box<dyn Release>, MdrrError> {
        Ok(Box::new(RRClusters::release_from_randomized(
            self, randomized,
        )?))
    }

    fn run(&self, dataset: &Dataset, rng: &mut dyn RngCore) -> Result<Box<dyn Release>, MdrrError> {
        Ok(Box::new(RRClusters::run(self, dataset, &mut &mut *rng)?))
    }

    fn epsilons(&self) -> Vec<f64> {
        self.matrices.iter().map(RRMatrix::epsilon).collect()
    }
}

impl Release for ClustersRelease {
    fn marginal(&self, attribute: usize) -> Result<Vec<f64>, MdrrError> {
        ClustersRelease::marginal(self, attribute)
    }

    fn accountant(&self) -> &PrivacyAccountant {
        ClustersRelease::accountant(self)
    }

    fn randomized(&self) -> Option<&Dataset> {
        ClustersRelease::randomized(self)
    }

    fn adjustment_targets(&self) -> Result<Vec<AdjustmentTarget>, MdrrError> {
        AdjustmentTarget::from_clusters(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EmpiricalEstimator;
    use crate::independent::{RRIndependent, RandomizationLevel};
    use mdrr_data::{Attribute, AttributeKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("A", AttributeKind::Nominal, vec!["a".into(), "b".into()]).unwrap(),
            Attribute::new(
                "B",
                AttributeKind::Nominal,
                vec!["x".into(), "y".into(), "z".into()],
            )
            .unwrap(),
            Attribute::new("C", AttributeKind::Nominal, vec!["0".into(), "1".into()]).unwrap(),
        ])
        .unwrap()
    }

    /// A and B strongly dependent; C independent of both.
    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::empty(schema());
        for _ in 0..n {
            let a = u32::from(rng.gen::<f64>() < 0.4);
            let b = if rng.gen::<f64>() < 0.85 { a } else { 2 };
            let c = u32::from(rng.gen::<f64>() < 0.5);
            ds.push_record(&[a, b, c]).unwrap();
        }
        ds
    }

    fn ab_c_clustering() -> Clustering {
        Clustering::new(vec![vec![0, 1], vec![2]], 3).unwrap()
    }

    #[test]
    fn constructors_validate_configuration() {
        let s = schema();
        let clustering = ab_c_clustering();
        assert!(
            RRClusters::with_equivalent_risk(s.clone(), clustering.clone(), &[1.0, 1.0]).is_err()
        );
        assert!(RRClusters::with_equivalent_risk_from_keep_probability(
            s.clone(),
            clustering.clone(),
            1.5
        )
        .is_err());
        assert!(RRClusters::with_equivalent_risk_from_keep_probability(
            s.clone(),
            clustering.clone(),
            1.0
        )
        .is_err());
        assert!(RRClusters::with_keep_probability(s.clone(), clustering.clone(), -0.2).is_err());
        // A clustering over the wrong number of attributes is rejected.
        let short = Clustering::new(vec![vec![0], vec![1]], 2).unwrap();
        assert!(RRClusters::with_keep_probability(s, short, 0.5).is_err());
    }

    #[test]
    fn equivalent_risk_matches_independent_budget() {
        let s = schema();
        let p = 0.7;
        let independent =
            RRIndependent::new(s.clone(), &RandomizationLevel::KeepProbability(p)).unwrap();
        let epsilons = independent.epsilons();
        let clusters = RRClusters::with_equivalent_risk(s, ab_c_clustering(), &epsilons).unwrap();
        // Cluster {A, B} spends ε_A + ε_B; cluster {C} spends ε_C.
        let eps_ab = clusters.matrices()[0].epsilon();
        let eps_c = clusters.matrices()[1].epsilon();
        assert!((eps_ab - (epsilons[0] + epsilons[1])).abs() < 1e-9);
        assert!((eps_c - epsilons[2]).abs() < 1e-9);
        // Total budgets of the two protocols coincide.
        let total_independent: f64 = epsilons.iter().sum();
        assert!((eps_ab + eps_c - total_independent).abs() < 1e-9);
    }

    #[test]
    fn run_validates_dataset() {
        let protocol = RRClusters::with_keep_probability(schema(), ab_c_clustering(), 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(protocol.run(&Dataset::empty(schema()), &mut rng).is_err());
        let other_schema = Schema::new(vec![Attribute::indexed("Z", 2).unwrap()]).unwrap();
        let other = Dataset::from_records(other_schema, &[vec![0]]).unwrap();
        assert!(protocol.run(&other, &mut rng).is_err());
    }

    #[test]
    fn within_cluster_dependence_is_preserved() {
        let ds = dataset(40_000, 1);
        let protocol = RRClusters::with_keep_probability(schema(), ab_c_clustering(), 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let release = protocol.run(&ds, &mut rng).unwrap();
        let truth = EmpiricalEstimator::new(&ds);

        // Joint cells of the dependent pair (A, B) are estimated well…
        for a in 0..2u32 {
            for b in 0..3u32 {
                let estimated = release.frequency(&[(0, a), (1, b)]).unwrap();
                let exact = truth.frequency(&[(0, a), (1, b)]).unwrap();
                assert!(
                    (estimated - exact).abs() < 0.02,
                    "cell ({a},{b}): {estimated} vs {exact}"
                );
            }
        }
        // …and so are cross-cluster cells, because C really is independent.
        let estimated = release.frequency(&[(0, 0), (2, 1)]).unwrap();
        let exact = truth.frequency(&[(0, 0), (2, 1)]).unwrap();
        assert!((estimated - exact).abs() < 0.02);
    }

    #[test]
    fn cluster_estimates_beat_independence_on_dependent_pairs() {
        let ds = dataset(40_000, 3);
        let p = 0.7;
        let mut rng = StdRng::seed_from_u64(4);
        let clusters_release =
            RRClusters::with_equivalent_risk_from_keep_probability(schema(), ab_c_clustering(), p)
                .unwrap()
                .run(&ds, &mut rng)
                .unwrap();
        let independent_release =
            RRIndependent::new(schema(), &RandomizationLevel::KeepProbability(p))
                .unwrap()
                .run(&ds, &mut rng)
                .unwrap();
        let truth = EmpiricalEstimator::new(&ds);

        // Total absolute error over the joint cells of the dependent pair.
        let mut err_clusters = 0.0;
        let mut err_independent = 0.0;
        for a in 0..2u32 {
            for b in 0..3u32 {
                let exact = truth.frequency(&[(0, a), (1, b)]).unwrap();
                err_clusters +=
                    (clusters_release.frequency(&[(0, a), (1, b)]).unwrap() - exact).abs();
                err_independent +=
                    (independent_release.frequency(&[(0, a), (1, b)]).unwrap() - exact).abs();
            }
        }
        assert!(
            err_clusters < err_independent,
            "clusters {err_clusters} should beat independence {err_independent}"
        );
    }

    #[test]
    fn attribute_marginals_are_consistent() {
        let ds = dataset(30_000, 5);
        let protocol = RRClusters::with_keep_probability(schema(), ab_c_clustering(), 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let release = protocol.run(&ds, &mut rng).unwrap();
        for attribute in 0..3 {
            let marginal = release.marginal(attribute).unwrap();
            assert!((marginal.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let truth = ds.marginal_distribution(attribute).unwrap();
            for (a, b) in marginal.iter().zip(truth.iter()) {
                assert!((a - b).abs() < 0.02);
            }
            // The marginal via the estimator trait agrees with the explicit one.
            for (code, expected) in marginal.iter().enumerate() {
                let via_query = release.frequency(&[(attribute, code as u32)]).unwrap();
                assert!((via_query - expected).abs() < 1e-9);
            }
        }
        assert!(release.marginal(9).is_err());
    }

    #[test]
    fn randomized_dataset_and_ledger_shape() {
        let ds = dataset(1_000, 7);
        let protocol = RRClusters::with_keep_probability(schema(), ab_c_clustering(), 0.6).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let release = protocol.run(&ds, &mut rng).unwrap();
        let randomized = release.randomized().unwrap();
        assert_eq!(randomized.n_records(), 1_000);
        assert_eq!(randomized.schema(), ds.schema());
        assert_eq!(release.accountant().len(), 2);
        assert_eq!(release.record_count(), 1_000);
        assert!(release.cluster_distribution(0).is_ok());
        assert!(release.cluster_distribution(5).is_err());
    }

    #[test]
    fn streamed_counts_match_the_batch_estimate_exactly() {
        let ds = dataset(4_000, 13);
        let protocol = RRClusters::with_keep_probability(schema(), ab_c_clustering(), 0.6).unwrap();

        let mut rng = StdRng::seed_from_u64(14);
        let view = ds.view();
        let mut row = Vec::new();
        let mut reports: Vec<Vec<u32>> = Vec::with_capacity(ds.n_records());
        for i in 0..ds.n_records() {
            view.read_record(i, &mut row).unwrap();
            reports.push(protocol.encode_record(&row, &mut rng).unwrap());
        }

        // Streaming collector: one count vector per cluster.
        let mut counts: Vec<Vec<u64>> = protocol
            .domains()
            .iter()
            .map(|d| vec![0u64; d.size()])
            .collect();
        for report in &reports {
            for (k, &code) in report.iter().enumerate() {
                counts[k][code as usize] += 1;
            }
        }
        let streamed = protocol
            .release_from_counts(&counts, reports.len())
            .unwrap();
        assert!(streamed.randomized().is_none());

        // Batch collector: decode the same reports into microdata.
        let mut columns: Vec<Vec<u32>> = vec![vec![0; reports.len()]; 3];
        for (i, report) in reports.iter().enumerate() {
            for (k, cluster) in protocol.clustering().clusters().iter().enumerate() {
                let tuple = protocol.domains()[k].decode(report[k] as usize).unwrap();
                for (&attribute, &value) in cluster.iter().zip(tuple.iter()) {
                    columns[attribute][i] = value;
                }
            }
        }
        let randomized = Dataset::from_columns(schema(), columns).unwrap();
        let batch = protocol.release_from_randomized(randomized).unwrap();
        for k in 0..2 {
            assert_eq!(
                streamed.cluster_distribution(k).unwrap(),
                batch.cluster_distribution(k).unwrap()
            );
        }
        assert_eq!(streamed.record_count(), batch.record_count());
    }

    #[test]
    fn encode_record_and_counts_validate_input() {
        let protocol = RRClusters::with_keep_probability(schema(), ab_c_clustering(), 0.6).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(protocol.encode_record(&[0, 0], &mut rng).is_err());
        assert!(protocol.encode_record(&[0, 9, 0], &mut rng).is_err());
        let report = protocol.encode_record(&[1, 2, 0], &mut rng).unwrap();
        assert_eq!(report.len(), 2);

        assert!(protocol
            .release_from_counts(&[vec![0; 6], vec![0; 2]], 0)
            .is_err());
        assert!(protocol.release_from_counts(&[vec![2; 3]], 6).is_err());
        assert!(protocol
            .release_from_counts(&[vec![1; 6], vec![3, 2]], 6)
            .is_err());
        assert!(protocol
            .release_from_counts(&[vec![1; 6], vec![3, 3]], 6)
            .is_ok());
    }

    #[test]
    fn singleton_clustering_degenerates_to_independent_estimates() {
        let ds = dataset(20_000, 9);
        let singletons = Clustering::singletons(3).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let release = RRClusters::with_keep_probability(schema(), singletons, 0.7)
            .unwrap()
            .run(&ds, &mut rng)
            .unwrap();
        // Joint frequencies are products of marginals, exactly like RR-Independent.
        let f_joint = release.frequency(&[(0, 0), (1, 0)]).unwrap();
        let f_a = release.frequency(&[(0, 0)]).unwrap();
        let f_b = release.frequency(&[(1, 0)]).unwrap();
        assert!((f_joint - f_a * f_b).abs() < 1e-12);
    }

    #[test]
    fn frequency_estimator_contract() {
        let ds = dataset(500, 11);
        let protocol = RRClusters::with_keep_probability(schema(), ab_c_clustering(), 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let release = protocol.run(&ds, &mut rng).unwrap();
        assert!((release.frequency(&[]).unwrap() - 1.0).abs() < 1e-9);
        assert!(release.frequency(&[(0, 9)]).is_err());
        assert!(release.frequency(&[(9, 0)]).is_err());
        assert!(release.frequency(&[(0, 0), (0, 1)]).is_err());
    }
}
