//! # mdrr-protocols
//!
//! The multi-dimensional randomized-response protocols of the paper,
//! unified behind one object-safe surface:
//!
//! * [`protocol`] — the [`Protocol`] and [`Release`] traits every mechanism
//!   implements (channel topology, client-side encoding, collector-side
//!   estimation, privacy accounting, uniform queries), plus the
//!   [`RandomizationLevel`] that parameterises all of them;
//! * [`spec`] — the serde-able [`ProtocolSpec`] builder that constructs any
//!   protocol from configuration data;
//! * [`independent`] — Protocol 1 (RR-Independent): per-attribute RR, joint
//!   frequencies estimated under the independence assumption;
//! * [`joint`] — Protocol 2 (RR-Joint): a single RR over the Cartesian
//!   product of all attributes;
//! * [`clustering`] — Algorithm 1: grouping attributes by dependence under
//!   the `Tv`/`Td` thresholds;
//! * [`dependence`] — the three privacy-preserving procedures of
//!   Sections 4.1–4.3 for estimating pairwise attribute dependences;
//! * [`secure_sum`] — the additive-sharing secure-sum substrate those
//!   procedures rely on;
//! * [`clusters`] — RR-Clusters: RR-Joint within each cluster with
//!   equivalent-risk matrices (Section 6.3.2);
//! * [`adjustment`] — Algorithm 2 (RR-Adjustment): iterative re-weighting
//!   of the randomized data set, stackable on any base protocol via
//!   [`RRAdjustment`];
//! * [`synthetic`] — re-creation of synthetic microdata from an estimated
//!   joint distribution;
//! * [`party`] — the party-side view of the protocols (local
//!   anonymization trust model made explicit);
//! * [`estimator`] — the common [`FrequencyEstimator`] query interface
//!   every release implements;
//! * [`error`] — the single [`MdrrError`] of the protocol and streaming
//!   layers.
//!
//! ## Example
//!
//! Select a protocol from configuration data, run it as a trait object and
//! query the release through the uniform [`Release`] surface:
//!
//! ```
//! use mdrr_data::AdultSynthesizer;
//! use mdrr_protocols::{FrequencyEstimator, ProtocolSpec, RandomizationLevel};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(11);
//! let dataset = AdultSynthesizer::new(2_000)?.generate(&mut rng);
//!
//! // Any protocol builds from a serde-able spec; swap "Independent" for
//! // Joint, Clusters or an Adjusted stack without touching the code below.
//! let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
//! let protocol = spec.build(dataset.schema())?; // Box<dyn Protocol>
//! let release = protocol.run(&dataset, &mut rng)?; // Box<dyn Release>
//!
//! // Estimated marginals are proper distributions…
//! let marginal = release.marginal(0)?;
//! assert!((marginal.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! // …joint frequencies answer through the same trait for every protocol…
//! let joint = release.frequency(&[(0, 0), (1, 0)])?;
//! assert!((0.0..=1.0).contains(&joint));
//! // …and the privacy ledger rides along.
//! assert_eq!(release.accountant().len(), dataset.schema().len());
//! # Ok::<(), mdrr_protocols::MdrrError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adjustment;
pub mod clustering;
pub mod clusters;
pub mod dependence;
pub mod error;
pub mod estimator;
pub mod independent;
pub mod joint;
pub mod party;
pub mod protocol;
pub mod secure_sum;
pub mod spec;
pub mod synthetic;

pub use adjustment::{
    rr_adjustment, AdjustedRelease, AdjustmentConfig, AdjustmentTarget, RRAdjustment,
};
pub use clustering::{cluster_attributes, Clustering, ClusteringConfig, DependenceMatrix};
pub use clusters::{ClustersRelease, RRClusters};
pub use dependence::{
    dependence_matrix_plain, dependence_via_exact_bivariate, dependence_via_randomized_attributes,
    dependence_via_rr_pairs, DependenceEstimate,
};
pub use error::{MdrrError, ProtocolError};
pub use estimator::{validate_assignment, Assignment, EmpiricalEstimator, FrequencyEstimator};
pub use independent::{IndependentRelease, RRIndependent};
pub use joint::{JointRelease, RRJoint, DEFAULT_MAX_JOINT_DOMAIN};
pub use party::{collect_independent_responses, Party};
pub use protocol::{Protocol, RandomizationLevel, Release};
pub use secure_sum::{secure_contingency_table, SecureSumMode, SecureSumSession};
pub use spec::ProtocolSpec;
pub use synthetic::{synthesize_deterministic, synthesize_sampling};
