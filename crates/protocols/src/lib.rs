//! # mdrr-protocols
//!
//! The multi-dimensional randomized-response protocols of the paper:
//!
//! * [`independent`] — Protocol 1 (RR-Independent): per-attribute RR, joint
//!   frequencies estimated under the independence assumption;
//! * [`joint`] — Protocol 2 (RR-Joint): a single RR over the Cartesian
//!   product of all attributes;
//! * [`clustering`] — Algorithm 1: grouping attributes by dependence under
//!   the `Tv`/`Td` thresholds;
//! * [`dependence`] — the three privacy-preserving procedures of
//!   Sections 4.1–4.3 for estimating pairwise attribute dependences;
//! * [`secure_sum`] — the additive-sharing secure-sum substrate those
//!   procedures rely on;
//! * [`clusters`] — RR-Clusters: RR-Joint within each cluster with
//!   equivalent-risk matrices (Section 6.3.2);
//! * [`adjustment`] — Algorithm 2 (RR-Adjustment): iterative re-weighting
//!   of the randomized data set to repair the independence assumptions;
//! * [`synthetic`] — re-creation of synthetic microdata from an estimated
//!   joint distribution;
//! * [`party`] — the party-side view of the protocols (local
//!   anonymization trust model made explicit);
//! * [`estimator`] — the common [`FrequencyEstimator`] interface every
//!   release implements, on which the evaluation harness builds the
//!   paper's count queries.
//!
//! ## Example
//!
//! Run RR-Independent over a small synthetic dataset and query an estimated
//! joint frequency:
//!
//! ```
//! use mdrr_data::AdultSynthesizer;
//! use mdrr_protocols::{FrequencyEstimator, RRIndependent, RandomizationLevel};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(11);
//! let dataset = AdultSynthesizer::new(2_000)?.generate(&mut rng);
//!
//! let protocol = RRIndependent::new(
//!     dataset.schema().clone(),
//!     &RandomizationLevel::KeepProbability(0.7),
//! )?;
//! let release = protocol.run(&dataset, &mut rng)?;
//!
//! // Estimated marginals are proper distributions…
//! let marginal = release.marginal(0)?;
//! assert!((marginal.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! // …and joint frequencies factor across attributes (Protocol 1).
//! let joint = release.frequency(&[(0, 0), (1, 0)])?;
//! assert!((0.0..=1.0).contains(&joint));
//! # Ok::<(), mdrr_protocols::ProtocolError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjustment;
pub mod clustering;
pub mod clusters;
pub mod dependence;
pub mod error;
pub mod estimator;
pub mod independent;
pub mod joint;
pub mod party;
pub mod secure_sum;
pub mod synthetic;

pub use adjustment::{rr_adjustment, AdjustedRelease, AdjustmentConfig, AdjustmentTarget};
pub use clustering::{cluster_attributes, Clustering, ClusteringConfig, DependenceMatrix};
pub use clusters::{ClustersRelease, RRClusters};
pub use dependence::{
    dependence_matrix_plain, dependence_via_exact_bivariate, dependence_via_randomized_attributes,
    dependence_via_rr_pairs, DependenceEstimate,
};
pub use error::ProtocolError;
pub use estimator::{validate_assignment, Assignment, EmpiricalEstimator, FrequencyEstimator};
pub use independent::{IndependentRelease, RRIndependent, RandomizationLevel};
pub use joint::{JointRelease, RRJoint, DEFAULT_MAX_JOINT_DOMAIN};
pub use party::{collect_independent_responses, Party};
pub use secure_sum::{secure_contingency_table, SecureSumMode, SecureSumSession};
pub use synthetic::{synthesize_deterministic, synthesize_sampling};
