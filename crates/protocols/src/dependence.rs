//! Privacy-preserving estimation of pairwise attribute dependences
//! (Sections 4.1–4.3 of the paper).
//!
//! Algorithm 1 needs the dependence between every pair of attributes, but
//! no single party holds the data set `X`, so the dependences must be
//! computed from partial and/or randomized information.  Three procedures
//! are provided, mirroring the paper:
//!
//! * [`dependence_via_randomized_attributes`] (Section 4.1) — every party
//!   publishes each attribute independently randomized with the
//!   "keep-with-probability-p, otherwise uniform" mechanism of
//!   Proposition 1, and dependences are computed on the randomized data.
//!   Proposition 1 / Corollary 1 guarantee the *ranking* of covariances is
//!   preserved even though their magnitude is attenuated by `p²`.
//! * [`dependence_via_exact_bivariate`] (Section 4.2) — the exact bivariate
//!   contingency tables are computed through the secure-sum protocol, so no
//!   party's individual pair of values is ever linkable to her.
//! * [`dependence_via_rr_pairs`] (Section 4.3) — each *pair* of attributes
//!   is jointly randomized before entering the secure sum, and the true
//!   bivariate distribution is estimated with Equation (2); this variant is
//!   differentially private even against the aggregator.
//!
//! A trusted-party baseline ([`dependence_matrix_plain`]) is included for
//! comparison and testing.
//!
//! The dependence measure follows the paper's Expressions (8)/(9): the
//! absolute Pearson correlation of the category codes when both attributes
//! are ordinal, and Cramér's V otherwise.  Both lie in `[0, 1]`, so they
//! are directly comparable inside the clustering algorithm.

use crate::clustering::DependenceMatrix;
use crate::error::ProtocolError;
use crate::secure_sum::{secure_contingency_table, SecureSumMode};
use mdrr_core::{empirical_distribution, estimate_proper, PrivacyAccountant, RRMatrix};
use mdrr_data::{AttributeKind, Dataset};
use mdrr_math::ContingencyTable;
use rand::Rng;

/// Result of a privacy-preserving dependence estimation: the estimated
/// matrix plus the privacy budget its computation spent.
#[derive(Debug, Clone, PartialEq)]
pub struct DependenceEstimate {
    /// Estimated pairwise dependences.
    pub matrix: DependenceMatrix,
    /// Privacy budget spent computing them (empty for the methods that rely
    /// on unlinkability rather than randomization).
    pub accountant: PrivacyAccountant,
}

/// The dependence measure of Expressions (8)/(9) computed from a bivariate
/// contingency table (observed or estimated/weighted counts).
pub fn dependence_from_table(
    table: &ContingencyTable,
    kind_x: AttributeKind,
    kind_y: AttributeKind,
) -> f64 {
    if kind_x == AttributeKind::Ordinal && kind_y == AttributeKind::Ordinal {
        pearson_from_table(table).abs().min(1.0)
    } else {
        table.cramers_v()
    }
}

/// Pearson correlation of the category codes weighted by the cells of a
/// contingency table.  Returns 0 when either marginal is degenerate.
pub fn pearson_from_table(table: &ContingencyTable) -> f64 {
    let total = table.total();
    if total <= 0.0 {
        return 0.0;
    }
    let row_totals = table.row_totals();
    let col_totals = table.col_totals();
    let mean_x: f64 = row_totals
        .iter()
        .enumerate()
        .map(|(a, &w)| a as f64 * w)
        .sum::<f64>()
        / total;
    let mean_y: f64 = col_totals
        .iter()
        .enumerate()
        .map(|(b, &w)| b as f64 * w)
        .sum::<f64>()
        / total;
    let var_x: f64 = row_totals
        .iter()
        .enumerate()
        .map(|(a, &w)| w * (a as f64 - mean_x).powi(2))
        .sum::<f64>()
        / total;
    let var_y: f64 = col_totals
        .iter()
        .enumerate()
        .map(|(b, &w)| w * (b as f64 - mean_y).powi(2))
        .sum::<f64>()
        / total;
    if var_x <= 0.0 || var_y <= 0.0 {
        return 0.0;
    }
    let mut cov = 0.0;
    for a in 0..table.rows() {
        for b in 0..table.cols() {
            cov += table.count(a, b) * (a as f64 - mean_x) * (b as f64 - mean_y);
        }
    }
    cov /= total;
    cov / (var_x.sqrt() * var_y.sqrt())
}

/// Trusted-party baseline: dependences computed directly on the true data
/// set.  Not privacy preserving — provided for comparison and testing.
///
/// # Errors
/// Propagates dataset access errors.
pub fn dependence_matrix_plain(dataset: &Dataset) -> Result<DependenceMatrix, ProtocolError> {
    dependence_matrix_of(dataset)
}

/// Section 4.1: dependences computed on a data set in which every attribute
/// has been independently randomized with the uniform-keep mechanism at
/// keep probability `p`.
///
/// Per Corollary 1 the covariance ranking is preserved; empirically the same
/// holds (approximately) for the |correlation| / Cramér's V measures used by
/// the clustering algorithm, which is all Algorithm 1 needs.
///
/// # Errors
/// * [`ProtocolError::InvalidConfiguration`] for an empty dataset or
///   `p ∉ [0, 1]`;
/// * propagated randomization/estimation errors otherwise.
pub fn dependence_via_randomized_attributes(
    dataset: &Dataset,
    p: f64,
    rng: &mut impl Rng,
) -> Result<DependenceEstimate, ProtocolError> {
    if dataset.is_empty() {
        return Err(ProtocolError::config(
            "dependence estimation needs at least one record",
        ));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(ProtocolError::config(format!(
            "keep probability must lie in [0, 1], got {p}"
        )));
    }
    let schema = dataset.schema();
    let mut accountant = PrivacyAccountant::new();
    let mut matrices = Vec::with_capacity(schema.len());
    for attribute in schema.attributes() {
        let matrix = RRMatrix::uniform_keep(p, attribute.cardinality())?;
        accountant.record_matrix(
            format!("dependence step: RR on {}", attribute.name()),
            &matrix,
        );
        matrices.push(matrix);
    }
    let randomized = mdrr_core::randomize_dataset_independent(dataset, &matrices, rng)?;
    let matrix = dependence_matrix_of(&randomized)?;
    Ok(DependenceEstimate { matrix, accountant })
}

/// Section 4.2: exact bivariate distributions obtained through the
/// secure-sum protocol (no randomization, but each published pair is
/// unlinkable to its owner and to the owner's other pairs).
///
/// The values are therefore *exact*; the `mode` only decides whether the
/// full share-exchange transcript is simulated.
///
/// # Errors
/// * [`ProtocolError::InvalidConfiguration`] for an empty dataset;
/// * propagated errors otherwise.
pub fn dependence_via_exact_bivariate(
    dataset: &Dataset,
    mode: SecureSumMode,
    rng: &mut impl Rng,
) -> Result<DependenceEstimate, ProtocolError> {
    if dataset.is_empty() {
        return Err(ProtocolError::config(
            "dependence estimation needs at least one record",
        ));
    }
    let schema = dataset.schema();
    let m = schema.len();
    let matrix = DependenceMatrix::from_fn(m, |_, _| 0.0)?;
    let mut matrix = matrix;
    for i in 0..m {
        for j in (i + 1)..m {
            let xs = dataset.column(i)?;
            let ys = dataset.column(j)?;
            let table = secure_contingency_table(
                xs,
                ys,
                schema.attribute(i)?.cardinality(),
                schema.attribute(j)?.cardinality(),
                mode,
                rng,
            )?;
            let dep = dependence_from_table(
                &table,
                schema.attribute(i)?.kind(),
                schema.attribute(j)?.kind(),
            );
            matrix.set(i, j, dep);
        }
    }
    // No randomization is applied, so no ε is spent; the protection comes
    // from unlinkability (see the paper's discussion in Section 4.2).
    Ok(DependenceEstimate {
        matrix,
        accountant: PrivacyAccountant::new(),
    })
}

/// Section 4.3: each pair of attributes is randomized *jointly* with a
/// uniform-keep matrix over the pair's Cartesian product, the distribution
/// of the masked pairs is computed through the secure sum, and the true
/// bivariate distribution is estimated with Equation (2).  Dependences are
/// then computed from the estimated distributions.
///
/// Thanks to the unlinkability provided by the secure sum, the paper argues
/// parallel composition applies across the `m − 1` releases of each
/// attribute; the returned accountant records every release so callers can
/// choose either composition rule.
///
/// # Errors
/// * [`ProtocolError::InvalidConfiguration`] for an empty dataset or
///   `p ∉ [0, 1]`;
/// * propagated errors otherwise.
pub fn dependence_via_rr_pairs(
    dataset: &Dataset,
    p: f64,
    mode: SecureSumMode,
    rng: &mut impl Rng,
) -> Result<DependenceEstimate, ProtocolError> {
    if dataset.is_empty() {
        return Err(ProtocolError::config(
            "dependence estimation needs at least one record",
        ));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(ProtocolError::config(format!(
            "keep probability must lie in [0, 1], got {p}"
        )));
    }
    let schema = dataset.schema();
    let m = schema.len();
    let n = dataset.n_records();
    let mut matrix = DependenceMatrix::identity(m)?;
    let mut accountant = PrivacyAccountant::new();

    for i in 0..m {
        for j in (i + 1)..m {
            let card_i = schema.attribute(i)?.cardinality();
            let card_j = schema.attribute(j)?.cardinality();
            let (domain, codes) = dataset.joint_codes(&[i, j])?;
            let pair_matrix = RRMatrix::uniform_keep(p, domain.size())?;
            accountant.record_matrix(
                format!(
                    "dependence step: RR on pair ({}, {})",
                    schema.attribute(i)?.name(),
                    schema.attribute(j)?.name()
                ),
                &pair_matrix,
            );

            // Each party masks her pair locally…
            let masked = pair_matrix.randomize_column(&codes, rng)?;
            // …the masked distribution is aggregated through the secure sum
            // (one secure frequency per masked combination)…
            let lambda_hat = match mode {
                SecureSumMode::Aggregate => empirical_distribution(&masked, domain.size())?,
                SecureSumMode::Simulate => {
                    let session = crate::secure_sum::SecureSumSession::new(n)?;
                    let mut counts = vec![0.0f64; domain.size()];
                    for (cell, count) in counts.iter_mut().enumerate() {
                        let indicators: Vec<bool> =
                            masked.iter().map(|&c| c as usize == cell).collect();
                        *count = session.sum_indicators(&indicators, rng)? as f64;
                    }
                    counts.iter().map(|&c| c / n as f64).collect()
                }
            };
            // …and Equation (2) recovers the estimated true pair distribution.
            let pi_hat = estimate_proper(&pair_matrix, &lambda_hat)?;

            // Turn the estimated distribution into expected counts to reuse
            // the contingency-table machinery.
            let mut table = ContingencyTable::new(card_i, card_j)?;
            for (cell, &prob) in pi_hat.iter().enumerate() {
                let tuple = domain.decode(cell)?;
                table.add(tuple[0] as usize, tuple[1] as usize, prob * n as f64)?;
            }
            let dep = dependence_from_table(
                &table,
                schema.attribute(i)?.kind(),
                schema.attribute(j)?.kind(),
            );
            matrix.set(i, j, dep);
        }
    }
    Ok(DependenceEstimate { matrix, accountant })
}

/// Dependence matrix of a (plain or randomized) dataset, per
/// Expressions (8)/(9).
fn dependence_matrix_of(dataset: &Dataset) -> Result<DependenceMatrix, ProtocolError> {
    let schema = dataset.schema();
    let m = schema.len();
    let mut matrix = DependenceMatrix::identity(m)?;
    for i in 0..m {
        for j in (i + 1)..m {
            let xs = dataset.column(i)?;
            let ys = dataset.column(j)?;
            let table = ContingencyTable::from_codes(
                xs,
                ys,
                schema.attribute(i)?.cardinality(),
                schema.attribute(j)?.cardinality(),
            )?;
            let dep = dependence_from_table(
                &table,
                schema.attribute(i)?.kind(),
                schema.attribute(j)?.kind(),
            );
            matrix.set(i, j, dep);
        }
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::{Attribute, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 4-attribute dataset where (0,1) are strongly dependent, (2,3) are
    /// moderately dependent and cross pairs are independent.
    fn structured_dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::new(
                "A",
                AttributeKind::Ordinal,
                vec!["0".into(), "1".into(), "2".into()],
            )
            .unwrap(),
            Attribute::new(
                "B",
                AttributeKind::Ordinal,
                vec!["0".into(), "1".into(), "2".into()],
            )
            .unwrap(),
            Attribute::new("C", AttributeKind::Nominal, vec!["x".into(), "y".into()]).unwrap(),
            Attribute::new("D", AttributeKind::Nominal, vec!["u".into(), "v".into()]).unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::empty(schema);
        for _ in 0..n {
            let a = rng.gen_range(0..3u32);
            // B equals A 85 % of the time.
            let b = if rng.gen::<f64>() < 0.85 {
                a
            } else {
                rng.gen_range(0..3u32)
            };
            let c = rng.gen_range(0..2u32);
            // D equals C 70 % of the time.
            let d = if rng.gen::<f64>() < 0.7 {
                c
            } else {
                rng.gen_range(0..2u32)
            };
            ds.push_record(&[a, b, c, d]).unwrap();
        }
        ds
    }

    #[test]
    fn plain_matrix_reflects_the_construction() {
        let ds = structured_dataset(6_000, 1);
        let dep = dependence_matrix_plain(&ds).unwrap();
        assert!(
            dep.get(0, 1) > 0.6,
            "A-B should be strong, got {}",
            dep.get(0, 1)
        );
        assert!(
            dep.get(2, 3) > 0.25,
            "C-D should be moderate, got {}",
            dep.get(2, 3)
        );
        assert!(
            dep.get(0, 2) < 0.1,
            "A-C should be weak, got {}",
            dep.get(0, 2)
        );
        assert!(
            dep.get(1, 3) < 0.1,
            "B-D should be weak, got {}",
            dep.get(1, 3)
        );
        // Ranking: A-B > C-D > cross pairs.
        assert!(dep.get(0, 1) > dep.get(2, 3));
    }

    #[test]
    fn pearson_from_table_matches_direct_computation() {
        let xs = [0u32, 1, 2, 0, 1, 2, 2, 2];
        let ys = [0u32, 1, 2, 1, 1, 2, 2, 1];
        let table = ContingencyTable::from_codes(&xs, &ys, 3, 3).unwrap();
        let via_table = pearson_from_table(&table);
        let direct = mdrr_math::correlation::pearson_correlation_codes(&xs, &ys).unwrap();
        assert!((via_table - direct).abs() < 1e-12);
    }

    #[test]
    fn dependence_measure_selection_follows_attribute_kinds() {
        let xs = [0u32, 1, 2, 0, 1, 2];
        let ys = [0u32, 1, 2, 0, 1, 2];
        let table = ContingencyTable::from_codes(&xs, &ys, 3, 3).unwrap();
        let ordinal = dependence_from_table(&table, AttributeKind::Ordinal, AttributeKind::Ordinal);
        let nominal = dependence_from_table(&table, AttributeKind::Nominal, AttributeKind::Ordinal);
        // Perfect monotone relation: both are 1 here, but they are computed
        // through different statistics.
        assert!((ordinal - 1.0).abs() < 1e-9);
        assert!((nominal - 1.0).abs() < 1e-9);
        // An anti-monotone relation keeps |r| = 1 but is still V = 1.
        let ys_rev = [2u32, 1, 0, 2, 1, 0];
        let table_rev = ContingencyTable::from_codes(&xs, &ys_rev, 3, 3).unwrap();
        assert!(
            (dependence_from_table(&table_rev, AttributeKind::Ordinal, AttributeKind::Ordinal)
                - 1.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn randomized_attribute_dependences_preserve_ranking() {
        let ds = structured_dataset(8_000, 2);
        let plain = dependence_matrix_plain(&ds).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let estimated = dependence_via_randomized_attributes(&ds, 0.8, &mut rng).unwrap();
        // Attenuated…
        assert!(estimated.matrix.get(0, 1) < plain.get(0, 1));
        // …but the strong pair still dominates, and the ranking of the
        // clearly separated pairs is preserved.
        assert!(estimated.matrix.get(0, 1) > estimated.matrix.get(2, 3));
        assert!(estimated.matrix.get(2, 3) > estimated.matrix.get(0, 2));
        // Privacy budget was spent on every attribute.
        assert_eq!(estimated.accountant.len(), ds.n_attributes());
        assert!(estimated.accountant.total_sequential() > 0.0);
    }

    #[test]
    fn randomized_attribute_dependences_validate_parameters() {
        let ds = structured_dataset(100, 3);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(dependence_via_randomized_attributes(&ds, 1.5, &mut rng).is_err());
        let empty = Dataset::empty(ds.schema().clone());
        assert!(dependence_via_randomized_attributes(&empty, 0.5, &mut rng).is_err());
    }

    #[test]
    fn exact_bivariate_matches_plain_matrix() {
        let ds = structured_dataset(400, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let plain = dependence_matrix_plain(&ds).unwrap();
        let via_secure =
            dependence_via_exact_bivariate(&ds, SecureSumMode::Simulate, &mut rng).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!((plain.get(i, j) - via_secure.matrix.get(i, j)).abs() < 1e-9);
            }
        }
        // No ε is spent by this method.
        assert!(via_secure.accountant.is_empty());
    }

    #[test]
    fn rr_pairs_dependences_recover_the_structure() {
        let ds = structured_dataset(8_000, 5);
        let mut rng = StdRng::seed_from_u64(11);
        let est = dependence_via_rr_pairs(&ds, 0.85, SecureSumMode::Aggregate, &mut rng).unwrap();
        // The estimated (de-attenuated) dependences keep the strong pair on top.
        assert!(est.matrix.get(0, 1) > est.matrix.get(0, 2));
        assert!(est.matrix.get(0, 1) > 0.3, "got {}", est.matrix.get(0, 1));
        assert!(est.matrix.get(0, 2) < 0.25, "got {}", est.matrix.get(0, 2));
        // One release per attribute pair.
        assert_eq!(est.accountant.len(), 6);
    }

    #[test]
    fn rr_pairs_validates_parameters() {
        let ds = structured_dataset(50, 6);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(dependence_via_rr_pairs(&ds, -0.1, SecureSumMode::Aggregate, &mut rng).is_err());
        let empty = Dataset::empty(ds.schema().clone());
        assert!(dependence_via_rr_pairs(&empty, 0.5, SecureSumMode::Aggregate, &mut rng).is_err());
    }

    #[test]
    fn rr_pairs_with_simulated_secure_sum_matches_aggregate_shape() {
        // Small n so the O(n²) simulation stays fast; we only check the
        // strong pair still dominates.
        let ds = structured_dataset(150, 7);
        let mut rng = StdRng::seed_from_u64(13);
        let est = dependence_via_rr_pairs(&ds, 0.9, SecureSumMode::Simulate, &mut rng).unwrap();
        assert!(est.matrix.get(0, 1) > est.matrix.get(0, 2));
    }
}
