//! Secure-sum substrate (Sections 4.2 and 4.3 of the paper).
//!
//! To compute bivariate frequencies without a trusted party, the paper uses
//! an additive-sharing secure-sum protocol (an instantiation of the
//! Ben-Or–Goldwasser–Wigderson framework): to compute the number of parties
//! whose pair of values equals `(a, a′)`,
//!
//! 1. each party `i` chooses `n` random shares `r_i1 … r_in` summing to 0
//!    modulo `n + 1`;
//! 2. party `i` sends share `r_ij` to party `j`;
//! 3. party `j` adds up the shares it received, adds 1 if its own pair of
//!    values is `(a, a′)`, and broadcasts the result;
//! 4. the sum of the broadcasts modulo `n + 1` is the frequency.
//!
//! The modulus `n + 1` suffices because a frequency can never exceed `n`.
//! Nothing any single party sees reveals another party's value: the shares
//! are uniformly random and the broadcast values are masked by them.
//!
//! This module simulates the protocol in process.  [`SecureSumSession`]
//! runs the full share exchange (quadratic in the number of parties —
//! perfect for tests, examples and moderate `n`); the contingency-table
//! helpers accept a [`SecureSumMode`] so the experiment harness can swap in
//! the algebraically identical direct aggregation when `n` is in the tens
//! of thousands and the full transcript would only burn time.

use crate::error::ProtocolError;
use mdrr_math::ContingencyTable;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Whether to run the full share-exchange simulation or only its
/// aggregated result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SecureSumMode {
    /// Full additive-sharing simulation (O(n²) share messages).  Use for
    /// tests and small `n`.
    Simulate,
    /// Direct aggregation of the same quantity (O(n)).  Numerically and
    /// semantically identical to the protocol's output; the privacy
    /// argument is unchanged because the output *is* the only value the
    /// protocol reveals.
    Aggregate,
}

/// A secure-sum session over a fixed number of parties.
#[derive(Debug, Clone)]
pub struct SecureSumSession {
    parties: usize,
    modulus: u64,
}

impl SecureSumSession {
    /// Creates a session for `parties` parties with modulus `parties + 1`
    /// (the paper's choice: a frequency can never exceed the number of
    /// parties).
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if `parties == 0`.
    pub fn new(parties: usize) -> Result<Self, ProtocolError> {
        if parties == 0 {
            return Err(ProtocolError::config("secure sum needs at least one party"));
        }
        Ok(SecureSumSession {
            parties,
            modulus: parties as u64 + 1,
        })
    }

    /// Number of parties in the session.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// The modulus `n + 1`.
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Runs the full protocol on per-party binary contributions
    /// (`true` = "my values match the combination being counted").
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if the number of
    /// contributions differs from the session size.
    pub fn sum_indicators(
        &self,
        indicators: &[bool],
        rng: &mut impl Rng,
    ) -> Result<u64, ProtocolError> {
        let contributions: Vec<u64> = indicators.iter().map(|&b| u64::from(b)).collect();
        self.sum(&contributions, rng)
    }

    /// Runs the full protocol on arbitrary per-party contributions (each
    /// reduced modulo `n + 1`).  The paper only needs 0/1 contributions but
    /// the protocol itself works for any residues.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if the number of
    /// contributions differs from the session size.
    pub fn sum(&self, contributions: &[u64], rng: &mut impl Rng) -> Result<u64, ProtocolError> {
        if contributions.len() != self.parties {
            return Err(ProtocolError::config(format!(
                "expected {} contributions, got {}",
                self.parties,
                contributions.len()
            )));
        }
        let n = self.parties;
        let m = self.modulus;

        // Step 1–2: every party i draws n shares summing to 0 (mod m) and
        // sends share j to party j.  `received[j]` accumulates what party j
        // receives; building it incrementally avoids materialising the full
        // n × n share matrix.
        let mut received = vec![0u64; n];
        for _sender in 0..n {
            let mut partial = 0u64;
            for entry in received.iter_mut().take(n - 1) {
                let share = rng.gen_range(0..m);
                partial = (partial + share) % m;
                *entry = (*entry + share) % m;
            }
            // Last share is chosen so the sender's shares sum to 0 (mod m).
            let last = (m - partial) % m;
            received[n - 1] = (received[n - 1] + last) % m;
        }

        // Step 3: each party broadcasts the sum of its received shares plus
        // its own contribution.
        let mut total = 0u64;
        for (j, &contribution) in contributions.iter().enumerate() {
            let broadcast = (received[j] + contribution % m) % m;
            total = (total + broadcast) % m;
        }

        // Step 4: the share masks cancel, leaving the sum of contributions.
        Ok(total)
    }
}

/// Computes the contingency table of two code columns through the
/// secure-sum protocol: one secure sum per cell of the table, exactly as
/// prescribed in Section 4.2.
///
/// # Errors
/// * [`ProtocolError::InvalidConfiguration`] for mismatched column lengths
///   or empty input;
/// * [`ProtocolError::Math`] for out-of-range codes.
pub fn secure_contingency_table(
    xs: &[u32],
    ys: &[u32],
    x_card: usize,
    y_card: usize,
    mode: SecureSumMode,
    rng: &mut impl Rng,
) -> Result<ContingencyTable, ProtocolError> {
    if xs.len() != ys.len() {
        return Err(ProtocolError::config(format!(
            "column lengths differ: {} vs {}",
            xs.len(),
            ys.len()
        )));
    }
    if xs.is_empty() {
        return Err(ProtocolError::config(
            "secure contingency table needs at least one record",
        ));
    }
    match mode {
        SecureSumMode::Aggregate => Ok(ContingencyTable::from_codes(xs, ys, x_card, y_card)?),
        SecureSumMode::Simulate => {
            let session = SecureSumSession::new(xs.len())?;
            let mut table = ContingencyTable::new(x_card, y_card)?;
            for a in 0..x_card as u32 {
                for b in 0..y_card as u32 {
                    let indicators: Vec<bool> = xs
                        .iter()
                        .zip(ys.iter())
                        .map(|(&x, &y)| x == a && y == b)
                        .collect();
                    let count = session.sum_indicators(&indicators, rng)?;
                    table.add(a as usize, b as usize, count as f64)?;
                }
            }
            Ok(table)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn session_validates_inputs() {
        assert!(SecureSumSession::new(0).is_err());
        let s = SecureSumSession::new(3).unwrap();
        assert_eq!(s.parties(), 3);
        assert_eq!(s.modulus(), 4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(s.sum(&[1, 0], &mut rng).is_err());
    }

    #[test]
    fn secure_sum_equals_plain_sum() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 17, 64] {
            let session = SecureSumSession::new(n).unwrap();
            let indicators: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let expected = indicators.iter().filter(|&&b| b).count() as u64;
            for _ in 0..5 {
                assert_eq!(
                    session.sum_indicators(&indicators, &mut rng).unwrap(),
                    expected
                );
            }
        }
    }

    #[test]
    fn secure_sum_handles_all_zero_and_all_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20;
        let session = SecureSumSession::new(n).unwrap();
        assert_eq!(
            session.sum_indicators(&vec![false; n], &mut rng).unwrap(),
            0
        );
        assert_eq!(
            session.sum_indicators(&vec![true; n], &mut rng).unwrap(),
            n as u64
        );
    }

    #[test]
    fn general_contributions_reduce_modulo_n_plus_1() {
        let mut rng = StdRng::seed_from_u64(3);
        let session = SecureSumSession::new(4).unwrap();
        // 7 + 1 + 0 + 2 = 10 ≡ 0 (mod 5)
        assert_eq!(session.sum(&[7, 1, 0, 2], &mut rng).unwrap(), 0);
        // 1 + 1 + 1 + 0 = 3
        assert_eq!(session.sum(&[1, 1, 1, 0], &mut rng).unwrap(), 3);
    }

    #[test]
    fn simulated_contingency_table_matches_direct_counting() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs = [0u32, 0, 1, 2, 1, 0, 2, 2, 1, 0];
        let ys = [1u32, 0, 1, 1, 0, 1, 0, 1, 1, 0];
        let simulated =
            secure_contingency_table(&xs, &ys, 3, 2, SecureSumMode::Simulate, &mut rng).unwrap();
        let direct =
            secure_contingency_table(&xs, &ys, 3, 2, SecureSumMode::Aggregate, &mut rng).unwrap();
        for a in 0..3 {
            for b in 0..2 {
                assert_eq!(simulated.count(a, b), direct.count(a, b));
            }
        }
        assert_eq!(simulated.total(), 10.0);
    }

    #[test]
    fn contingency_table_validates_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(
            secure_contingency_table(&[0, 1], &[0], 2, 2, SecureSumMode::Aggregate, &mut rng)
                .is_err()
        );
        assert!(
            secure_contingency_table(&[], &[], 2, 2, SecureSumMode::Simulate, &mut rng).is_err()
        );
    }

    #[test]
    fn share_masking_changes_broadcasts_between_runs() {
        // The *result* is deterministic but the transcript (and therefore
        // anything an eavesdropper sees) is randomized.  We approximate this
        // by checking two runs with different RNG states still agree on the
        // output — i.e. the randomness cancels exactly.
        let indicators: Vec<bool> = (0..30).map(|i| i % 4 == 0).collect();
        let session = SecureSumSession::new(30).unwrap();
        let r1 = session
            .sum_indicators(&indicators, &mut StdRng::seed_from_u64(100))
            .unwrap();
        let r2 = session
            .sum_indicators(&indicators, &mut StdRng::seed_from_u64(200))
            .unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, 8);
    }
}
