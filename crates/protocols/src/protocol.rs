//! The unified, object-safe protocol surface.
//!
//! The paper defines one conceptual pipeline — client-side randomization of
//! a record into per-channel codes, collector-side unbiased estimation from
//! per-channel count vectors (Equation (2)) — instantiated by RR-Independent,
//! RR-Joint, RR-Clusters and RR-Adjustment.  This module captures that
//! pipeline as two object-safe traits:
//!
//! * [`Protocol`] — the configured mechanism: channel topology,
//!   client-side [`Protocol::encode_record`], collector-side
//!   [`Protocol::release_from_counts`] / [`Protocol::run`], and privacy
//!   accounting.  All four protocols implement it, so streaming ingestion,
//!   evaluation harnesses and benches dispatch through `dyn Protocol`
//!   (typically `Arc<dyn Protocol>`) instead of per-protocol enums.
//! * [`Release`] — the published estimate: record count, marginal and
//!   joint-frequency queries (via the [`FrequencyEstimator`] supertrait),
//!   the privacy ledger and, for batch runs, the randomized microdata.
//!
//! Protocols are constructed either through their concrete constructors or
//! declaratively from a serde-able [`crate::ProtocolSpec`].
//!
//! [`RandomizationLevel`] — the strength of the per-attribute randomization
//! — lives here because it drives all of them: RR-Independent directly, and
//! RR-Joint / RR-Clusters through the equivalent-risk construction of
//! Section 6.3.2 (the same per-attribute budgets, spent jointly).

use crate::adjustment::AdjustmentTarget;
use crate::error::MdrrError;
use crate::estimator::FrequencyEstimator;
use mdrr_core::{PrivacyAccountant, RRMatrix};
use mdrr_data::{Dataset, Schema};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How strongly each attribute is randomized.
///
/// A level names the *per-attribute* randomization strength RR-Independent
/// would use.  The same level also drives RR-Joint and RR-Clusters through
/// the equivalent-risk construction (Section 6.3.2): the per-attribute
/// budgets `ε_A` implied by the level are spent jointly, so all three
/// protocols built from one level offer the same total differential-privacy
/// guarantee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RandomizationLevel {
    /// Keep each attribute's true value with probability `p` and otherwise
    /// redraw uniformly from the attribute's domain (the mechanism used in
    /// the paper's experiments, Section 6.3, parameterised by
    /// `p ∈ {0.1, 0.3, 0.5, 0.7}`).
    KeepProbability(f64),
    /// Give each attribute the optimal matrix for the same privacy budget
    /// ε (Section 6.3.1).
    EpsilonPerAttribute(f64),
    /// Explicit per-attribute privacy budgets, in schema order.
    Epsilons(Vec<f64>),
}

impl RandomizationLevel {
    /// The per-attribute randomization matrices RR-Independent uses for
    /// this level over `schema`, in schema order.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for invalid levels
    /// (probability outside `[0, 1]`, negative ε, wrong budget count).
    pub fn independent_matrices(&self, schema: &Schema) -> Result<Vec<RRMatrix>, MdrrError> {
        match self {
            RandomizationLevel::KeepProbability(p) => schema
                .attributes()
                .iter()
                .map(|a| RRMatrix::uniform_keep(*p, a.cardinality()).map_err(MdrrError::from))
                .collect(),
            RandomizationLevel::EpsilonPerAttribute(eps) => schema
                .attributes()
                .iter()
                .map(|a| RRMatrix::from_epsilon(*eps, a.cardinality()).map_err(MdrrError::from))
                .collect(),
            RandomizationLevel::Epsilons(budgets) => {
                if budgets.len() != schema.len() {
                    return Err(MdrrError::config(format!(
                        "expected {} per-attribute budgets, got {}",
                        schema.len(),
                        budgets.len()
                    )));
                }
                schema
                    .attributes()
                    .iter()
                    .zip(budgets.iter())
                    .map(|(a, &eps)| {
                        RRMatrix::from_epsilon(eps, a.cardinality()).map_err(MdrrError::from)
                    })
                    .collect()
            }
        }
    }

    /// The per-attribute privacy budgets `ε_A` this level implies over
    /// `schema` (Expression (4)) — the inputs to the equivalent-risk
    /// construction of RR-Joint and RR-Clusters (Section 6.3.2).
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for invalid levels, or
    /// when a budget is infinite (keep probability 1 offers no privacy and
    /// cannot be spent jointly).
    pub fn attribute_epsilons(&self, schema: &Schema) -> Result<Vec<f64>, MdrrError> {
        let epsilons: Vec<f64> = self
            .independent_matrices(schema)?
            .iter()
            .map(RRMatrix::epsilon)
            .collect();
        if epsilons.iter().any(|e| !e.is_finite()) {
            return Err(MdrrError::config(
                "a keep probability of 1 gives an infinite budget; use a value below 1",
            ));
        }
        Ok(epsilons)
    }
}

/// A configured MDRR mechanism, seen uniformly by every consumer.
///
/// Every protocol, from the collector's point of view, is a set of
/// *channels*: one per attribute for RR-Independent, a single channel over
/// the full joint domain for RR-Joint, one per cluster for RR-Clusters,
/// and the base protocol's channels for RR-Adjustment.  A client randomizes
/// her record into one code per channel ([`Protocol::encode_record`]); the
/// collector estimates from per-channel count vectors
/// ([`Protocol::release_from_counts`]) or from pooled randomized microdata
/// ([`Protocol::release_from_randomized`], [`Protocol::run`]).
///
/// The trait is object-safe: streaming ingestion (`mdrr-stream`), the
/// evaluation harness and the benches hold `Arc<dyn Protocol>` and work
/// with any current or future protocol unchanged.  Concrete protocol types
/// keep their inherent, statically-dispatched methods (which these trait
/// impls delegate to), so monomorphised hot paths lose nothing.
pub trait Protocol: fmt::Debug + Send + Sync {
    /// Human-readable protocol name (used in ledgers, logs and reports).
    fn name(&self) -> String;

    /// The schema the protocol was configured for.
    fn schema(&self) -> &Schema;

    /// The domain size of each channel, in channel order.
    fn channel_sizes(&self) -> Vec<usize>;

    /// Client-side encoding: randomizes one true record into its report —
    /// one randomized code per channel, in channel order.  This is the unit
    /// of work a party performs locally before sending anything to the
    /// collector.
    ///
    /// # Errors
    /// Returns [`MdrrError::Data`] if the record does not fit the schema;
    /// propagated randomization errors otherwise.
    fn encode_record(&self, record: &[u32], rng: &mut dyn RngCore) -> Result<Vec<u32>, MdrrError>;

    /// Decodes a report's channel codes back into the randomized microdata
    /// record the batch collector would have received (the inverse of the
    /// channel encoding; the randomization itself is of course not
    /// invertible).
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if the report's arity or
    /// codes do not match the protocol's channels.
    fn decode_report(&self, codes: &[u32]) -> Result<Vec<u32>, MdrrError>;

    /// Collector-side estimation from accumulated sufficient statistics:
    /// builds a release from per-channel count vectors over the randomized
    /// codes of `n_records` reports.  Numerically identical to the batch
    /// estimate over the same codes, but carries no randomized microdata.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for shape or consistency
    /// violations, and [`MdrrError::UnsupportedQuery`] for protocols that
    /// cannot estimate from counts alone (RR-Adjustment needs the
    /// randomized microdata).
    fn release_from_counts(
        &self,
        counts: &[Vec<u64>],
        n_records: usize,
    ) -> Result<Box<dyn Release>, MdrrError>;

    /// Collector-side estimation from an already-randomized data set (the
    /// pooled reports of all parties, decoded to microdata).
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for a schema mismatch or
    /// an empty data set; propagated estimation errors otherwise.
    fn release_from_randomized(&self, randomized: Dataset) -> Result<Box<dyn Release>, MdrrError>;

    /// Runs the full protocol: client-side randomization of every record
    /// followed by collector-side estimation.
    ///
    /// # Errors
    /// Same conditions as [`Protocol::release_from_randomized`] plus
    /// propagated randomization errors.
    fn run(&self, dataset: &Dataset, rng: &mut dyn RngCore) -> Result<Box<dyn Release>, MdrrError>;

    /// The per-channel privacy budgets ε the protocol spends, in channel
    /// order (Expression (4)).
    fn epsilons(&self) -> Vec<f64>;

    /// The total sequential-composition budget of one run.
    fn total_epsilon(&self) -> f64 {
        self.epsilons().iter().sum()
    }
}

/// A published MDRR estimate, seen uniformly by every consumer.
///
/// A release answers arbitrary partial-assignment frequency queries (the
/// [`FrequencyEstimator`] supertrait), exposes per-attribute marginals with
/// one name and one type across all protocols, carries the privacy ledger,
/// and — for batch runs — the randomized microdata set.
pub trait Release: FrequencyEstimator + fmt::Debug + Send + Sync {
    /// The estimated marginal distribution of a single attribute, in schema
    /// order of its categories.
    ///
    /// # Errors
    /// Returns [`MdrrError::UnsupportedQuery`] for a bad attribute index.
    fn marginal(&self, attribute: usize) -> Result<Vec<f64>, MdrrError>;

    /// The privacy ledger of the release.
    fn accountant(&self) -> &PrivacyAccountant;

    /// The published randomized microdata set `Y` — `Some` for batch
    /// releases, `None` for releases assembled from streamed sufficient
    /// statistics, where the microdata is never materialized.
    fn randomized(&self) -> Option<&Dataset>;

    /// The marginal constraints RR-Adjustment (Algorithm 2) would use to
    /// repair this release's independence assumptions: one target per
    /// attribute for RR-Independent, one per cluster for RR-Clusters, the
    /// full joint for RR-Joint.
    ///
    /// # Errors
    /// Returns [`MdrrError::UnsupportedQuery`] for releases that cannot be
    /// adjusted further (e.g. an already-adjusted release).
    fn adjustment_targets(&self) -> Result<Vec<AdjustmentTarget>, MdrrError>;
}

/// Validates a report's channel codes against a protocol's channel layout:
/// the arity must match and every code must lie within its channel's
/// domain.  Shared by the [`Protocol::decode_report`] implementations.
pub(crate) fn validate_report_shape(codes: &[u32], sizes: &[usize]) -> Result<(), MdrrError> {
    if codes.len() != sizes.len() {
        return Err(MdrrError::config(format!(
            "report has {} codes but the protocol has {} channels",
            codes.len(),
            sizes.len()
        )));
    }
    for (k, (&code, &size)) in codes.iter().zip(sizes.iter()).enumerate() {
        if code as usize >= size {
            return Err(MdrrError::config(format!(
                "code {code} out of range for channel {k} ({size} categories)"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::indexed("A", 3).unwrap(),
            Attribute::indexed("B", 2).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn level_matrices_match_the_schema() {
        let s = schema();
        let matrices = RandomizationLevel::KeepProbability(0.7)
            .independent_matrices(&s)
            .unwrap();
        assert_eq!(matrices.len(), 2);
        assert_eq!(matrices[0].size(), 3);
        assert_eq!(matrices[1].size(), 2);

        assert!(RandomizationLevel::KeepProbability(1.5)
            .independent_matrices(&s)
            .is_err());
        assert!(RandomizationLevel::EpsilonPerAttribute(-1.0)
            .independent_matrices(&s)
            .is_err());
        assert!(RandomizationLevel::Epsilons(vec![1.0])
            .independent_matrices(&s)
            .is_err());
    }

    #[test]
    fn level_epsilons_are_finite_and_reject_keep_one() {
        let s = schema();
        let eps = RandomizationLevel::EpsilonPerAttribute(1.2)
            .attribute_epsilons(&s)
            .unwrap();
        assert_eq!(eps.len(), 2);
        for e in eps {
            assert!((e - 1.2).abs() < 1e-9);
        }
        // Keep probability 1 implies infinite budgets and is rejected.
        assert!(RandomizationLevel::KeepProbability(1.0)
            .attribute_epsilons(&s)
            .is_err());
        // Explicit budgets pass through.
        let eps = RandomizationLevel::Epsilons(vec![0.5, 2.0])
            .attribute_epsilons(&s)
            .unwrap();
        assert_eq!(eps, vec![0.5, 2.0]);
    }
}
