//! The unified, object-safe protocol surface.
//!
//! The paper defines one conceptual pipeline — client-side randomization of
//! a record into per-channel codes, collector-side unbiased estimation from
//! per-channel count vectors (Equation (2)) — instantiated by RR-Independent,
//! RR-Joint, RR-Clusters and RR-Adjustment.  This module captures that
//! pipeline as two object-safe traits:
//!
//! * [`Protocol`] — the configured mechanism: channel topology,
//!   client-side [`Protocol::encode_record`], collector-side
//!   [`Protocol::release_from_counts`] / [`Protocol::run`], and privacy
//!   accounting.  All four protocols implement it, so streaming ingestion,
//!   evaluation harnesses and benches dispatch through `dyn Protocol`
//!   (typically `Arc<dyn Protocol>`) instead of per-protocol enums.
//! * [`Release`] — the published estimate: record count, marginal and
//!   joint-frequency queries (via the [`FrequencyEstimator`] supertrait),
//!   the privacy ledger and, for batch runs, the randomized microdata.
//!
//! Protocols are constructed either through their concrete constructors or
//! declaratively from a serde-able [`crate::ProtocolSpec`].
//!
//! [`RandomizationLevel`] — the strength of the per-attribute randomization
//! — lives here because it drives all of them: RR-Independent directly, and
//! RR-Joint / RR-Clusters through the equivalent-risk construction of
//! Section 6.3.2 (the same per-attribute budgets, spent jointly).

use crate::adjustment::AdjustmentTarget;
use crate::error::MdrrError;
use crate::estimator::FrequencyEstimator;
use mdrr_core::{PrivacyAccountant, RRMatrix};
use mdrr_data::{Dataset, RecordsView, Schema};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How strongly each attribute is randomized.
///
/// A level names the *per-attribute* randomization strength RR-Independent
/// would use.  The same level also drives RR-Joint and RR-Clusters through
/// the equivalent-risk construction (Section 6.3.2): the per-attribute
/// budgets `ε_A` implied by the level are spent jointly, so all three
/// protocols built from one level offer the same total differential-privacy
/// guarantee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RandomizationLevel {
    /// Keep each attribute's true value with probability `p` and otherwise
    /// redraw uniformly from the attribute's domain (the mechanism used in
    /// the paper's experiments, Section 6.3, parameterised by
    /// `p ∈ {0.1, 0.3, 0.5, 0.7}`).
    KeepProbability(f64),
    /// Give each attribute the optimal matrix for the same privacy budget
    /// ε (Section 6.3.1).
    EpsilonPerAttribute(f64),
    /// Explicit per-attribute privacy budgets, in schema order.
    Epsilons(Vec<f64>),
}

impl RandomizationLevel {
    /// The per-attribute randomization matrices RR-Independent uses for
    /// this level over `schema`, in schema order.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for invalid levels
    /// (probability outside `[0, 1]`, negative ε, wrong budget count).
    pub fn independent_matrices(&self, schema: &Schema) -> Result<Vec<RRMatrix>, MdrrError> {
        match self {
            RandomizationLevel::KeepProbability(p) => schema
                .attributes()
                .iter()
                .map(|a| RRMatrix::uniform_keep(*p, a.cardinality()).map_err(MdrrError::from))
                .collect(),
            RandomizationLevel::EpsilonPerAttribute(eps) => schema
                .attributes()
                .iter()
                .map(|a| RRMatrix::from_epsilon(*eps, a.cardinality()).map_err(MdrrError::from))
                .collect(),
            RandomizationLevel::Epsilons(budgets) => {
                if budgets.len() != schema.len() {
                    return Err(MdrrError::config(format!(
                        "expected {} per-attribute budgets, got {}",
                        schema.len(),
                        budgets.len()
                    )));
                }
                schema
                    .attributes()
                    .iter()
                    .zip(budgets.iter())
                    .map(|(a, &eps)| {
                        RRMatrix::from_epsilon(eps, a.cardinality()).map_err(MdrrError::from)
                    })
                    .collect()
            }
        }
    }

    /// The per-attribute privacy budgets `ε_A` this level implies over
    /// `schema` (Expression (4)) — the inputs to the equivalent-risk
    /// construction of RR-Joint and RR-Clusters (Section 6.3.2).
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for invalid levels, or
    /// when a budget is infinite (keep probability 1 offers no privacy and
    /// cannot be spent jointly).
    pub fn attribute_epsilons(&self, schema: &Schema) -> Result<Vec<f64>, MdrrError> {
        let epsilons: Vec<f64> = self
            .independent_matrices(schema)?
            .iter()
            .map(RRMatrix::epsilon)
            .collect();
        if epsilons.iter().any(|e| !e.is_finite()) {
            return Err(MdrrError::config(
                "a keep probability of 1 gives an infinite budget; use a value below 1",
            ));
        }
        Ok(epsilons)
    }
}

/// A configured MDRR mechanism, seen uniformly by every consumer.
///
/// Every protocol, from the collector's point of view, is a set of
/// *channels*: one per attribute for RR-Independent, a single channel over
/// the full joint domain for RR-Joint, one per cluster for RR-Clusters,
/// and the base protocol's channels for RR-Adjustment.  A client randomizes
/// her record into one code per channel ([`Protocol::encode_record`]); the
/// collector estimates from per-channel count vectors
/// ([`Protocol::release_from_counts`]) or from pooled randomized microdata
/// ([`Protocol::release_from_randomized`], [`Protocol::run`]).
///
/// The trait is object-safe: streaming ingestion (`mdrr-stream`), the
/// evaluation harness and the benches hold `Arc<dyn Protocol>` and work
/// with any current or future protocol unchanged.  Concrete protocol types
/// keep their inherent, statically-dispatched methods (which these trait
/// impls delegate to), so monomorphised hot paths lose nothing.
pub trait Protocol: fmt::Debug + Send + Sync {
    /// Human-readable protocol name (used in ledgers, logs and reports).
    fn name(&self) -> String;

    /// The schema the protocol was configured for.
    fn schema(&self) -> &Schema;

    /// The domain size of each channel, in channel order.
    fn channel_sizes(&self) -> Vec<usize>;

    /// Client-side encoding: randomizes one true record into its report —
    /// one randomized code per channel, in channel order.  This is the unit
    /// of work a party performs locally before sending anything to the
    /// collector.
    ///
    /// # Errors
    /// Returns [`MdrrError::Data`] if the record does not fit the schema;
    /// propagated randomization errors otherwise.
    fn encode_record(&self, record: &[u32], rng: &mut dyn RngCore) -> Result<Vec<u32>, MdrrError>;

    /// Client-side *batch* encoding: randomizes a whole columnar batch of
    /// true records, appending one code per record to each channel buffer
    /// of `out` (in channel order) — the bulk fast path of the pipeline.
    ///
    /// The contract, shared by the provided implementation and every
    /// override:
    ///
    /// * exactly `records.n_records()` codes are appended to every channel
    ///   buffer, in record order;
    /// * the RNG is consumed in **record-major order** — record `i`'s
    ///   channels in channel order, then record `i + 1` — with the same
    ///   draws per value as [`Protocol::encode_record`], so the batch
    ///   output is bit-identical to encoding the same records one by one
    ///   with the same RNG.  Chunk boundaries therefore do not matter: any
    ///   split of a record stream into consecutive `encode_batch` calls
    ///   over one RNG produces the same codes;
    /// * validation is hoisted: the batch is checked against the schema
    ///   once per call (per-column range scans), not once per record.
    ///
    /// On error, the contents of `out` are unspecified; callers should
    /// clear the buffers before retrying.
    ///
    /// The provided implementation delegates to
    /// [`Protocol::encode_record`] through a reused row buffer; the
    /// concrete protocols override it with allocation-free columnar loops.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if `out` does not have
    /// one buffer per channel, and [`MdrrError::Data`] if a record does
    /// not fit the schema; propagated randomization errors otherwise.
    fn encode_batch(
        &self,
        records: &RecordsView<'_>,
        rng: &mut dyn RngCore,
        out: &mut [Vec<u32>],
    ) -> Result<(), MdrrError> {
        validate_batch_shape(out.len(), self.channel_sizes().len())?;
        let mut row = Vec::with_capacity(records.n_attributes());
        for i in 0..records.n_records() {
            records.read_record(i, &mut row).map_err(MdrrError::from)?;
            let codes = self.encode_record(&row, rng)?;
            for (channel, &code) in out.iter_mut().zip(codes.iter()) {
                channel.push(code);
            }
        }
        Ok(())
    }

    /// Client-side batch encoding straight into per-channel count vectors
    /// — the *sufficient-statistics* fast path of bulk ingestion.
    ///
    /// Randomizes the batch exactly as [`Protocol::encode_batch`] would
    /// (same draw order, same codes — the two are bit-identical under a
    /// shared RNG) but instead of materializing the codes it increments
    /// `tallies[k][code]` for every report's channel-`k` code.  Bulk
    /// collectors that only ever need count vectors (the streaming
    /// accumulators) skip storing and re-reading every code this way.
    ///
    /// `tallies` must hold one count vector per channel, sized to the
    /// channel's domain ([`Protocol::channel_sizes`]); counts are added to
    /// whatever is already there, so a caller can accumulate many batches
    /// into one set of tallies before merging.  On error the tallies are
    /// unchanged (validation happens before any counting).
    ///
    /// The provided implementation encodes through
    /// [`Protocol::encode_batch`] into a scratch batch and counts it; the
    /// concrete protocols override it with fused randomize-and-count
    /// loops.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if `tallies` does not
    /// match the channel topology, and [`MdrrError::Data`] if a record
    /// does not fit the schema; propagated randomization errors otherwise.
    fn encode_tally(
        &self,
        records: &RecordsView<'_>,
        rng: &mut dyn RngCore,
        tallies: &mut [Vec<u64>],
    ) -> Result<(), MdrrError> {
        validate_tally_shape(tallies, &self.channel_sizes())?;
        let mut scratch: Vec<Vec<u32>> = vec![Vec::new(); tallies.len()];
        self.encode_batch(records, rng, &mut scratch)?;
        for (codes, tally) in scratch.iter().zip(tallies.iter_mut()) {
            for &code in codes {
                tally[code as usize] += 1;
            }
        }
        Ok(())
    }

    /// Decodes a report's channel codes back into the randomized microdata
    /// record the batch collector would have received (the inverse of the
    /// channel encoding; the randomization itself is of course not
    /// invertible).
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if the report's arity or
    /// codes do not match the protocol's channels.
    fn decode_report(&self, codes: &[u32]) -> Result<Vec<u32>, MdrrError>;

    /// Collector-side estimation from accumulated sufficient statistics:
    /// builds a release from per-channel count vectors over the randomized
    /// codes of `n_records` reports.  Numerically identical to the batch
    /// estimate over the same codes, but carries no randomized microdata.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for shape or consistency
    /// violations, and [`MdrrError::UnsupportedQuery`] for protocols that
    /// cannot estimate from counts alone (RR-Adjustment needs the
    /// randomized microdata).
    fn release_from_counts(
        &self,
        counts: &[Vec<u64>],
        n_records: usize,
    ) -> Result<Box<dyn Release>, MdrrError>;

    /// Collector-side estimation from an already-randomized data set (the
    /// pooled reports of all parties, decoded to microdata).
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for a schema mismatch or
    /// an empty data set; propagated estimation errors otherwise.
    fn release_from_randomized(&self, randomized: Dataset) -> Result<Box<dyn Release>, MdrrError>;

    /// Runs the full protocol: client-side randomization of every record
    /// followed by collector-side estimation.
    ///
    /// # Errors
    /// Same conditions as [`Protocol::release_from_randomized`] plus
    /// propagated randomization errors.
    fn run(&self, dataset: &Dataset, rng: &mut dyn RngCore) -> Result<Box<dyn Release>, MdrrError>;

    /// The per-channel privacy budgets ε the protocol spends, in channel
    /// order (Expression (4)).
    fn epsilons(&self) -> Vec<f64>;

    /// The total sequential-composition budget of one run.
    fn total_epsilon(&self) -> f64 {
        self.epsilons().iter().sum()
    }
}

/// A published MDRR estimate, seen uniformly by every consumer.
///
/// A release answers arbitrary partial-assignment frequency queries (the
/// [`FrequencyEstimator`] supertrait), exposes per-attribute marginals with
/// one name and one type across all protocols, carries the privacy ledger,
/// and — for batch runs — the randomized microdata set.
pub trait Release: FrequencyEstimator + fmt::Debug + Send + Sync {
    /// The estimated marginal distribution of a single attribute, in schema
    /// order of its categories.
    ///
    /// # Errors
    /// Returns [`MdrrError::UnsupportedQuery`] for a bad attribute index.
    fn marginal(&self, attribute: usize) -> Result<Vec<f64>, MdrrError>;

    /// The privacy ledger of the release.
    fn accountant(&self) -> &PrivacyAccountant;

    /// The published randomized microdata set `Y` — `Some` for batch
    /// releases, `None` for releases assembled from streamed sufficient
    /// statistics, where the microdata is never materialized.
    fn randomized(&self) -> Option<&Dataset>;

    /// The marginal constraints RR-Adjustment (Algorithm 2) would use to
    /// repair this release's independence assumptions: one target per
    /// attribute for RR-Independent, one per cluster for RR-Clusters, the
    /// full joint for RR-Joint.
    ///
    /// # Errors
    /// Returns [`MdrrError::UnsupportedQuery`] for releases that cannot be
    /// adjusted further (e.g. an already-adjusted release).
    fn adjustment_targets(&self) -> Result<Vec<AdjustmentTarget>, MdrrError>;
}

/// Raw u64 draws pre-filled per [`with_predrawn`] refill: large enough to
/// amortise the one virtual `fill_u64` call per refill, small enough to
/// stay cache-resident.
const DRAW_BUFFER: usize = 8 * 1024;

/// Drives a batched encoder over `0..n_records` with bulk-pre-drawn
/// randomness: repeatedly fills a raw u64 buffer with
/// `draws_per_record × range_len` consecutive RNG outputs (one virtual
/// [`RngCore::fill_u64`] call per refill instead of one per draw) and
/// hands each record sub-range to `body` together with its draws.
///
/// Because every protocol consumes exactly one draw per (record, channel)
/// — the fused keep/redraw kernel of `mdrr_core` — consuming the buffer in
/// record-major channel order replays the exact `next_u64` stream the
/// per-record path would consume, which is what keeps the batched output
/// bit-identical to repeated [`Protocol::encode_record`] calls.
pub(crate) fn with_predrawn(
    n_records: usize,
    draws_per_record: usize,
    rng: &mut dyn RngCore,
    mut body: impl FnMut(std::ops::Range<usize>, &[u64]),
) {
    debug_assert!(draws_per_record > 0);
    let records_per_fill = (DRAW_BUFFER / draws_per_record).max(1);
    let mut draws = vec![0u64; records_per_fill.min(n_records) * draws_per_record];
    let mut start = 0;
    while start < n_records {
        let end = (start + records_per_fill).min(n_records);
        let buffer = &mut draws[..(end - start) * draws_per_record];
        rng.fill_u64(buffer);
        body(start..end, buffer);
        start = end;
    }
}

/// Gathers the fused mixed-radix joint codes of the records at `range`
/// into `out` (cleared first): record `i` maps to
/// `Σ columns[j][i] · strides[j]`.  Shared by the RR-Joint and
/// RR-Clusters batch encoders, whose per-value validation was hoisted to
/// [`validate_records_view`], so no range re-checks run here.
pub(crate) fn gather_joint_codes(
    columns: &[&[u32]],
    strides: &[usize],
    range: std::ops::Range<usize>,
    out: &mut Vec<u32>,
) {
    out.clear();
    for i in range {
        let mut code = 0usize;
        for (column, &stride) in columns.iter().zip(strides.iter()) {
            code += column[i] as usize * stride;
        }
        out.push(code as u32);
    }
}

/// Validates that a batch-encode output has one buffer per channel.
/// Shared by [`Protocol::encode_batch`] and its overrides.
pub(crate) fn validate_batch_shape(out_len: usize, n_channels: usize) -> Result<(), MdrrError> {
    if out_len != n_channels {
        return Err(MdrrError::config(format!(
            "batch output has {out_len} channel buffers but the protocol has {n_channels} channels"
        )));
    }
    Ok(())
}

/// Validates that a tally-encode output has one count vector per channel,
/// each sized to its channel's domain.  Shared by
/// [`Protocol::encode_tally`] and its overrides.
pub(crate) fn validate_tally_shape(
    tallies: &[Vec<u64>],
    channel_sizes: &[usize],
) -> Result<(), MdrrError> {
    if tallies.len() != channel_sizes.len() {
        return Err(MdrrError::config(format!(
            "tally output has {} count vectors but the protocol has {} channels",
            tallies.len(),
            channel_sizes.len()
        )));
    }
    for (k, (tally, &size)) in tallies.iter().zip(channel_sizes.iter()).enumerate() {
        if tally.len() != size {
            return Err(MdrrError::config(format!(
                "tally for channel {k} has {} cells but the channel domain has {size}",
                tally.len()
            )));
        }
    }
    Ok(())
}

/// Validates a columnar record batch against a schema in one pass per
/// column: the arity must match and every code must lie within its
/// attribute's domain.  This is the once-per-batch replacement for the
/// per-record `Schema::validate_record` calls of the scalar path, shared
/// by the tuned [`Protocol::encode_batch`] overrides.
pub(crate) fn validate_records_view(
    records: &RecordsView<'_>,
    schema: &Schema,
) -> Result<(), MdrrError> {
    if records.n_attributes() != schema.len() {
        return Err(MdrrError::config(format!(
            "batch records have {} attributes but the schema has {}",
            records.n_attributes(),
            schema.len()
        )));
    }
    for (col, attribute) in records.columns().iter().zip(schema.attributes()) {
        let cardinality = attribute.cardinality() as u32;
        if let Some(&bad) = col.iter().find(|&&v| v >= cardinality) {
            return Err(MdrrError::config(format!(
                "code {bad} out of range for attribute `{}` ({cardinality} categories)",
                attribute.name()
            )));
        }
    }
    Ok(())
}

/// Validates a report's channel codes against a protocol's channel layout:
/// the arity must match and every code must lie within its channel's
/// domain.  Shared by the [`Protocol::decode_report`] implementations.
pub(crate) fn validate_report_shape(codes: &[u32], sizes: &[usize]) -> Result<(), MdrrError> {
    if codes.len() != sizes.len() {
        return Err(MdrrError::config(format!(
            "report has {} codes but the protocol has {} channels",
            codes.len(),
            sizes.len()
        )));
    }
    for (k, (&code, &size)) in codes.iter().zip(sizes.iter()).enumerate() {
        if code as usize >= size {
            return Err(MdrrError::config(format!(
                "code {code} out of range for channel {k} ({size} categories)"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::indexed("A", 3).unwrap(),
            Attribute::indexed("B", 2).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn level_matrices_match_the_schema() {
        let s = schema();
        let matrices = RandomizationLevel::KeepProbability(0.7)
            .independent_matrices(&s)
            .unwrap();
        assert_eq!(matrices.len(), 2);
        assert_eq!(matrices[0].size(), 3);
        assert_eq!(matrices[1].size(), 2);

        assert!(RandomizationLevel::KeepProbability(1.5)
            .independent_matrices(&s)
            .is_err());
        assert!(RandomizationLevel::EpsilonPerAttribute(-1.0)
            .independent_matrices(&s)
            .is_err());
        assert!(RandomizationLevel::Epsilons(vec![1.0])
            .independent_matrices(&s)
            .is_err());
    }

    #[test]
    fn level_epsilons_are_finite_and_reject_keep_one() {
        let s = schema();
        let eps = RandomizationLevel::EpsilonPerAttribute(1.2)
            .attribute_epsilons(&s)
            .unwrap();
        assert_eq!(eps.len(), 2);
        for e in eps {
            assert!((e - 1.2).abs() < 1e-9);
        }
        // Keep probability 1 implies infinite budgets and is rejected.
        assert!(RandomizationLevel::KeepProbability(1.0)
            .attribute_epsilons(&s)
            .is_err());
        // Explicit budgets pass through.
        let eps = RandomizationLevel::Epsilons(vec![0.5, 2.0])
            .attribute_epsilons(&s)
            .unwrap();
        assert_eq!(eps, vec![0.5, 2.0]);
    }
}
