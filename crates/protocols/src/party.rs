//! The party-side view of the protocols.
//!
//! The paper's trust model is *local anonymization*: each of the `n`
//! parties holds exactly one record and never reveals it; only randomized
//! responses leave her device.  The protocol runners in this crate operate
//! column-wise for efficiency, but the [`Party`] type makes the trust
//! boundary explicit and is useful for examples, simulations of the
//! message flow, and tests that verify the column-wise runners compute the
//! same thing a per-party execution would.

use crate::clustering::Clustering;
use crate::error::ProtocolError;
use mdrr_core::RRMatrix;
use mdrr_data::{Dataset, JointDomain, Schema};
use rand::Rng;

/// One party holding one true record.
#[derive(Debug, Clone, PartialEq)]
pub struct Party {
    record: Vec<u32>,
}

impl Party {
    /// Creates a party from her true record, validated against the schema.
    ///
    /// # Errors
    /// Propagates record-validation errors.
    pub fn new(schema: &Schema, record: Vec<u32>) -> Result<Self, ProtocolError> {
        schema.validate_record(&record)?;
        Ok(Party { record })
    }

    /// One party per record of a dataset (the simulation entry point).
    ///
    /// # Errors
    /// Propagates record access errors.
    pub fn from_dataset(dataset: &Dataset) -> Result<Vec<Party>, ProtocolError> {
        (0..dataset.n_records())
            .map(|i| {
                Ok(Party {
                    record: dataset.record(i)?,
                })
            })
            .collect()
    }

    /// The party's true record.  In a real deployment this never leaves the
    /// party; it is exposed here because the whole protocol runs in one
    /// process.
    pub fn record(&self) -> &[u32] {
        &self.record
    }

    /// Protocol 1 response: each attribute randomized independently.
    ///
    /// # Errors
    /// * [`ProtocolError::InvalidConfiguration`] if the number of matrices
    ///   differs from the record arity;
    /// * propagated randomization errors otherwise.
    pub fn respond_independent(
        &self,
        matrices: &[RRMatrix],
        rng: &mut impl Rng,
    ) -> Result<Vec<u32>, ProtocolError> {
        if matrices.len() != self.record.len() {
            return Err(ProtocolError::config(format!(
                "expected {} matrices, got {}",
                self.record.len(),
                matrices.len()
            )));
        }
        self.record
            .iter()
            .zip(matrices.iter())
            .map(|(&value, matrix)| matrix.randomize(value, rng).map_err(ProtocolError::from))
            .collect()
    }

    /// Protocol 2 response: the whole record encoded into the joint domain
    /// and randomized with a single matrix.
    ///
    /// # Errors
    /// * [`ProtocolError::InvalidConfiguration`] if the matrix size does not
    ///   match the domain;
    /// * propagated encoding/randomization errors otherwise.
    pub fn respond_joint(
        &self,
        domain: &JointDomain,
        matrix: &RRMatrix,
        rng: &mut impl Rng,
    ) -> Result<u32, ProtocolError> {
        if matrix.size() != domain.size() {
            return Err(ProtocolError::config(format!(
                "matrix size {} does not match joint-domain size {}",
                matrix.size(),
                domain.size()
            )));
        }
        let code = domain.encode(&self.record)?;
        Ok(matrix.randomize(code as u32, rng)?)
    }

    /// RR-Clusters response: one randomized joint code per cluster, in
    /// cluster order.
    ///
    /// # Errors
    /// * [`ProtocolError::InvalidConfiguration`] for mismatched clustering /
    ///   domain / matrix lists;
    /// * propagated encoding/randomization errors otherwise.
    pub fn respond_clustered(
        &self,
        clustering: &Clustering,
        domains: &[JointDomain],
        matrices: &[RRMatrix],
        rng: &mut impl Rng,
    ) -> Result<Vec<u32>, ProtocolError> {
        if clustering.len() != domains.len() || clustering.len() != matrices.len() {
            return Err(ProtocolError::config(
                "clustering, domains and matrices must have the same number of clusters",
            ));
        }
        if clustering.attribute_count() != self.record.len() {
            return Err(ProtocolError::config(format!(
                "clustering covers {} attributes but the record has {}",
                clustering.attribute_count(),
                self.record.len()
            )));
        }
        let mut responses = Vec::with_capacity(clustering.len());
        for ((cluster, domain), matrix) in clustering.clusters().iter().zip(domains).zip(matrices) {
            if matrix.size() != domain.size() {
                return Err(ProtocolError::config(format!(
                    "matrix size {} does not match cluster domain size {}",
                    matrix.size(),
                    domain.size()
                )));
            }
            let values: Vec<u32> = cluster.iter().map(|&a| self.record[a]).collect();
            let code = domain.encode(&values)?;
            responses.push(matrix.randomize(code as u32, rng)?);
        }
        Ok(responses)
    }
}

/// Assembles the independent responses of a set of parties into a
/// randomized dataset over the same schema (the data-collector side of
/// Protocol 1).
///
/// # Errors
/// Propagates response and dataset-construction errors.
pub fn collect_independent_responses(
    schema: &Schema,
    parties: &[Party],
    matrices: &[RRMatrix],
    rng: &mut impl Rng,
) -> Result<Dataset, ProtocolError> {
    let mut dataset = Dataset::empty(schema.clone());
    for party in parties {
        let response = party.respond_independent(matrices, rng)?;
        dataset.push_record(&response)?;
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::{Attribute, AttributeKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new(
                "A",
                AttributeKind::Nominal,
                vec!["a".into(), "b".into(), "c".into()],
            )
            .unwrap(),
            Attribute::new("B", AttributeKind::Nominal, vec!["x".into(), "y".into()]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn party_construction_validates_records() {
        assert!(Party::new(&schema(), vec![0, 1]).is_ok());
        assert!(Party::new(&schema(), vec![0]).is_err());
        assert!(Party::new(&schema(), vec![3, 0]).is_err());
    }

    #[test]
    fn from_dataset_creates_one_party_per_record() {
        let ds = Dataset::from_records(schema(), &[vec![0, 0], vec![2, 1]]).unwrap();
        let parties = Party::from_dataset(&ds).unwrap();
        assert_eq!(parties.len(), 2);
        assert_eq!(parties[1].record(), &[2, 1]);
    }

    #[test]
    fn independent_response_shape_and_validation() {
        let party = Party::new(&schema(), vec![1, 0]).unwrap();
        let matrices = vec![
            RRMatrix::identity(3).unwrap(),
            RRMatrix::identity(2).unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            party.respond_independent(&matrices, &mut rng).unwrap(),
            vec![1, 0]
        );
        assert!(party.respond_independent(&matrices[..1], &mut rng).is_err());
    }

    #[test]
    fn joint_response_encodes_then_randomizes() {
        let party = Party::new(&schema(), vec![2, 1]).unwrap();
        let domain = JointDomain::new(&[3, 2]).unwrap();
        let identity = RRMatrix::identity(6).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        // With the identity matrix the response is exactly the encoded record.
        assert_eq!(
            party.respond_joint(&domain, &identity, &mut rng).unwrap(),
            5
        );
        let wrong = RRMatrix::identity(4).unwrap();
        assert!(party.respond_joint(&domain, &wrong, &mut rng).is_err());
    }

    #[test]
    fn clustered_response_validates_shapes() {
        let party = Party::new(&schema(), vec![1, 1]).unwrap();
        let clustering = Clustering::new(vec![vec![0], vec![1]], 2).unwrap();
        let domains = vec![
            JointDomain::new(&[3]).unwrap(),
            JointDomain::new(&[2]).unwrap(),
        ];
        let matrices = vec![
            RRMatrix::identity(3).unwrap(),
            RRMatrix::identity(2).unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            party
                .respond_clustered(&clustering, &domains, &matrices, &mut rng)
                .unwrap(),
            vec![1, 1]
        );
        assert!(party
            .respond_clustered(&clustering, &domains[..1], &matrices, &mut rng)
            .is_err());
        let wrong = vec![
            RRMatrix::identity(5).unwrap(),
            RRMatrix::identity(2).unwrap(),
        ];
        assert!(party
            .respond_clustered(&clustering, &domains, &wrong, &mut rng)
            .is_err());
    }

    #[test]
    fn collected_responses_match_column_wise_runner_distributionally() {
        // Per-party execution and the column-wise runner draw from exactly
        // the same distribution; with the identity matrix both are exact.
        let ds = Dataset::from_records(schema(), &[vec![0, 0], vec![1, 1], vec![2, 0]]).unwrap();
        let parties = Party::from_dataset(&ds).unwrap();
        let matrices = vec![
            RRMatrix::identity(3).unwrap(),
            RRMatrix::identity(2).unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(0);
        let collected =
            collect_independent_responses(ds.schema(), &parties, &matrices, &mut rng).unwrap();
        assert_eq!(collected, ds);

        let via_core = mdrr_core::randomize_dataset_independent(&ds, &matrices, &mut rng).unwrap();
        assert_eq!(via_core, ds);
    }
}
