//! Protocol 1: RR-Independent.
//!
//! Every party randomizes each of her attribute values independently with a
//! per-attribute randomization matrix and publishes the results.  The data
//! collector estimates the marginal distribution of every attribute with
//! Equation (2) and, under the attribute-independence assumption, estimates
//! the frequency of any subset `S ⊆ A_1 × … × A_m` as the sum over the
//! combinations in `S` of the products of the estimated marginals
//! (Section 3.1).
//!
//! This is the baseline of the paper's experiments and the release that
//! RR-Adjustment (Section 5) repairs.

use crate::adjustment::AdjustmentTarget;
use crate::error::{MdrrError, ProtocolError};
use crate::estimator::{validate_assignment, Assignment, FrequencyEstimator};
use crate::protocol::{
    validate_batch_shape, validate_records_view, validate_report_shape, validate_tally_shape,
    with_predrawn, Protocol, Release,
};
use mdrr_core::{
    estimate_proper_from_counts, randomize_dataset_independent, PrivacyAccountant, RRMatrix,
};
use mdrr_data::{Dataset, RecordsView, Schema};
use rand::{Rng, RngCore};

pub use crate::protocol::RandomizationLevel;

/// The RR-Independent protocol, configured for a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct RRIndependent {
    schema: Schema,
    matrices: Vec<RRMatrix>,
}

impl RRIndependent {
    /// Configures the protocol from a randomization level.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] for invalid levels
    /// (probability outside `[0, 1]`, negative ε, wrong budget count).
    pub fn new(schema: Schema, level: &RandomizationLevel) -> Result<Self, ProtocolError> {
        let matrices = level.independent_matrices(&schema)?;
        Ok(RRIndependent { schema, matrices })
    }

    /// Configures the protocol with explicit per-attribute matrices.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if the number of
    /// matrices or any matrix size does not match the schema.
    pub fn from_matrices(schema: Schema, matrices: Vec<RRMatrix>) -> Result<Self, ProtocolError> {
        if matrices.len() != schema.len() {
            return Err(ProtocolError::config(format!(
                "expected {} matrices, got {}",
                schema.len(),
                matrices.len()
            )));
        }
        for (attribute, matrix) in schema.attributes().iter().zip(matrices.iter()) {
            if matrix.size() != attribute.cardinality() {
                return Err(ProtocolError::config(format!(
                    "matrix for `{}` has size {} but the attribute has {} categories",
                    attribute.name(),
                    matrix.size(),
                    attribute.cardinality()
                )));
            }
        }
        Ok(RRIndependent { schema, matrices })
    }

    /// The schema the protocol was configured for.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The per-attribute randomization matrices, in schema order.
    pub fn matrices(&self) -> &[RRMatrix] {
        &self.matrices
    }

    /// Per-attribute privacy budgets ε_A of the configured matrices
    /// (Expression (4)); these are the inputs to the equivalent-risk
    /// construction of RR-Clusters (Section 6.3.2).
    pub fn epsilons(&self) -> Vec<f64> {
        self.matrices.iter().map(RRMatrix::epsilon).collect()
    }

    /// Client-side encoding: randomizes one true record into its report —
    /// one randomized code per attribute.  This is the unit of work a party
    /// performs locally before sending anything to the collector; the
    /// streaming subsystem (`mdrr-stream`) accumulates these reports into
    /// per-attribute count vectors and estimates with
    /// [`RRIndependent::release_from_counts`].
    ///
    /// # Errors
    /// * [`ProtocolError::Data`] if the record does not fit the schema;
    /// * propagated randomization errors otherwise.
    pub fn encode_record(
        &self,
        record: &[u32],
        rng: &mut impl Rng,
    ) -> Result<Vec<u32>, ProtocolError> {
        self.schema.validate_record(record)?;
        record
            .iter()
            .zip(self.matrices.iter())
            .map(|(&value, matrix)| matrix.randomize(value, rng).map_err(ProtocolError::from))
            .collect()
    }

    /// Collector-side estimation from accumulated sufficient statistics:
    /// builds a release from per-attribute count vectors over the
    /// randomized codes of `n_records` reports.  The count vectors are all
    /// the collector needs — the release is numerically identical to the one
    /// [`RRIndependent::run`] computes from the same randomized codes, but
    /// carries no randomized microdata
    /// ([`IndependentRelease::randomized`] is `None`).
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if `n_records` is
    /// zero, the number of count vectors does not match the schema, a count
    /// vector's length does not match its attribute's cardinality, or a
    /// count vector does not sum to `n_records`.
    pub fn release_from_counts(
        &self,
        counts: &[Vec<u64>],
        n_records: usize,
    ) -> Result<IndependentRelease, ProtocolError> {
        if n_records == 0 {
            return Err(ProtocolError::config(
                "cannot build an RR-Independent release from zero reports",
            ));
        }
        if counts.len() != self.matrices.len() {
            return Err(ProtocolError::config(format!(
                "expected {} per-attribute count vectors, got {}",
                self.matrices.len(),
                counts.len()
            )));
        }
        let mut marginals = Vec::with_capacity(self.matrices.len());
        let mut accountant = PrivacyAccountant::new();
        for (j, (matrix, channel)) in self.matrices.iter().zip(counts.iter()).enumerate() {
            if channel.len() != matrix.size() {
                return Err(ProtocolError::config(format!(
                    "count vector for attribute {j} has {} categories, expected {}",
                    channel.len(),
                    matrix.size()
                )));
            }
            let total: u64 = channel.iter().sum();
            if total != n_records as u64 {
                return Err(ProtocolError::config(format!(
                    "count vector for attribute {j} sums to {total} but {n_records} reports \
                     were accumulated"
                )));
            }
            marginals.push(estimate_proper_from_counts(matrix, channel)?);
            accountant.record_matrix(
                format!("RR-Independent on {}", self.schema.attribute(j)?.name()),
                matrix,
            );
        }
        Ok(IndependentRelease {
            randomized: None,
            matrices: self.matrices.clone(),
            marginals,
            accountant,
            n_records,
        })
    }

    /// Collector-side estimation from an already-randomized data set — the
    /// batch entry point of the collector given the pooled reports of all
    /// parties.  [`RRIndependent::run`] is exactly client-side
    /// randomization followed by this constructor.
    ///
    /// # Errors
    /// * [`ProtocolError::InvalidConfiguration`] for a schema mismatch or an
    ///   empty data set;
    /// * propagated estimation errors otherwise.
    pub fn release_from_randomized(
        &self,
        randomized: Dataset,
    ) -> Result<IndependentRelease, ProtocolError> {
        if randomized.schema() != &self.schema {
            return Err(ProtocolError::config(
                "randomized dataset schema does not match the protocol configuration",
            ));
        }
        if randomized.is_empty() {
            return Err(ProtocolError::config(
                "cannot build an RR-Independent release from an empty dataset",
            ));
        }
        let counts: Vec<Vec<u64>> = (0..self.schema.len())
            .map(|j| randomized.marginal_counts(j))
            .collect::<Result<_, _>>()?;
        let mut release = self.release_from_counts(&counts, randomized.n_records())?;
        release.randomized = Some(randomized);
        Ok(release)
    }

    /// Runs the protocol: randomizes the data set (each party/record
    /// independently, each attribute independently) and estimates the
    /// per-attribute true distributions.
    ///
    /// # Errors
    /// * [`ProtocolError::InvalidConfiguration`] if the dataset's schema
    ///   differs from the configured one or the dataset is empty;
    /// * propagated randomization/estimation errors otherwise.
    pub fn run(
        &self,
        dataset: &Dataset,
        rng: &mut impl Rng,
    ) -> Result<IndependentRelease, ProtocolError> {
        if dataset.schema() != &self.schema {
            return Err(ProtocolError::config(
                "dataset schema does not match the protocol configuration",
            ));
        }
        if dataset.is_empty() {
            return Err(ProtocolError::config(
                "cannot run RR-Independent on an empty dataset",
            ));
        }
        let randomized = randomize_dataset_independent(dataset, &self.matrices, rng)?;
        self.release_from_randomized(randomized)
    }
}

/// The output of one run of RR-Independent: the randomized data set (for
/// batch runs), the matrices that produced it, the estimated per-attribute
/// distributions and the privacy ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct IndependentRelease {
    randomized: Option<Dataset>,
    matrices: Vec<RRMatrix>,
    marginals: Vec<Vec<f64>>,
    accountant: PrivacyAccountant,
    n_records: usize,
}

impl IndependentRelease {
    /// The published randomized data set `Y` — `Some` for batch releases
    /// ([`RRIndependent::run`] / [`RRIndependent::release_from_randomized`]),
    /// `None` for releases assembled from streamed sufficient statistics
    /// ([`RRIndependent::release_from_counts`]), where the microdata is
    /// never materialized.
    pub fn randomized(&self) -> Option<&Dataset> {
        self.randomized.as_ref()
    }

    /// The per-attribute randomization matrices.
    pub fn matrices(&self) -> &[RRMatrix] {
        &self.matrices
    }

    /// The estimated true distribution `π̂_j` of attribute `j` (the shared
    /// [`Release::marginal`] accessor; see [`IndependentRelease::marginals`]
    /// for zero-copy access to all of them).
    ///
    /// # Errors
    /// Returns [`ProtocolError::UnsupportedQuery`] for a bad index.
    pub fn marginal(&self, attribute: usize) -> Result<Vec<f64>, ProtocolError> {
        self.marginals.get(attribute).cloned().ok_or_else(|| {
            ProtocolError::unsupported(format!("attribute index {attribute} out of range"))
        })
    }

    /// All estimated marginal distributions, in schema order.
    pub fn marginals(&self) -> &[Vec<f64>] {
        &self.marginals
    }

    /// The privacy ledger of the release (one entry per attribute).
    pub fn accountant(&self) -> &PrivacyAccountant {
        &self.accountant
    }
}

impl FrequencyEstimator for IndependentRelease {
    fn frequency(&self, assignment: &Assignment) -> Result<f64, ProtocolError> {
        let cardinalities: Vec<usize> = self.marginals.iter().map(Vec::len).collect();
        validate_assignment(assignment, &cardinalities)?;
        Ok(assignment
            .iter()
            .map(|&(attribute, code)| self.marginals[attribute][code as usize])
            .product())
    }

    fn record_count(&self) -> usize {
        self.n_records
    }
}

impl Protocol for RRIndependent {
    fn name(&self) -> String {
        "RR-Independent".to_string()
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn channel_sizes(&self) -> Vec<usize> {
        self.matrices.iter().map(RRMatrix::size).collect()
    }

    fn encode_record(&self, record: &[u32], rng: &mut dyn RngCore) -> Result<Vec<u32>, MdrrError> {
        RRIndependent::encode_record(self, record, &mut &mut *rng)
    }

    /// Tuned batch override: the schema is validated once per batch
    /// (per-column range scans), the per-attribute randomization kernels
    /// are prepared once, the randomness is bulk-pre-drawn (one virtual
    /// RNG call per refill), and codes are written straight into the
    /// reusable per-channel buffers — zero allocations per record, pure
    /// arithmetic in the loop.  Draws are consumed record-major (record
    /// `i`'s attributes in schema order), exactly as repeated
    /// [`RRIndependent::encode_record`] calls would consume them.
    fn encode_batch(
        &self,
        records: &RecordsView<'_>,
        rng: &mut dyn RngCore,
        out: &mut [Vec<u32>],
    ) -> Result<(), MdrrError> {
        validate_batch_shape(out.len(), self.matrices.len())?;
        validate_records_view(records, &self.schema)?;
        let n = records.n_records();
        for channel in out.iter_mut() {
            channel.reserve(n);
        }
        let columns = records.columns();
        let samplers: Vec<_> = self.matrices.iter().map(RRMatrix::prepared).collect();
        let m = samplers.len();
        with_predrawn(n, m, rng, |range, draws| {
            // Column-at-a-time over the pre-drawn randomness: channel `j`
            // of record `i` consumes draw `i·m + j` — the record-major
            // mapping of the per-record path — while each channel runs as
            // one tight `RRMatrix::randomize_strided_into` pass.
            for (j, ((column, sampler), channel)) in columns
                .iter()
                .zip(samplers.iter())
                .zip(out.iter_mut())
                .enumerate()
            {
                sampler.randomize_strided_into(&column[range.clone()], draws, j, m, channel);
            }
        });
        Ok(())
    }

    /// Fused randomize-and-count override: the same draw schedule and
    /// codes as the batch encoder, tallied per attribute in one pass —
    /// nothing is stored or re-read.
    fn encode_tally(
        &self,
        records: &RecordsView<'_>,
        rng: &mut dyn RngCore,
        tallies: &mut [Vec<u64>],
    ) -> Result<(), MdrrError> {
        validate_tally_shape(tallies, &Protocol::channel_sizes(self))?;
        validate_records_view(records, &self.schema)?;
        let columns = records.columns();
        let samplers: Vec<_> = self.matrices.iter().map(RRMatrix::prepared).collect();
        let m = samplers.len();
        with_predrawn(records.n_records(), m, rng, |range, draws| {
            for (j, ((column, sampler), tally)) in columns
                .iter()
                .zip(samplers.iter())
                .zip(tallies.iter_mut())
                .enumerate()
            {
                sampler.randomize_strided_tally(&column[range.clone()], draws, j, m, tally);
            }
        });
        Ok(())
    }

    fn decode_report(&self, codes: &[u32]) -> Result<Vec<u32>, MdrrError> {
        validate_report_shape(codes, &Protocol::channel_sizes(self))?;
        Ok(codes.to_vec())
    }

    fn release_from_counts(
        &self,
        counts: &[Vec<u64>],
        n_records: usize,
    ) -> Result<Box<dyn Release>, MdrrError> {
        Ok(Box::new(RRIndependent::release_from_counts(
            self, counts, n_records,
        )?))
    }

    fn release_from_randomized(&self, randomized: Dataset) -> Result<Box<dyn Release>, MdrrError> {
        Ok(Box::new(RRIndependent::release_from_randomized(
            self, randomized,
        )?))
    }

    fn run(&self, dataset: &Dataset, rng: &mut dyn RngCore) -> Result<Box<dyn Release>, MdrrError> {
        Ok(Box::new(RRIndependent::run(self, dataset, &mut &mut *rng)?))
    }

    fn epsilons(&self) -> Vec<f64> {
        RRIndependent::epsilons(self)
    }
}

impl Release for IndependentRelease {
    fn marginal(&self, attribute: usize) -> Result<Vec<f64>, MdrrError> {
        IndependentRelease::marginal(self, attribute)
    }

    fn accountant(&self) -> &PrivacyAccountant {
        IndependentRelease::accountant(self)
    }

    fn randomized(&self) -> Option<&Dataset> {
        IndependentRelease::randomized(self)
    }

    fn adjustment_targets(&self) -> Result<Vec<AdjustmentTarget>, MdrrError> {
        Ok(AdjustmentTarget::from_independent(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EmpiricalEstimator;
    use mdrr_data::{Attribute, AttributeKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new(
                "A",
                AttributeKind::Nominal,
                vec!["a".into(), "b".into(), "c".into()],
            )
            .unwrap(),
            Attribute::new("B", AttributeKind::Nominal, vec!["x".into(), "y".into()]).unwrap(),
        ])
        .unwrap()
    }

    /// Independent attributes so the RR-Independent joint estimate is
    /// asymptotically exact.
    fn independent_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::empty(schema());
        for _ in 0..n {
            let a = if rng.gen::<f64>() < 0.5 {
                0
            } else if rng.gen::<f64>() < 0.6 {
                1
            } else {
                2
            };
            let b = u32::from(rng.gen::<f64>() < 0.3);
            ds.push_record(&[a, b]).unwrap();
        }
        ds
    }

    #[test]
    fn configuration_validation() {
        assert!(RRIndependent::new(schema(), &RandomizationLevel::KeepProbability(1.5)).is_err());
        assert!(
            RRIndependent::new(schema(), &RandomizationLevel::EpsilonPerAttribute(-1.0)).is_err()
        );
        assert!(RRIndependent::new(schema(), &RandomizationLevel::Epsilons(vec![1.0])).is_err());
        assert!(
            RRIndependent::new(schema(), &RandomizationLevel::Epsilons(vec![1.0, 2.0])).is_ok()
        );

        let wrong_size = vec![
            RRMatrix::identity(4).unwrap(),
            RRMatrix::identity(2).unwrap(),
        ];
        assert!(RRIndependent::from_matrices(schema(), wrong_size).is_err());
        let wrong_count = vec![RRMatrix::identity(3).unwrap()];
        assert!(RRIndependent::from_matrices(schema(), wrong_count).is_err());
    }

    #[test]
    fn run_validates_dataset() {
        let protocol =
            RRIndependent::new(schema(), &RandomizationLevel::KeepProbability(0.7)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let empty = Dataset::empty(schema());
        assert!(protocol.run(&empty, &mut rng).is_err());

        let other_schema = Schema::new(vec![Attribute::indexed("Z", 2).unwrap()]).unwrap();
        let other = Dataset::from_records(other_schema, &[vec![0]]).unwrap();
        assert!(protocol.run(&other, &mut rng).is_err());
    }

    #[test]
    fn epsilons_match_matrices() {
        let protocol =
            RRIndependent::new(schema(), &RandomizationLevel::EpsilonPerAttribute(1.2)).unwrap();
        for eps in protocol.epsilons() {
            assert!((eps - 1.2).abs() < 1e-9);
        }
    }

    #[test]
    fn marginal_estimates_recover_the_truth() {
        let ds = independent_dataset(40_000, 1);
        let protocol =
            RRIndependent::new(schema(), &RandomizationLevel::KeepProbability(0.7)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let release = protocol.run(&ds, &mut rng).unwrap();

        for j in 0..2 {
            let truth = ds.marginal_distribution(j).unwrap();
            let estimate = release.marginal(j).unwrap();
            for (a, b) in estimate.iter().zip(truth.iter()) {
                assert!(
                    (a - b).abs() < 0.02,
                    "attribute {j}: {estimate:?} vs {truth:?}"
                );
            }
        }
        assert!(release.marginal(5).is_err());
        assert_eq!(release.accountant().len(), 2);
        assert_eq!(release.record_count(), 40_000);
    }

    #[test]
    fn joint_estimates_are_good_when_attributes_are_independent() {
        let ds = independent_dataset(40_000, 3);
        let protocol =
            RRIndependent::new(schema(), &RandomizationLevel::KeepProbability(0.7)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let release = protocol.run(&ds, &mut rng).unwrap();
        let truth = EmpiricalEstimator::new(&ds);

        for a in 0..3u32 {
            for b in 0..2u32 {
                let estimated = release.frequency(&[(0, a), (1, b)]).unwrap();
                let exact = truth.frequency(&[(0, a), (1, b)]).unwrap();
                assert!(
                    (estimated - exact).abs() < 0.02,
                    "cell ({a},{b}): {estimated} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn frequency_estimator_contract() {
        let ds = independent_dataset(2_000, 5);
        let protocol =
            RRIndependent::new(schema(), &RandomizationLevel::KeepProbability(0.9)).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let release = protocol.run(&ds, &mut rng).unwrap();

        assert!((release.frequency(&[]).unwrap() - 1.0).abs() < 1e-12);
        assert!(release.frequency(&[(0, 9)]).is_err());
        assert!(release.frequency(&[(7, 0)]).is_err());
        assert!(release.frequency(&[(0, 1), (0, 2)]).is_err());
        let count = release.count(&[(1, 0)]).unwrap();
        assert!(count >= 0.0 && count <= ds.n_records() as f64 + 1e-9);
    }

    #[test]
    fn streamed_counts_match_the_batch_estimate_exactly() {
        let ds = independent_dataset(5_000, 20);
        let protocol =
            RRIndependent::new(schema(), &RandomizationLevel::KeepProbability(0.6)).unwrap();

        // Client side: every record encodes into one report.
        let mut rng = StdRng::seed_from_u64(21);
        let view = ds.view();
        let mut row = Vec::new();
        let mut reports: Vec<Vec<u32>> = Vec::with_capacity(ds.n_records());
        for i in 0..ds.n_records() {
            view.read_record(i, &mut row).unwrap();
            reports.push(protocol.encode_record(&row, &mut rng).unwrap());
        }

        // Streaming collector: accumulate per-attribute counts only.
        let mut counts = vec![vec![0u64; 3], vec![0u64; 2]];
        for report in &reports {
            for (j, &code) in report.iter().enumerate() {
                counts[j][code as usize] += 1;
            }
        }
        let streamed = protocol
            .release_from_counts(&counts, reports.len())
            .unwrap();
        assert!(streamed.randomized().is_none());
        assert_eq!(streamed.record_count(), 5_000);

        // Batch collector: the same reports as a materialized dataset.
        let randomized = Dataset::from_records(schema(), &reports).unwrap();
        let batch = protocol.release_from_randomized(randomized).unwrap();
        assert!(batch.randomized().is_some());
        for j in 0..2 {
            assert_eq!(streamed.marginal(j).unwrap(), batch.marginal(j).unwrap());
        }
    }

    #[test]
    fn encode_record_and_counts_validate_input() {
        let protocol =
            RRIndependent::new(schema(), &RandomizationLevel::KeepProbability(0.6)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(protocol.encode_record(&[0], &mut rng).is_err());
        assert!(protocol.encode_record(&[0, 5], &mut rng).is_err());
        assert!(protocol.encode_record(&[2, 1], &mut rng).is_ok());

        // Zero reports, wrong arity, wrong cardinality, inconsistent totals.
        assert!(protocol
            .release_from_counts(&[vec![0; 3], vec![0; 2]], 0)
            .is_err());
        assert!(protocol.release_from_counts(&[vec![4, 0, 0]], 4).is_err());
        assert!(protocol
            .release_from_counts(&[vec![4, 0], vec![4, 0]], 4)
            .is_err());
        assert!(protocol
            .release_from_counts(&[vec![4, 0, 0], vec![3, 0]], 4)
            .is_err());
        assert!(protocol
            .release_from_counts(&[vec![4, 0, 0], vec![3, 1]], 4)
            .is_ok());
    }

    #[test]
    fn identity_matrices_reproduce_exact_marginals() {
        let ds = independent_dataset(1_000, 7);
        let matrices = vec![
            RRMatrix::identity(3).unwrap(),
            RRMatrix::identity(2).unwrap(),
        ];
        let protocol = RRIndependent::from_matrices(schema(), matrices).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let release = protocol.run(&ds, &mut rng).unwrap();
        for j in 0..2 {
            let truth = ds.marginal_distribution(j).unwrap();
            for (a, b) in release.marginal(j).unwrap().iter().zip(truth.iter()) {
                assert!((a - b).abs() < 1e-12);
            }
        }
        // Identity matrices offer no differential privacy.
        assert_eq!(release.accountant().total_sequential(), f64::INFINITY);
    }
}
