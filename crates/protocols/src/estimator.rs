//! The common query interface of every protocol's release.
//!
//! All the paper's protocols ultimately let the data collector estimate the
//! frequency of an arbitrary subset `S ⊆ A_1 × … × A_m` of the data domain
//! (Protocols 1 and 2, Section 4, Section 5).  In this library a subset is
//! expressed as a union of *partial assignments* — each assignment fixes the
//! values of some attributes and leaves the rest free — and every release
//! implements [`FrequencyEstimator`], which turns one assignment into an
//! estimated probability.  The evaluation harness (`mdrr-eval`) then builds
//! the paper's count queries on top of this trait.

use crate::error::ProtocolError;

/// A partial assignment of category codes to attribute indices,
/// e.g. `[(0, 3), (5, 1)]` means "attribute 0 takes code 3 and attribute 5
/// takes code 1"; all other attributes are unconstrained.
pub type Assignment = [(usize, u32)];

/// Validates a partial assignment against per-attribute cardinalities:
/// every attribute index must be in range, every code must be within its
/// attribute's cardinality, and no attribute may be constrained twice — a
/// duplicate constraint is at best redundant and at worst contradictory
/// (`[(0, 1), (0, 2)]` matches nothing), so every estimator rejects it with
/// an error instead of silently computing an answer.
///
/// # Errors
/// Returns [`ProtocolError::UnsupportedQuery`] describing the first
/// violated constraint.
pub fn validate_assignment(
    assignment: &Assignment,
    cardinalities: &[usize],
) -> Result<(), ProtocolError> {
    let mut seen = vec![false; cardinalities.len()];
    for &(attribute, code) in assignment {
        let Some(&cardinality) = cardinalities.get(attribute) else {
            return Err(ProtocolError::unsupported(format!(
                "attribute index {attribute} out of range ({} attributes)",
                cardinalities.len()
            )));
        };
        if code as usize >= cardinality {
            return Err(ProtocolError::unsupported(format!(
                "code {code} out of range for attribute {attribute} ({cardinality} categories)"
            )));
        }
        if seen[attribute] {
            return Err(ProtocolError::unsupported(format!(
                "attribute {attribute} constrained twice in the same assignment"
            )));
        }
        seen[attribute] = true;
    }
    Ok(())
}

/// A release (estimated distribution, adjusted weights, raw randomized
/// data, …) that can estimate the probability that a random record of the
/// *true* data set matches a partial assignment.
pub trait FrequencyEstimator {
    /// Estimated probability that a record matches `assignment`.
    ///
    /// Implementations must accept an empty assignment (probability 1) and
    /// should return an error — not a silent wrong answer — when the
    /// assignment references attributes the release cannot answer.
    fn frequency(&self, assignment: &Assignment) -> Result<f64, ProtocolError>;

    /// Number of records of the underlying data set (used to convert
    /// frequencies into counts).
    fn record_count(&self) -> usize;

    /// Estimated count of records matching `assignment`
    /// (`n × frequency`, the `Y_S` of Section 6.5).
    fn count(&self, assignment: &Assignment) -> Result<f64, ProtocolError> {
        Ok(self.frequency(assignment)? * self.record_count() as f64)
    }
}

/// Blanket implementation so `&T` and boxed estimators can be passed where
/// an estimator is expected.
impl<T: FrequencyEstimator + ?Sized> FrequencyEstimator for &T {
    fn frequency(&self, assignment: &Assignment) -> Result<f64, ProtocolError> {
        (**self).frequency(assignment)
    }

    fn record_count(&self) -> usize {
        (**self).record_count()
    }
}

/// Blanket implementation so `Box<dyn Release>` (and any other boxed
/// estimator) answers queries without dereferencing at every call site.
impl<T: FrequencyEstimator + ?Sized> FrequencyEstimator for Box<T> {
    fn frequency(&self, assignment: &Assignment) -> Result<f64, ProtocolError> {
        (**self).frequency(assignment)
    }

    fn record_count(&self) -> usize {
        (**self).record_count()
    }
}

/// The trivial estimator backed by the *true* data set (or any plain data
/// set): exact empirical frequencies.  Used as the ground truth in the
/// evaluation and as the "Randomized" baseline when applied to the
/// randomized data set directly (the paper's Figure 2).
#[derive(Debug, Clone)]
pub struct EmpiricalEstimator<'a> {
    dataset: &'a mdrr_data::Dataset,
}

impl<'a> EmpiricalEstimator<'a> {
    /// Wraps a dataset.
    pub fn new(dataset: &'a mdrr_data::Dataset) -> Self {
        EmpiricalEstimator { dataset }
    }
}

impl FrequencyEstimator for EmpiricalEstimator<'_> {
    fn frequency(&self, assignment: &Assignment) -> Result<f64, ProtocolError> {
        validate_assignment(assignment, &self.dataset.schema().cardinalities())?;
        let n = self.dataset.n_records();
        if n == 0 {
            return Ok(0.0);
        }
        let count = self.dataset.count_matching(assignment)?;
        Ok(count as f64 / n as f64)
    }

    fn record_count(&self) -> usize {
        self.dataset.n_records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::{Attribute, AttributeKind, Dataset, Schema};

    fn dataset() -> Dataset {
        let schema = Schema::new(vec![
            Attribute::new("A", AttributeKind::Nominal, vec!["a".into(), "b".into()]).unwrap(),
            Attribute::new(
                "B",
                AttributeKind::Nominal,
                vec!["x".into(), "y".into(), "z".into()],
            )
            .unwrap(),
        ])
        .unwrap();
        Dataset::from_records(
            schema,
            &[vec![0, 0], vec![0, 1], vec![1, 2], vec![1, 2], vec![0, 2]],
        )
        .unwrap()
    }

    #[test]
    fn empirical_estimator_matches_exact_counts() {
        let ds = dataset();
        let est = EmpiricalEstimator::new(&ds);
        assert_eq!(est.record_count(), 5);
        assert!((est.frequency(&[(0, 0)]).unwrap() - 0.6).abs() < 1e-12);
        assert!((est.frequency(&[(0, 1), (1, 2)]).unwrap() - 0.4).abs() < 1e-12);
        assert!((est.count(&[(1, 2)]).unwrap() - 3.0).abs() < 1e-12);
        assert!((est.frequency(&[]).unwrap() - 1.0).abs() < 1e-12);
        assert!(est.frequency(&[(9, 0)]).is_err());
        assert!(est.frequency(&[(0, 9)]).is_err());
        assert!(est.frequency(&[(0, 0), (0, 0)]).is_err());
        assert!(est.frequency(&[(0, 0), (0, 1)]).is_err());
    }

    #[test]
    fn validate_assignment_rejects_bad_constraints() {
        let cards = [2usize, 3];
        assert!(validate_assignment(&[], &cards).is_ok());
        assert!(validate_assignment(&[(0, 1), (1, 2)], &cards).is_ok());
        assert!(validate_assignment(&[(2, 0)], &cards).is_err());
        assert!(validate_assignment(&[(1, 3)], &cards).is_err());
        // Duplicates are rejected even when the codes agree.
        assert!(validate_assignment(&[(1, 2), (1, 2)], &cards).is_err());
        assert!(validate_assignment(&[(1, 0), (0, 1), (1, 0)], &cards).is_err());
    }

    #[test]
    fn reference_passthrough_works() {
        let ds = dataset();
        let est = EmpiricalEstimator::new(&ds);
        fn takes_estimator(e: impl FrequencyEstimator) -> f64 {
            e.frequency(&[(0, 0)]).unwrap()
        }
        assert!((takes_estimator(&est) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_has_zero_frequencies() {
        let schema = Schema::new(vec![Attribute::indexed("A", 2).unwrap()]).unwrap();
        let ds = Dataset::empty(schema);
        let est = EmpiricalEstimator::new(&ds);
        assert_eq!(est.frequency(&[(0, 1)]).unwrap(), 0.0);
        assert_eq!(est.record_count(), 0);
    }
}
