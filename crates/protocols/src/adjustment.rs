//! RR-Adjustment (Algorithm 2, Section 5 of the paper).
//!
//! RR-Independent and RR-Clusters estimate joint frequencies under an
//! independence assumption (between attributes, respectively between
//! clusters).  RR-Adjustment repairs part of the resulting accuracy loss by
//! exploiting the dependence information that *survives inside the
//! randomized data set* `Y`: it assigns a weight to every record of `Y` and
//! iteratively rescales the weights so that the weighted marginal
//! distribution of every attribute (or attribute cluster) matches the
//! distribution estimated by RR-Independent (or RR-Clusters).  This is
//! iterative proportional fitting with the randomized records as the seed,
//! so combinations that are frequent in `Y` keep more weight than the plain
//! product of marginals would give them.
//!
//! Because the adjustment only reads `Y` and the already-published
//! estimates, it consumes no additional privacy budget (Section 5).

use crate::clusters::ClustersRelease;
use crate::error::{MdrrError, ProtocolError};
use crate::estimator::{validate_assignment, Assignment, FrequencyEstimator};
use crate::independent::IndependentRelease;
use crate::protocol::{Protocol, Release};
use mdrr_core::PrivacyAccountant;
use mdrr_data::{Dataset, Schema};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One marginal constraint of the adjustment: the weighted distribution of
/// the listed attributes (jointly, in the given order) must match
/// `distribution`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdjustmentTarget {
    /// Attribute indices forming the group (a single attribute for
    /// RR-Independent targets, a cluster for RR-Clusters targets).
    pub attributes: Vec<usize>,
    /// Target distribution over the group's joint domain, in the mixed-radix
    /// code order of [`mdrr_data::JointDomain`].
    pub distribution: Vec<f64>,
}

impl AdjustmentTarget {
    /// Creates a target, validating that it is non-empty and that the
    /// distribution is a probability vector.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] otherwise.
    pub fn new(attributes: Vec<usize>, distribution: Vec<f64>) -> Result<Self, ProtocolError> {
        if attributes.is_empty() {
            return Err(ProtocolError::config(
                "adjustment target needs at least one attribute",
            ));
        }
        if distribution.is_empty() {
            return Err(ProtocolError::config(
                "adjustment target needs a non-empty distribution",
            ));
        }
        if !mdrr_math::is_probability_vector(&distribution, 1e-6) {
            return Err(ProtocolError::config(
                "adjustment target distribution must be a probability vector",
            ));
        }
        Ok(AdjustmentTarget {
            attributes,
            distribution,
        })
    }

    /// One target per attribute, taken from an RR-Independent release
    /// (the "RR-Independent + Adjustment" configuration of Section 6.2).
    pub fn from_independent(release: &IndependentRelease) -> Vec<AdjustmentTarget> {
        release
            .marginals()
            .iter()
            .enumerate()
            .map(|(j, marginal)| AdjustmentTarget {
                attributes: vec![j],
                distribution: marginal.clone(),
            })
            .collect()
    }

    /// One target per cluster, taken from an RR-Clusters release
    /// (the "RR-Clusters + Adjustment" configuration of Section 6.2).
    ///
    /// # Errors
    /// Propagates errors from reading the release's cluster distributions
    /// (cannot happen for a well-formed release).
    pub fn from_clusters(
        release: &ClustersRelease,
    ) -> Result<Vec<AdjustmentTarget>, ProtocolError> {
        let mut targets = Vec::with_capacity(release.clustering().len());
        for (k, cluster) in release.clustering().clusters().iter().enumerate() {
            targets.push(AdjustmentTarget {
                attributes: cluster.clone(),
                distribution: release.cluster_distribution(k)?.to_vec(),
            });
        }
        Ok(targets)
    }
}

/// Termination parameters of the iterative fitting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdjustmentConfig {
    /// Maximum number of passes over all targets.
    pub max_iterations: usize,
    /// Stop when the L1 change of the weight vector within one pass drops
    /// below this threshold.
    pub tolerance: f64,
}

impl Default for AdjustmentConfig {
    fn default() -> Self {
        AdjustmentConfig {
            max_iterations: 50,
            tolerance: 1e-9,
        }
    }
}

impl AdjustmentConfig {
    /// Creates a configuration, validating the parameters.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] for a zero iteration
    /// budget or a non-positive tolerance.
    pub fn new(max_iterations: usize, tolerance: f64) -> Result<Self, ProtocolError> {
        if max_iterations == 0 {
            return Err(ProtocolError::config("max_iterations must be positive"));
        }
        if tolerance <= 0.0 || tolerance.is_nan() {
            return Err(ProtocolError::config("tolerance must be positive"));
        }
        Ok(AdjustmentConfig {
            max_iterations,
            tolerance,
        })
    }
}

/// The weighted randomized data set produced by Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct AdjustedRelease {
    randomized: Dataset,
    weights: Vec<f64>,
    iterations: usize,
    converged: bool,
    accountant: PrivacyAccountant,
}

impl AdjustedRelease {
    /// The randomized data set the weights refer to.
    pub fn randomized(&self) -> &Dataset {
        &self.randomized
    }

    /// Attaches the privacy ledger of the release the adjustment targets
    /// were derived from.  The adjustment itself consumes no additional
    /// budget (Section 5), so the ledger of an adjusted release is exactly
    /// the base release's ledger; standalone [`rr_adjustment`] calls leave
    /// it empty.
    #[must_use]
    pub fn with_accountant(mut self, accountant: PrivacyAccountant) -> Self {
        self.accountant = accountant;
        self
    }

    /// The privacy ledger (the base release's ledger — the adjustment adds
    /// no entries, see [`AdjustedRelease::with_accountant`]).
    pub fn accountant(&self) -> &PrivacyAccountant {
        &self.accountant
    }

    /// The weighted marginal distribution of a single attribute (the shared
    /// [`Release::marginal`] accessor).
    ///
    /// # Errors
    /// Propagates dataset access errors for a bad attribute index.
    pub fn marginal(&self, attribute: usize) -> Result<Vec<f64>, ProtocolError> {
        self.weighted_distribution(&[attribute])
    }

    /// The per-record weights (they sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of full passes over the targets that were executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the weight changes fell below the tolerance before the
    /// iteration budget ran out.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The weighted marginal distribution of a group of attributes — useful
    /// for checking how closely the targets were matched.
    ///
    /// # Errors
    /// Propagates dataset access errors.
    pub fn weighted_distribution(&self, attributes: &[usize]) -> Result<Vec<f64>, ProtocolError> {
        let (domain, codes) = self.randomized.joint_codes(attributes)?;
        let mut dist = vec![0.0; domain.size()];
        for (&code, &w) in codes.iter().zip(self.weights.iter()) {
            dist[code as usize] += w;
        }
        Ok(dist)
    }
}

impl FrequencyEstimator for AdjustedRelease {
    fn frequency(&self, assignment: &Assignment) -> Result<f64, ProtocolError> {
        // Validate the constraints, then sum the weights of matching records.
        validate_assignment(assignment, &self.randomized.schema().cardinalities())?;
        let mut columns = Vec::with_capacity(assignment.len());
        for &(attribute, code) in assignment {
            columns.push((self.randomized.column(attribute)?, code));
        }
        let mut freq = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            if columns.iter().all(|(column, code)| column[i] == *code) {
                freq += w;
            }
        }
        Ok(freq)
    }

    fn record_count(&self) -> usize {
        self.randomized.n_records()
    }
}

/// Algorithm 2: iteratively re-weights the records of the randomized data
/// set `Y` so the weighted distribution of every target group matches the
/// target distribution.
///
/// # Errors
/// * [`ProtocolError::InvalidConfiguration`] for an empty dataset, an empty
///   target list, or a target whose distribution length does not match the
///   group's joint-domain size;
/// * propagated dataset errors otherwise.
pub fn rr_adjustment(
    randomized: &Dataset,
    targets: &[AdjustmentTarget],
    config: AdjustmentConfig,
) -> Result<AdjustedRelease, ProtocolError> {
    if randomized.is_empty() {
        return Err(ProtocolError::config("cannot adjust an empty dataset"));
    }
    if targets.is_empty() {
        return Err(ProtocolError::config(
            "at least one adjustment target is required",
        ));
    }

    // Pre-compute each target's joint codes over the randomized data set.
    let mut prepared = Vec::with_capacity(targets.len());
    for target in targets {
        let (domain, codes) = randomized.joint_codes(&target.attributes)?;
        if domain.size() != target.distribution.len() {
            return Err(ProtocolError::config(format!(
                "target over attributes {:?} has {} probabilities but the joint domain has {} combinations",
                target.attributes,
                target.distribution.len(),
                domain.size()
            )));
        }
        prepared.push((codes, &target.distribution));
    }

    let n = randomized.n_records();
    let mut weights = vec![1.0 / n as f64; n];
    let mut iterations = 0usize;
    let mut converged = false;

    // Step 5–8 of Algorithm 2: loop over the targets, rescaling weights so
    // the weighted group distribution matches the target, until the weights
    // stabilise.
    while iterations < config.max_iterations {
        iterations += 1;
        let mut change = 0.0f64;
        for (codes, distribution) in &prepared {
            // s_k: current weighted frequency of group value k.
            let mut group_weight = vec![0.0f64; distribution.len()];
            for (&code, &w) in codes.iter().zip(weights.iter()) {
                group_weight[code as usize] += w;
            }
            // w_i ← w_i · π̂(v_i) / s_{v_i}
            for (&code, w) in codes.iter().zip(weights.iter_mut()) {
                let s = group_weight[code as usize];
                if s > 0.0 {
                    let updated = *w * distribution[code as usize] / s;
                    change += (updated - *w).abs();
                    *w = updated;
                }
            }
        }
        // Renormalise to guard against drift when some target mass is
        // unreachable in Y (target probability > 0 on a combination that no
        // randomized record exhibits).
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            for w in &mut weights {
                *w /= total;
            }
        }
        if change < config.tolerance {
            converged = true;
            break;
        }
    }

    Ok(AdjustedRelease {
        randomized: randomized.clone(),
        weights,
        iterations,
        converged,
        accountant: PrivacyAccountant::new(),
    })
}

/// RR-Adjustment as a protocol in its own right: any base [`Protocol`]
/// followed by Algorithm 2.
///
/// The base protocol performs the client-side randomization and the
/// collector-side estimation; the adjustment then re-weights the randomized
/// data set against the targets the base release derives for itself
/// ([`Release::adjustment_targets`]) — per-attribute marginals for
/// RR-Independent, per-cluster joints for RR-Clusters.  This is the
/// "RR-Independent + RR-Adj" / "RR-Cluster + RR-Adj" configuration of the
/// paper's Section 6.2, expressed uniformly over `Arc<dyn Protocol>` so a
/// [`crate::ProtocolSpec`] can stack it on any base.
///
/// Because Algorithm 2 reads the randomized *microdata* `Y`, this protocol
/// supports the batch paths ([`Protocol::run`],
/// [`Protocol::release_from_randomized`]) but not estimation from streamed
/// count vectors, which do not retain `Y` —
/// [`Protocol::release_from_counts`] returns
/// [`MdrrError::UnsupportedQuery`].
#[derive(Debug, Clone)]
pub struct RRAdjustment {
    base: Arc<dyn Protocol>,
    config: AdjustmentConfig,
}

impl RRAdjustment {
    /// Stacks RR-Adjustment on a base protocol.
    pub fn new(base: Arc<dyn Protocol>, config: AdjustmentConfig) -> Self {
        RRAdjustment { base, config }
    }

    /// The base protocol the adjustment repairs.
    pub fn base(&self) -> &Arc<dyn Protocol> {
        &self.base
    }

    /// The termination parameters of the iterative fitting.
    pub fn config(&self) -> AdjustmentConfig {
        self.config
    }

    /// Runs the adjustment against an already-computed base release.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] when the base release
    /// carries no randomized microdata (count-vector releases cannot be
    /// adjusted); propagated adjustment errors otherwise.
    fn adjust(&self, base_release: &dyn Release) -> Result<AdjustedRelease, MdrrError> {
        let randomized = base_release.randomized().ok_or_else(|| {
            MdrrError::config(
                "RR-Adjustment needs the randomized microdata, but the base release \
                 was assembled from count vectors only",
            )
        })?;
        let targets = base_release.adjustment_targets()?;
        Ok(rr_adjustment(randomized, &targets, self.config)?
            .with_accountant(base_release.accountant().clone()))
    }
}

impl Protocol for RRAdjustment {
    fn name(&self) -> String {
        format!("{} + RR-Adjustment", self.base.name())
    }

    fn schema(&self) -> &Schema {
        self.base.schema()
    }

    fn channel_sizes(&self) -> Vec<usize> {
        self.base.channel_sizes()
    }

    fn encode_record(&self, record: &[u32], rng: &mut dyn RngCore) -> Result<Vec<u32>, MdrrError> {
        self.base.encode_record(record, rng)
    }

    /// Delegates to the base protocol's (tuned) batch encoder: the
    /// adjustment changes nothing client-side.
    fn encode_batch(
        &self,
        records: &mdrr_data::RecordsView<'_>,
        rng: &mut dyn RngCore,
        out: &mut [Vec<u32>],
    ) -> Result<(), MdrrError> {
        self.base.encode_batch(records, rng, out)
    }

    /// Delegates to the base protocol's (tuned) fused tally encoder.
    fn encode_tally(
        &self,
        records: &mdrr_data::RecordsView<'_>,
        rng: &mut dyn RngCore,
        tallies: &mut [Vec<u64>],
    ) -> Result<(), MdrrError> {
        self.base.encode_tally(records, rng, tallies)
    }

    fn decode_report(&self, codes: &[u32]) -> Result<Vec<u32>, MdrrError> {
        self.base.decode_report(codes)
    }

    fn release_from_counts(
        &self,
        _counts: &[Vec<u64>],
        _n_records: usize,
    ) -> Result<Box<dyn Release>, MdrrError> {
        Err(MdrrError::unsupported(
            "RR-Adjustment estimates from the randomized microdata (Algorithm 2 re-weights \
             records of Y); per-channel count vectors do not retain it — use \
             release_from_randomized or run instead",
        ))
    }

    fn release_from_randomized(&self, randomized: Dataset) -> Result<Box<dyn Release>, MdrrError> {
        let base_release = self.base.release_from_randomized(randomized)?;
        Ok(Box::new(self.adjust(&*base_release)?))
    }

    fn run(&self, dataset: &Dataset, rng: &mut dyn RngCore) -> Result<Box<dyn Release>, MdrrError> {
        let base_release = self.base.run(dataset, rng)?;
        Ok(Box::new(self.adjust(&*base_release)?))
    }

    fn epsilons(&self) -> Vec<f64> {
        // The adjustment only reads Y and the published estimates, so it
        // consumes no budget beyond the base protocol's (Section 5).
        self.base.epsilons()
    }
}

impl Release for AdjustedRelease {
    fn marginal(&self, attribute: usize) -> Result<Vec<f64>, MdrrError> {
        AdjustedRelease::marginal(self, attribute)
    }

    fn accountant(&self) -> &PrivacyAccountant {
        AdjustedRelease::accountant(self)
    }

    fn randomized(&self) -> Option<&Dataset> {
        Some(&self.randomized)
    }

    fn adjustment_targets(&self) -> Result<Vec<AdjustmentTarget>, MdrrError> {
        Err(MdrrError::unsupported(
            "an adjusted release already matches its targets; adjust the base release instead",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::{Attribute, AttributeKind, Schema};

    fn two_binary_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("A", AttributeKind::Nominal, vec!["a1".into(), "a2".into()]).unwrap(),
            Attribute::new("B", AttributeKind::Nominal, vec!["b1".into(), "b2".into()]).unwrap(),
        ])
        .unwrap()
    }

    /// The randomized data set of the paper's Example 1: 10 records, joint
    /// empirical distribution (a1,b1)×4, (a2,b1)×2, (a1,b2)×0, (a2,b2)×4.
    fn example_1_dataset() -> Dataset {
        let mut records = Vec::new();
        for _ in 0..4 {
            records.push(vec![0, 0]);
        }
        for _ in 0..2 {
            records.push(vec![1, 0]);
        }
        for _ in 0..4 {
            records.push(vec![1, 1]);
        }
        Dataset::from_records(two_binary_schema(), &records).unwrap()
    }

    #[test]
    fn target_and_config_validation() {
        assert!(AdjustmentTarget::new(vec![], vec![1.0]).is_err());
        assert!(AdjustmentTarget::new(vec![0], vec![]).is_err());
        assert!(AdjustmentTarget::new(vec![0], vec![0.7, 0.7]).is_err());
        assert!(AdjustmentTarget::new(vec![0], vec![0.5, 0.5]).is_ok());
        assert!(AdjustmentConfig::new(0, 1e-9).is_err());
        assert!(AdjustmentConfig::new(10, 0.0).is_err());
        assert!(AdjustmentConfig::new(10, 1e-9).is_ok());
        let default = AdjustmentConfig::default();
        assert!(default.max_iterations > 0 && default.tolerance > 0.0);
    }

    #[test]
    fn adjustment_validates_inputs() {
        let ds = example_1_dataset();
        let config = AdjustmentConfig::default();
        assert!(rr_adjustment(&Dataset::empty(two_binary_schema()), &[], config).is_err());
        assert!(rr_adjustment(&ds, &[], config).is_err());
        // Distribution length must match the group's domain.
        let bad = AdjustmentTarget {
            attributes: vec![0],
            distribution: vec![0.3, 0.3, 0.4],
        };
        assert!(rr_adjustment(&ds, &[bad], config).is_err());
    }

    #[test]
    fn paper_example_1_reproduces_the_published_fixed_point() {
        // Example 1 of the paper: targets π̂¹ = π̂² = (1/2, 1/2); the
        // adjusted joint distribution converges to
        // Pr(a1,b1) = 1/2, Pr(a1,b2) = 0, Pr(a2,b1) = 0, Pr(a2,b2) = 1/2.
        //
        // Note the fixed point lies on the boundary of the simplex (the
        // weight of the (a2,b1) records tends to 0 only harmonically), so
        // convergence is slow; the tolerances below reflect 5 000 passes.
        let ds = example_1_dataset();
        let targets = vec![
            AdjustmentTarget::new(vec![0], vec![0.5, 0.5]).unwrap(),
            AdjustmentTarget::new(vec![1], vec![0.5, 0.5]).unwrap(),
        ];
        let release =
            rr_adjustment(&ds, &targets, AdjustmentConfig::new(5_000, 1e-12).unwrap()).unwrap();

        let p00 = release.frequency(&[(0, 0), (1, 0)]).unwrap();
        let p01 = release.frequency(&[(0, 0), (1, 1)]).unwrap();
        let p10 = release.frequency(&[(0, 1), (1, 0)]).unwrap();
        let p11 = release.frequency(&[(0, 1), (1, 1)]).unwrap();
        assert!((p00 - 0.5).abs() < 1e-3, "Pr(a1,b1) = {p00}");
        assert!(p01.abs() < 1e-3, "Pr(a1,b2) = {p01}");
        assert!(p10.abs() < 1e-3, "Pr(a2,b1) = {p10}");
        assert!((p11 - 0.5).abs() < 1e-3, "Pr(a2,b2) = {p11}");

        // Both marginals match the targets (up to the residual boundary mass).
        for attribute in 0..2 {
            let marginal = release.weighted_distribution(&[attribute]).unwrap();
            assert!((marginal[0] - 0.5).abs() < 1e-3);
            assert!((marginal[1] - 0.5).abs() < 1e-3);
        }
        assert!(release.iterations() > 0);
    }

    #[test]
    fn adjusted_distribution_beats_plain_independence_in_example_1() {
        // The paper contrasts Distribution (14) (adjusted) with
        // Distribution (15) (plain product of marginals = 1/4 everywhere):
        // the adjusted one is closer to the empirical distribution of Y.
        let ds = example_1_dataset();
        let targets = vec![
            AdjustmentTarget::new(vec![0], vec![0.5, 0.5]).unwrap(),
            AdjustmentTarget::new(vec![1], vec![0.5, 0.5]).unwrap(),
        ];
        let release =
            rr_adjustment(&ds, &targets, AdjustmentConfig::new(500, 1e-12).unwrap()).unwrap();
        let empirical = [0.4, 0.0, 0.2, 0.4]; // (a1,b1), (a1,b2), (a2,b1), (a2,b2)
        let adjusted = [
            release.frequency(&[(0, 0), (1, 0)]).unwrap(),
            release.frequency(&[(0, 0), (1, 1)]).unwrap(),
            release.frequency(&[(0, 1), (1, 0)]).unwrap(),
            release.frequency(&[(0, 1), (1, 1)]).unwrap(),
        ];
        let independent = [0.25, 0.25, 0.25, 0.25];
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
        };
        assert!(dist(&adjusted, &empirical) < dist(&independent, &empirical));
    }

    #[test]
    fn weights_sum_to_one_and_are_nonnegative() {
        let ds = example_1_dataset();
        let targets = vec![AdjustmentTarget::new(vec![0], vec![0.3, 0.7]).unwrap()];
        let release = rr_adjustment(&ds, &targets, AdjustmentConfig::default()).unwrap();
        assert!((release.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(release.weights().iter().all(|&w| w >= 0.0));
        assert_eq!(release.record_count(), 10);
        // The single-attribute marginal matches the target.
        let marginal = release.weighted_distribution(&[0]).unwrap();
        assert!((marginal[0] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn joint_group_targets_are_supported() {
        // A single target over both attributes jointly forces the weighted
        // joint distribution itself.
        let ds = example_1_dataset();
        let target_joint = vec![0.4, 0.1, 0.1, 0.4];
        // Cell (a1, b2) has target 0.1 but no record in Y, so that mass is
        // unreachable; the rest should still be matched proportionally.
        let targets = vec![AdjustmentTarget::new(vec![0, 1], target_joint).unwrap()];
        let release = rr_adjustment(&ds, &targets, AdjustmentConfig::default()).unwrap();
        let dist = release.weighted_distribution(&[0, 1]).unwrap();
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(dist[1], 0.0, "unreachable cell keeps zero weight");
        assert!(
            dist[0] > dist[2],
            "reachable cells follow the target ordering"
        );
    }

    #[test]
    fn frequency_estimator_contract() {
        let ds = example_1_dataset();
        let targets = vec![AdjustmentTarget::new(vec![0], vec![0.5, 0.5]).unwrap()];
        let release = rr_adjustment(&ds, &targets, AdjustmentConfig::default()).unwrap();
        assert!((release.frequency(&[]).unwrap() - 1.0).abs() < 1e-9);
        assert!(release.frequency(&[(0, 5)]).is_err());
        assert!(release.frequency(&[(9, 0)]).is_err());
        assert!(release.frequency(&[(0, 0), (0, 1)]).is_err());
    }

    #[test]
    fn iteration_budget_is_respected() {
        let ds = example_1_dataset();
        let targets = vec![
            AdjustmentTarget::new(vec![0], vec![0.5, 0.5]).unwrap(),
            AdjustmentTarget::new(vec![1], vec![0.5, 0.5]).unwrap(),
        ];
        let release =
            rr_adjustment(&ds, &targets, AdjustmentConfig::new(1, 1e-15).unwrap()).unwrap();
        assert_eq!(release.iterations(), 1);
        assert!(!release.converged());
    }
}
