//! Property-based tests for the core randomized-response mechanism.

use mdrr_core::{
    absolute_error_bound, empirical_distribution, estimate_proper, iterative_bayesian_update,
    relative_error_bound, RRMatrix,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A randomization matrix built by any of the structured constructors.
fn matrix_strategy() -> impl Strategy<Value = RRMatrix> {
    (2usize..12, 0.05f64..0.95, 0u8..3).prop_map(|(r, p, kind)| match kind {
        0 => RRMatrix::direct(p, r).unwrap(),
        1 => RRMatrix::uniform_keep(p, r).unwrap(),
        _ => RRMatrix::from_epsilon(p * 4.0, r).unwrap(),
    })
}

/// A probability distribution of the same dimension as the matrix.
fn distribution_strategy(r: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, r).prop_map(|raw| {
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|x| x / total).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matrices_are_row_stochastic(m in matrix_strategy()) {
        prop_assert!(m.to_matrix().is_row_stochastic(1e-9));
    }

    #[test]
    fn epsilon_is_consistent_with_expression_4(m in matrix_strategy()) {
        // Recompute Expression (4) from the dense matrix and compare.
        let dense = m.to_matrix();
        let r = m.size();
        let mut worst: f64 = 1.0;
        for v in 0..r {
            let col = dense.column(v);
            let max = col.iter().cloned().fold(f64::MIN, f64::max);
            let min = col.iter().cloned().fold(f64::MAX, f64::min);
            prop_assert!(min > 0.0);
            worst = worst.max(max / min);
        }
        prop_assert!((m.epsilon() - worst.ln()).abs() < 1e-9);
    }

    #[test]
    fn estimator_inverts_expected_distribution((m, seed) in matrix_strategy().prop_flat_map(|m| {
        let r = m.size();
        (Just(m), Just(r))
    }).prop_flat_map(|(m, r)| (Just(m), distribution_strategy(r)))) {
        let (m, pi) = (m, seed);
        let lambda = m.expected_reported_distribution(&pi).unwrap();
        let back = m.estimate_true_distribution(&lambda).unwrap();
        for (a, b) in back.iter().zip(pi.iter()) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn proper_estimate_is_always_a_distribution(m in matrix_strategy(),
                                                seed in 0u64..10_000,
                                                n in 50usize..400) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = m.size();
        // Arbitrary true values, then randomized reports.
        let reports: Vec<u32> = (0..n)
            .map(|i| m.randomize((i % r) as u32, &mut rng).unwrap())
            .collect();
        let lambda = empirical_distribution(&reports, r).unwrap();
        let est = estimate_proper(&m, &lambda).unwrap();
        prop_assert!(mdrr_math::is_probability_vector(&est, 1e-9));
    }

    #[test]
    fn ibu_always_returns_a_distribution(m in matrix_strategy(), seed in 0u64..10_000) {
        let r = m.size();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<u32> = (0..200).map(|i| m.randomize((i % r) as u32, &mut rng).unwrap()).collect();
        let lambda = empirical_distribution(&reports, r).unwrap();
        let est = iterative_bayesian_update(&m, &lambda, 500, 1e-10).unwrap();
        prop_assert!(mdrr_math::is_probability_vector(&est, 1e-8));
    }

    #[test]
    fn randomized_values_stay_in_range(m in matrix_strategy(), seed in 0u64..10_000) {
        let r = m.size();
        let mut rng = StdRng::seed_from_u64(seed);
        for v in 0..r as u32 {
            let y = m.randomize(v, &mut rng).unwrap();
            prop_assert!((y as usize) < r);
        }
    }

    #[test]
    fn error_bounds_are_monotone_in_n(m in matrix_strategy(), n in 100usize..10_000) {
        let r = m.size();
        let lambda = vec![1.0 / r as f64; r];
        let small = relative_error_bound(&lambda, n, 0.05).unwrap();
        let large = relative_error_bound(&lambda, n * 4, 0.05).unwrap();
        prop_assert!(large < small);
        let abs_small = absolute_error_bound(&lambda, n, 0.05).unwrap();
        let abs_large = absolute_error_bound(&lambda, n * 4, 0.05).unwrap();
        prop_assert!(abs_large < abs_small);
        // Quadrupling n halves both bounds.
        prop_assert!((small / large - 2.0).abs() < 1e-9);
        prop_assert!((abs_small / abs_large - 2.0).abs() < 1e-9);
    }

    #[test]
    fn epsilon_budget_roundtrip(eps in 0.1f64..6.0, r in 2usize..40) {
        // Building the optimal matrix for ε and reading its ε back is the
        // identity (Expression (4) holds with equality for these matrices).
        let m = RRMatrix::from_epsilon(eps, r).unwrap();
        prop_assert!((m.epsilon() - eps).abs() < 1e-8);
    }
}
