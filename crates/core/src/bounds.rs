//! Analytic estimation-error bounds (Sections 2.3 and 3.3 of the paper).
//!
//! The error of the estimated true distribution `π̂` is driven by the error
//! of the empirical reported distribution `λ̂`, which the paper bounds with
//! simultaneous confidence intervals (Thompson 1987):
//!
//! * absolute error (Definition 1, Expression (5)):
//!   `e_abs = max_u sqrt( B · λ_u (1 − λ_u) / n )`;
//! * relative error (Definition 2, Expression (6)):
//!   `e_rel = max_u sqrt( B · (1 − λ_u) / (λ_u n) )`;
//!
//! where `B` is the `α/r` upper percentile of χ²₁ ([`mdrr_math::b_factor`],
//! plotted as `√B` in Figure 1).  Section 3.3 specialises the relative
//! error to the best case of uniform frequencies to compare
//! RR-Independent (per-attribute domains) with RR-Joint (the full Cartesian
//! product), which is the analytic core of the curse-of-dimensionality
//! argument.

use crate::error::CoreError;
use mdrr_math::b_factor;

/// `√B` for the given confidence level and number of categories — the
/// quantity plotted in Figure 1 of the paper (α = 0.05 there).
///
/// # Errors
/// Returns an error for `alpha ∉ (0, 1]` or `r == 0`.
pub fn sqrt_b(alpha: f64, r: usize) -> Result<f64, CoreError> {
    Ok(b_factor(alpha, r)?.sqrt())
}

/// Absolute-error bound of Expression (5) for a reported distribution
/// `lambda`, sample size `n` and confidence `alpha`.
///
/// # Errors
/// Returns [`CoreError::InvalidParameter`] for an empty distribution,
/// `n == 0`, or an invalid `alpha`.
pub fn absolute_error_bound(lambda: &[f64], n: usize, alpha: f64) -> Result<f64, CoreError> {
    validate_inputs(lambda, n)?;
    let b = b_factor(alpha, lambda.len())?;
    let worst = lambda
        .iter()
        .map(|&l| {
            let l = l.clamp(0.0, 1.0);
            (b * l * (1.0 - l) / n as f64).sqrt()
        })
        .fold(0.0, f64::max);
    Ok(worst)
}

/// Relative-error bound of Expression (6) for a reported distribution
/// `lambda`, sample size `n` and confidence `alpha`.
///
/// Categories with zero frequency are skipped (their relative error is
/// undefined); if every category has zero frequency the bound is infinite.
///
/// # Errors
/// Returns [`CoreError::InvalidParameter`] for an empty distribution,
/// `n == 0`, or an invalid `alpha`.
pub fn relative_error_bound(lambda: &[f64], n: usize, alpha: f64) -> Result<f64, CoreError> {
    validate_inputs(lambda, n)?;
    let b = b_factor(alpha, lambda.len())?;
    let mut worst = 0.0f64;
    let mut any = false;
    for &l in lambda {
        if l <= 0.0 {
            continue;
        }
        any = true;
        let l = l.min(1.0);
        worst = worst.max((b * (1.0 - l) / (l * n as f64)).sqrt());
    }
    if !any {
        return Ok(f64::INFINITY);
    }
    Ok(worst)
}

/// Best-case (uniform frequencies `λ_u = 1/r`) relative error for a domain
/// of `r` categories: `sqrt( B (r − 1) / n )`.  This is the expression the
/// paper evaluates in Section 3.3.
///
/// # Errors
/// Returns [`CoreError::InvalidParameter`] for `r == 0`, `n == 0`, or an
/// invalid `alpha`.
pub fn best_case_relative_error(r: usize, n: usize, alpha: f64) -> Result<f64, CoreError> {
    if n == 0 {
        return Err(CoreError::invalid("n", "sample size must be positive"));
    }
    if r == 0 {
        return Err(CoreError::invalid(
            "r",
            "number of categories must be positive",
        ));
    }
    let b = b_factor(alpha, r)?;
    Ok((b * (r as f64 - 1.0) / n as f64).sqrt())
}

/// Section 3.3, RR-Independent: the best-case relative error of the
/// per-attribute frequency estimates is the worst bound over the
/// attributes, `max_j sqrt( B_j (|A_j| − 1) / n )` where `B_j` uses the
/// `α/|A_j|` percentile.
///
/// # Errors
/// Returns [`CoreError::InvalidParameter`] for an empty cardinality list,
/// a zero cardinality, `n == 0`, or an invalid `alpha`.
pub fn rr_independent_relative_error(
    cardinalities: &[usize],
    n: usize,
    alpha: f64,
) -> Result<f64, CoreError> {
    if cardinalities.is_empty() {
        return Err(CoreError::invalid(
            "cardinalities",
            "at least one attribute is required",
        ));
    }
    let mut worst = 0.0f64;
    for &r in cardinalities {
        worst = worst.max(best_case_relative_error(r, n, alpha)?);
    }
    Ok(worst)
}

/// Section 3.3, RR-Joint: the best-case relative error over the full
/// Cartesian product, `sqrt( B (Π|A_j| − 1) / n )` with `B` at the
/// `α/Π|A_j|` percentile.
///
/// # Errors
/// Returns [`CoreError::InvalidParameter`] for an empty cardinality list,
/// a zero cardinality, a product that overflows, `n == 0`, or an invalid
/// `alpha`.
pub fn rr_joint_relative_error(
    cardinalities: &[usize],
    n: usize,
    alpha: f64,
) -> Result<f64, CoreError> {
    if cardinalities.is_empty() {
        return Err(CoreError::invalid(
            "cardinalities",
            "at least one attribute is required",
        ));
    }
    let product = cardinalities
        .iter()
        .try_fold(
            1usize,
            |acc, &c| {
                if c == 0 {
                    None
                } else {
                    acc.checked_mul(c)
                }
            },
        )
        .ok_or_else(|| {
            CoreError::invalid("cardinalities", "joint domain size is zero or overflows")
        })?;
    best_case_relative_error(product, n, alpha)
}

fn validate_inputs(lambda: &[f64], n: usize) -> Result<(), CoreError> {
    if lambda.is_empty() {
        return Err(CoreError::invalid(
            "lambda",
            "distribution must be non-empty",
        ));
    }
    if n == 0 {
        return Err(CoreError::invalid("n", "sample size must be positive"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn sqrt_b_matches_figure_1_range() {
        // Figure 1: √B ≈ 2.2–2.4 at r = 2 and ≈ 4.5–5.0 at r = 100 000.
        assert!(sqrt_b(0.05, 2).unwrap() > 2.2);
        assert!(sqrt_b(0.05, 100_000).unwrap() < 5.1);
        assert!(sqrt_b(0.05, 100_000).unwrap() > sqrt_b(0.05, 2).unwrap());
    }

    #[test]
    fn absolute_error_peaks_at_half() {
        let n = 10_000;
        let alpha = 0.05;
        let balanced = absolute_error_bound(&[0.5, 0.5], n, alpha).unwrap();
        let skewed = absolute_error_bound(&[0.9, 0.1], n, alpha).unwrap();
        assert!(balanced > skewed);
        // Known closed form: sqrt(B * 0.25 / n).
        let b = mdrr_math::b_factor(alpha, 2).unwrap();
        assert_close(balanced, (b * 0.25 / n as f64).sqrt(), 1e-12);
    }

    #[test]
    fn absolute_error_shrinks_with_sample_size() {
        let lambda = [0.3, 0.3, 0.4];
        let small = absolute_error_bound(&lambda, 1_000, 0.05).unwrap();
        let large = absolute_error_bound(&lambda, 100_000, 0.05).unwrap();
        assert!(large < small);
        assert_close(small / large, 10.0, 1e-9);
    }

    #[test]
    fn relative_error_dominated_by_rare_categories() {
        let n = 10_000;
        let rare = relative_error_bound(&[0.98, 0.02], n, 0.05).unwrap();
        let even = relative_error_bound(&[0.5, 0.5], n, 0.05).unwrap();
        assert!(rare > even);
    }

    #[test]
    fn relative_error_skips_zero_categories() {
        let with_zero = relative_error_bound(&[0.5, 0.5, 0.0], 1_000, 0.05).unwrap();
        assert!(with_zero.is_finite());
        assert_eq!(
            relative_error_bound(&[0.0, 0.0], 1_000, 0.05).unwrap(),
            f64::INFINITY
        );
    }

    #[test]
    fn best_case_matches_uniform_relative_error() {
        let r = 10;
        let n = 5_000;
        let alpha = 0.05;
        let uniform = vec![1.0 / r as f64; r];
        let via_formula = best_case_relative_error(r, n, alpha).unwrap();
        let via_bound = relative_error_bound(&uniform, n, alpha).unwrap();
        assert_close(via_formula, via_bound, 1e-9);
    }

    #[test]
    fn joint_error_explodes_relative_to_independent() {
        // The Adult cardinalities from the paper.
        let cards = [9usize, 16, 7, 15, 6, 5, 2, 2];
        let n = 32_561;
        let alpha = 0.05;
        let independent = rr_independent_relative_error(&cards, n, alpha).unwrap();
        let joint = rr_joint_relative_error(&cards, n, alpha).unwrap();
        // Independent stays a few percent; joint is far above 100 %.
        assert!(independent < 0.2, "independent bound {independent}");
        assert!(joint > 2.0, "joint bound {joint}");
        assert!(joint / independent > 10.0);
    }

    #[test]
    fn joint_error_at_n_equal_domain_size_is_roughly_sqrt_b() {
        // Section 3.2: with n = Π|A_j| and uniform frequencies the relative
        // error is ≈ √B, which Figure 1 shows is above 200 %.
        let cards = [4usize, 5, 6];
        let product: usize = cards.iter().product();
        let err = rr_joint_relative_error(&cards, product, 0.05).unwrap();
        let sb = sqrt_b(0.05, product).unwrap();
        assert_close(
            err,
            sb * ((product as f64 - 1.0) / product as f64).sqrt(),
            1e-9,
        );
        assert!(err > 2.0);
    }

    #[test]
    fn independent_error_grows_with_the_largest_attribute() {
        let small = rr_independent_relative_error(&[2, 2, 2], 10_000, 0.05).unwrap();
        let large = rr_independent_relative_error(&[2, 2, 64], 10_000, 0.05).unwrap();
        assert!(large > small);
    }

    #[test]
    fn validation_errors() {
        assert!(absolute_error_bound(&[], 10, 0.05).is_err());
        assert!(absolute_error_bound(&[0.5, 0.5], 0, 0.05).is_err());
        assert!(relative_error_bound(&[0.5, 0.5], 10, 1.5).is_err());
        assert!(best_case_relative_error(0, 10, 0.05).is_err());
        assert!(best_case_relative_error(5, 0, 0.05).is_err());
        assert!(rr_independent_relative_error(&[], 10, 0.05).is_err());
        assert!(rr_joint_relative_error(&[0, 3], 10, 0.05).is_err());
        assert!(rr_joint_relative_error(&[], 10, 0.05).is_err());
    }
}
