//! Frequency estimation from randomized reports.
//!
//! Given the pooled randomized reports of the parties, the data collector
//! can estimate the distribution of the *true* values (Section 2.1 of the
//! paper):
//!
//! 1. compute the empirical distribution `λ̂` of the reports
//!    ([`empirical_distribution`]);
//! 2. apply the unbiased estimator `π̂ = (Pᵀ)⁻¹ λ̂` of Equation (2)
//!    ([`estimate_raw`]);
//! 3. the result may fall outside the probability simplex; the paper's
//!    Section 6.4 projects it back by clamping negatives and rescaling
//!    ([`estimate_proper`]), and the iterative Bayesian update of
//!    Alvim et al. is provided as an alternative
//!    ([`iterative_bayesian_update`]).

use crate::error::CoreError;
use crate::matrix::RRMatrix;
use mdrr_math::simplex::project_clamp_rescale;

/// Empirical distribution of a column of category codes over `r`
/// categories.
///
/// # Errors
/// * [`CoreError::InvalidParameter`] if `r == 0` or the column is empty;
/// * [`CoreError::DimensionMismatch`] if a code is `>= r`.
pub fn empirical_distribution(codes: &[u32], r: usize) -> Result<Vec<f64>, CoreError> {
    if r == 0 {
        return Err(CoreError::invalid(
            "r",
            "number of categories must be positive",
        ));
    }
    if codes.is_empty() {
        return Err(CoreError::invalid(
            "codes",
            "cannot compute the empirical distribution of an empty sample",
        ));
    }
    let mut counts = vec![0u64; r];
    for &c in codes {
        if c as usize >= r {
            return Err(CoreError::DimensionMismatch {
                context: "empirical_distribution".to_string(),
                expected: r,
                got: c as usize,
            });
        }
        counts[c as usize] += 1;
    }
    let n = codes.len() as f64;
    Ok(counts.into_iter().map(|c| c as f64 / n).collect())
}

/// Empirical distribution from a per-category count vector — the streaming
/// form of [`empirical_distribution`]: the counts are the sufficient
/// statistic for the reported distribution, so a collector that only keeps
/// per-category tallies (never the raw codes) loses nothing.
///
/// The arithmetic is exactly `count / total` with `total = Σ counts`, the
/// same operation [`empirical_distribution`] performs, so both paths produce
/// bit-identical distributions on the same reports.
///
/// # Errors
/// [`CoreError::InvalidParameter`] if `counts` is empty or sums to zero.
pub fn distribution_from_counts(counts: &[u64]) -> Result<Vec<f64>, CoreError> {
    if counts.is_empty() {
        return Err(CoreError::invalid(
            "counts",
            "cannot compute a distribution from an empty count vector",
        ));
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Err(CoreError::invalid(
            "counts",
            "cannot compute the empirical distribution of zero reports",
        ));
    }
    let n = total as f64;
    Ok(counts.iter().map(|&c| c as f64 / n).collect())
}

/// The paper's estimator (Section 6.4) applied to accumulated per-category
/// counts: [`distribution_from_counts`] followed by [`estimate_proper`].
/// This is the incremental-estimation primitive of the streaming collector —
/// count vectors are mergeable across shards, and the estimate depends on
/// the reports only through them.
///
/// # Errors
/// * [`CoreError::InvalidParameter`] for an empty or all-zero count vector;
/// * propagated dimension and singularity errors from the matrix.
pub fn estimate_proper_from_counts(
    matrix: &RRMatrix,
    counts: &[u64],
) -> Result<Vec<f64>, CoreError> {
    let lambda_hat = distribution_from_counts(counts)?;
    estimate_proper(matrix, &lambda_hat)
}

/// The raw unbiased estimator of Equation (2): `π̂ = (Pᵀ)⁻¹ λ̂`.
///
/// The output sums to (approximately) 1 but individual entries may be
/// negative or exceed 1 when the empirical reported distribution is not
/// consistent with the randomization matrix.
///
/// # Errors
/// Propagates dimension and singularity errors from the matrix.
pub fn estimate_raw(matrix: &RRMatrix, lambda_hat: &[f64]) -> Result<Vec<f64>, CoreError> {
    matrix.estimate_true_distribution(lambda_hat)
}

/// The paper's estimator (Section 6.4): Equation (2) followed by the
/// closest-proper-distribution projection (clamp negatives, rescale).
///
/// # Errors
/// Propagates dimension and singularity errors from the matrix.
pub fn estimate_proper(matrix: &RRMatrix, lambda_hat: &[f64]) -> Result<Vec<f64>, CoreError> {
    let raw = estimate_raw(matrix, lambda_hat)?;
    Ok(project_clamp_rescale(&raw)?)
}

/// Convenience: estimate the proper true distribution directly from a
/// column of randomized codes.
///
/// # Errors
/// Propagates errors from [`empirical_distribution`] and
/// [`estimate_proper`].
pub fn estimate_from_reports(matrix: &RRMatrix, reports: &[u32]) -> Result<Vec<f64>, CoreError> {
    let lambda_hat = empirical_distribution(reports, matrix.size())?;
    estimate_proper(matrix, &lambda_hat)
}

/// Iterative Bayesian update (the alternative estimator referenced in
/// Section 2.1, Alvim et al. 2018): starting from the uniform prior, repeat
///
/// ```text
/// π⁽ᵗ⁺¹⁾_u = Σ_v λ̂_v · p_uv π⁽ᵗ⁾_u / Σ_{u'} p_{u'v} π⁽ᵗ⁾_{u'}
/// ```
///
/// until the L1 change drops below `tolerance` or `max_iterations` is
/// reached.  The iterates are proper distributions by construction, so no
/// projection is needed; the fixed point is the maximum-likelihood estimate
/// of the true distribution.
///
/// # Errors
/// * [`CoreError::DimensionMismatch`] if `lambda_hat.len()` differs from the
///   matrix size;
/// * [`CoreError::InvalidParameter`] for non-positive `tolerance` or zero
///   `max_iterations`.
pub fn iterative_bayesian_update(
    matrix: &RRMatrix,
    lambda_hat: &[f64],
    max_iterations: usize,
    tolerance: f64,
) -> Result<Vec<f64>, CoreError> {
    let r = matrix.size();
    if lambda_hat.len() != r {
        return Err(CoreError::DimensionMismatch {
            context: "iterative_bayesian_update".to_string(),
            expected: r,
            got: lambda_hat.len(),
        });
    }
    if max_iterations == 0 {
        return Err(CoreError::invalid("max_iterations", "must be positive"));
    }
    if tolerance <= 0.0 || tolerance.is_nan() {
        return Err(CoreError::invalid("tolerance", "must be positive"));
    }

    let mut pi = vec![1.0 / r as f64; r];
    let mut next = vec![0.0; r];
    for _ in 0..max_iterations {
        // Posterior responsibility of true value u for reported value v is
        // p_uv π_u / Σ_{u'} p_{u'v} π_{u'}.
        for x in next.iter_mut() {
            *x = 0.0;
        }
        for (v, &lambda_v) in lambda_hat.iter().enumerate() {
            let denom: f64 = (0..r).map(|u| matrix.prob(u, v) * pi[u]).sum();
            if denom <= 0.0 {
                continue;
            }
            for (u, out) in next.iter_mut().enumerate() {
                *out += lambda_v * matrix.prob(u, v) * pi[u] / denom;
            }
        }
        let change: f64 = next.iter().zip(pi.iter()).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if change < tolerance {
            break;
        }
    }
    Ok(pi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn empirical_distribution_counts_correctly() {
        let dist = empirical_distribution(&[0, 1, 1, 2, 1], 4).unwrap();
        assert_eq!(dist, vec![0.2, 0.6, 0.2, 0.0]);
        assert!(empirical_distribution(&[], 3).is_err());
        assert!(empirical_distribution(&[0, 5], 3).is_err());
        assert!(empirical_distribution(&[0], 0).is_err());
    }

    #[test]
    fn count_vector_estimation_matches_the_report_path() {
        let m = RRMatrix::direct(0.7, 3).unwrap();
        let reports = [0u32, 1, 1, 2, 1, 0, 2, 2, 2, 1];
        let mut counts = [0u64; 3];
        for &r in &reports {
            counts[r as usize] += 1;
        }
        let via_reports = estimate_from_reports(&m, &reports).unwrap();
        let via_counts = estimate_proper_from_counts(&m, &counts).unwrap();
        assert_eq!(via_reports, via_counts);
        assert_eq!(
            empirical_distribution(&reports, 3).unwrap(),
            distribution_from_counts(&counts).unwrap()
        );
    }

    #[test]
    fn count_vector_estimation_validates_input() {
        assert!(distribution_from_counts(&[]).is_err());
        assert!(distribution_from_counts(&[0, 0, 0]).is_err());
        let m = RRMatrix::direct(0.7, 3).unwrap();
        assert!(estimate_proper_from_counts(&m, &[0, 0, 0]).is_err());
        // A count vector of the wrong arity is a dimension mismatch.
        assert!(matches!(
            estimate_proper_from_counts(&m, &[1, 2]),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn raw_estimate_can_leave_the_simplex_and_proper_fixes_it() {
        // The paper's own example of inconsistency: a matrix that keeps the
        // first category with high probability, but an empirical reported
        // distribution in which the first category is rare.
        let m = RRMatrix::direct(0.9, 2).unwrap();
        let lambda_hat = vec![0.02, 0.98];
        let raw = estimate_raw(&m, &lambda_hat).unwrap();
        assert!(raw[0] < 0.0, "raw estimate should be negative, got {raw:?}");
        let proper = estimate_proper(&m, &lambda_hat).unwrap();
        assert!(mdrr_math::is_probability_vector(&proper, 1e-9));
        assert_eq!(proper[0], 0.0);
    }

    #[test]
    fn estimator_is_exact_on_consistent_input() {
        let m = RRMatrix::from_epsilon(1.0, 5).unwrap();
        let pi = vec![0.4, 0.25, 0.2, 0.1, 0.05];
        let lambda = m.expected_reported_distribution(&pi).unwrap();
        let hat = estimate_proper(&m, &lambda).unwrap();
        for (a, b) in hat.iter().zip(pi.iter()) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn estimate_from_reports_converges_with_sample_size() {
        // End-to-end: randomize a known distribution, estimate it back.
        let m = RRMatrix::direct(0.7, 3).unwrap();
        let pi_true = [0.6, 0.3, 0.1];
        let mut rng = StdRng::seed_from_u64(5);
        let n = 60_000;
        let mut reports = Vec::with_capacity(n);
        for i in 0..n {
            // Deterministic true values with the right proportions.
            let x = if (i as f64) < 0.6 * n as f64 {
                0
            } else if (i as f64) < 0.9 * n as f64 {
                1
            } else {
                2
            };
            reports.push(m.randomize(x, &mut rng).unwrap());
        }
        let est = estimate_from_reports(&m, &reports).unwrap();
        for (a, b) in est.iter().zip(pi_true.iter()) {
            assert_close(*a, *b, 0.02);
        }
    }

    #[test]
    fn ibu_recovers_consistent_distributions() {
        let m = RRMatrix::direct(0.6, 4).unwrap();
        let pi = vec![0.4, 0.3, 0.2, 0.1];
        let lambda = m.expected_reported_distribution(&pi).unwrap();
        let est = iterative_bayesian_update(&m, &lambda, 5_000, 1e-12).unwrap();
        assert!(mdrr_math::is_probability_vector(&est, 1e-9));
        for (a, b) in est.iter().zip(pi.iter()) {
            assert_close(*a, *b, 1e-4);
        }
    }

    #[test]
    fn ibu_always_returns_a_distribution_even_on_inconsistent_input() {
        let m = RRMatrix::direct(0.9, 2).unwrap();
        let lambda_hat = vec![0.02, 0.98];
        let est = iterative_bayesian_update(&m, &lambda_hat, 2_000, 1e-12).unwrap();
        assert!(mdrr_math::is_probability_vector(&est, 1e-9));
        // The MLE pushes the first category to (nearly) zero, in agreement
        // with the clamp-and-rescale projection.
        assert!(est[0] < 0.02);
    }

    #[test]
    fn ibu_validates_parameters() {
        let m = RRMatrix::direct(0.5, 2).unwrap();
        assert!(iterative_bayesian_update(&m, &[0.5], 10, 1e-9).is_err());
        assert!(iterative_bayesian_update(&m, &[0.5, 0.5], 0, 1e-9).is_err());
        assert!(iterative_bayesian_update(&m, &[0.5, 0.5], 10, 0.0).is_err());
    }

    #[test]
    fn proper_estimate_and_ibu_agree_on_well_behaved_input() {
        let m = RRMatrix::from_epsilon(2.0, 6).unwrap();
        let pi = vec![0.3, 0.25, 0.2, 0.1, 0.1, 0.05];
        let lambda = m.expected_reported_distribution(&pi).unwrap();
        let a = estimate_proper(&m, &lambda).unwrap();
        let b = iterative_bayesian_update(&m, &lambda, 10_000, 1e-13).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_close(*x, *y, 1e-3);
        }
    }
}
