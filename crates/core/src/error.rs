//! Error type for the core randomized-response mechanism.

use mdrr_data::DataError;
use mdrr_math::MathError;
use std::fmt;

/// Errors produced by the randomization and estimation machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A numerical routine failed (singular matrix, invalid parameter, …).
    Math(MathError),
    /// A dataset operation failed (bad attribute index, schema mismatch, …).
    Data(DataError),
    /// A randomization matrix was requested or supplied with invalid
    /// parameters (probability outside `[0, 1]`, non-stochastic rows, …).
    InvalidMatrix {
        /// Description of the violated constraint.
        message: String,
    },
    /// A value or distribution did not match the matrix dimension.
    DimensionMismatch {
        /// Description of the operation.
        context: String,
        /// The expected dimension (number of categories of the matrix).
        expected: usize,
        /// The dimension that was supplied.
        got: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Math(e) => write!(f, "numerical error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::InvalidMatrix { message } => {
                write!(f, "invalid randomization matrix: {message}")
            }
            CoreError::DimensionMismatch {
                context,
                expected,
                got,
            } => {
                write!(
                    f,
                    "dimension mismatch in {context}: expected {expected}, got {got}"
                )
            }
            CoreError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Math(e) => Some(e),
            CoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for CoreError {
    fn from(e: MathError) -> Self {
        CoreError::Math(e)
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}

impl CoreError {
    /// Convenience constructor for [`CoreError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        CoreError::InvalidParameter {
            name,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`CoreError::InvalidMatrix`].
    pub fn invalid_matrix(message: impl Into<String>) -> Self {
        CoreError::InvalidMatrix {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_conversions() {
        let math: CoreError = MathError::SingularMatrix { pivot: 0 }.into();
        assert!(math.to_string().contains("numerical error"));
        let data: CoreError = DataError::UnknownAttribute { name: "X".into() }.into();
        assert!(data.to_string().contains("data error"));
        assert!(CoreError::invalid_matrix("rows do not sum to 1")
            .to_string()
            .contains("rows"));
        assert!(CoreError::invalid("p", "out of range")
            .to_string()
            .contains("`p`"));
        let dim = CoreError::DimensionMismatch {
            context: "estimate".into(),
            expected: 3,
            got: 5,
        };
        assert!(dim.to_string().contains("expected 3"));
    }

    #[test]
    fn source_points_at_wrapped_error() {
        use std::error::Error;
        let math: CoreError = MathError::SingularMatrix { pivot: 0 }.into();
        assert!(math.source().is_some());
        assert!(CoreError::invalid("p", "bad").source().is_none());
    }
}
