//! Differential-privacy accounting.
//!
//! The paper quantifies the protection of every mechanism in terms of
//! ε-differential privacy (Section 2.2): a randomization matrix `P` is
//! ε-DP when `e^ε ≥ max_v (max_u p_uv / min_u p_uv)` (Expression (4)).
//! When several releases are combined, the *sequential composition*
//! property applies — the budgets add up — unless the releases are made
//! unlinkable, in which case *parallel composition* (the maximum) is the
//! appropriate bound (the argument used in Section 4.3 for the
//! RR-per-pair dependence estimation over a secure sum).
//!
//! [`PrivacyAccountant`] tracks the budget spent by a pipeline of releases
//! so protocols and experiments can report a single equivalent ε.

use crate::matrix::RRMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a set of releases composes from the adversary's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Composition {
    /// The adversary can link all releases to the same individual: budgets
    /// add up (the default, worst-case assumption).
    Sequential,
    /// The releases are unlinkable (e.g. sent through the secure-sum
    /// protocol of Section 4.2/4.3): the budget is the maximum of the
    /// individual budgets.
    Parallel,
}

/// One recorded release: a label and the ε it spends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Release {
    /// Human-readable description (e.g. `"RR on attribute Education"`).
    pub label: String,
    /// Privacy budget of the release.
    pub epsilon: f64,
}

/// Accumulates the privacy budget spent by a sequence of releases.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PrivacyAccountant {
    releases: Vec<Release>,
}

impl PrivacyAccountant {
    /// An accountant with no recorded releases (total budget 0).
    pub fn new() -> Self {
        PrivacyAccountant::default()
    }

    /// Records a release with an explicit ε.
    pub fn record(&mut self, label: impl Into<String>, epsilon: f64) {
        self.releases.push(Release {
            label: label.into(),
            epsilon: epsilon.max(0.0),
        });
    }

    /// Records the release of data randomized with `matrix`, deriving ε from
    /// Expression (4).
    pub fn record_matrix(&mut self, label: impl Into<String>, matrix: &RRMatrix) {
        self.record(label, matrix.epsilon());
    }

    /// The recorded releases, in order.
    pub fn releases(&self) -> &[Release] {
        &self.releases
    }

    /// Number of recorded releases.
    pub fn len(&self) -> usize {
        self.releases.len()
    }

    /// Whether no release has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.releases.is_empty()
    }

    /// Total budget under the given composition rule.
    pub fn total(&self, composition: Composition) -> f64 {
        match composition {
            Composition::Sequential => self.releases.iter().map(|r| r.epsilon).sum(),
            Composition::Parallel => self.releases.iter().map(|r| r.epsilon).fold(0.0, f64::max),
        }
    }

    /// Total budget under sequential composition (the conservative default).
    pub fn total_sequential(&self) -> f64 {
        self.total(Composition::Sequential)
    }

    /// Merges another accountant's releases into this one.
    pub fn absorb(&mut self, other: &PrivacyAccountant) {
        self.releases.extend(other.releases.iter().cloned());
    }
}

impl fmt::Display for PrivacyAccountant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "privacy budget ledger ({} releases):", self.len())?;
        for r in &self.releases {
            writeln!(f, "  ε = {:>8.4}  {}", r.epsilon, r.label)?;
        }
        writeln!(
            f,
            "  total (sequential): {:.4}",
            self.total(Composition::Sequential)
        )?;
        write!(
            f,
            "  total (parallel):   {:.4}",
            self.total(Composition::Parallel)
        )
    }
}

/// Splits a total privacy budget evenly over `parts` releases (e.g. giving
/// each attribute of RR-Independent the same share of a global budget).
///
/// Returns an empty vector when `parts == 0`.
pub fn split_budget(total: f64, parts: usize) -> Vec<f64> {
    if parts == 0 {
        return Vec::new();
    }
    vec![total.max(0.0) / parts as f64; parts]
}

/// The ε of Expression (4) for the optimal per-attribute matrix of
/// Section 6.3.1 with keep probability `p` and cardinality `r`:
/// `ε_A = | ln( p / ((1−p)/r) ) |`.
///
/// This is the budget the experiments assign to an attribute when the
/// randomization level is expressed as a keep probability rather than an ε.
pub fn epsilon_for_keep_probability(p: f64, r: usize) -> f64 {
    if r == 0 || p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    (p / ((1.0 - p) / r as f64)).ln().abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn accountant_sums_and_maxes() {
        let mut acc = PrivacyAccountant::new();
        assert!(acc.is_empty());
        acc.record("attr A", 0.5);
        acc.record("attr B", 1.5);
        acc.record("attr C", 1.0);
        assert_eq!(acc.len(), 3);
        assert_close(acc.total(Composition::Sequential), 3.0, 1e-12);
        assert_close(acc.total(Composition::Parallel), 1.5, 1e-12);
        assert_close(acc.total_sequential(), 3.0, 1e-12);
    }

    #[test]
    fn record_matrix_uses_expression_4() {
        let mut acc = PrivacyAccountant::new();
        let m = RRMatrix::from_epsilon(0.8, 7).unwrap();
        acc.record_matrix("attr", &m);
        assert_close(acc.total_sequential(), 0.8, 1e-9);
    }

    #[test]
    fn negative_epsilons_are_clamped() {
        let mut acc = PrivacyAccountant::new();
        acc.record("weird", -1.0);
        assert_eq!(acc.total_sequential(), 0.0);
    }

    #[test]
    fn absorb_merges_ledgers() {
        let mut a = PrivacyAccountant::new();
        a.record("x", 1.0);
        let mut b = PrivacyAccountant::new();
        b.record("y", 2.0);
        a.absorb(&b);
        assert_eq!(a.len(), 2);
        assert_close(a.total_sequential(), 3.0, 1e-12);
    }

    #[test]
    fn display_lists_every_release() {
        let mut acc = PrivacyAccountant::new();
        acc.record("RR on Education", 0.7);
        acc.record("RR on Income", 0.2);
        let text = format!("{acc}");
        assert!(text.contains("RR on Education"));
        assert!(text.contains("total (sequential)"));
    }

    #[test]
    fn split_budget_is_even_and_total_preserving() {
        let parts = split_budget(2.4, 8);
        assert_eq!(parts.len(), 8);
        assert_close(parts.iter().sum::<f64>(), 2.4, 1e-12);
        assert!(split_budget(1.0, 0).is_empty());
        assert_eq!(split_budget(-3.0, 2), vec![0.0, 0.0]);
    }

    #[test]
    fn epsilon_for_keep_probability_matches_section_631() {
        // ε_A = ln(p r / (1 − p))
        assert_close(
            epsilon_for_keep_probability(0.7, 9),
            (0.7 * 9.0 / 0.3f64).ln(),
            1e-12,
        );
        assert_eq!(epsilon_for_keep_probability(0.0, 9), 0.0);
        assert_eq!(epsilon_for_keep_probability(1.0, 9), f64::INFINITY);
        assert_eq!(epsilon_for_keep_probability(0.5, 0), 0.0);
        // Very small p can make the ratio < 1; the absolute value keeps ε ≥ 0.
        assert!(epsilon_for_keep_probability(0.05, 2) >= 0.0);
    }

    #[test]
    fn parallel_composition_never_exceeds_sequential() {
        let mut acc = PrivacyAccountant::new();
        for (i, e) in [0.3, 0.9, 0.1, 2.0].iter().enumerate() {
            acc.record(format!("release {i}"), *e);
        }
        assert!(acc.total(Composition::Parallel) <= acc.total(Composition::Sequential));
    }
}
