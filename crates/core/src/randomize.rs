//! Dataset-level randomization helpers.
//!
//! [`RRMatrix`] randomizes individual category
//! codes; the helpers in this module lift that to whole attributes and whole
//! datasets, which is the granularity the protocols of `mdrr-protocols`
//! operate at.  The semantics deliberately mirror the local-anonymization
//! trust model: the randomization of record `i` uses only record `i`'s true
//! values and the public matrices, never other records.

use crate::error::CoreError;
use crate::matrix::RRMatrix;
use mdrr_data::Dataset;
use rand::Rng;

/// Randomizes one attribute of a dataset, returning the randomized column.
///
/// # Errors
/// * [`CoreError::Data`] for a bad attribute index;
/// * [`CoreError::DimensionMismatch`] if the matrix size does not match the
///   attribute cardinality.
pub fn randomize_attribute(
    dataset: &Dataset,
    attribute: usize,
    matrix: &RRMatrix,
    rng: &mut impl Rng,
) -> Result<Vec<u32>, CoreError> {
    let cardinality = dataset
        .schema()
        .attribute(attribute)
        .map_err(CoreError::from)?
        .cardinality();
    if matrix.size() != cardinality {
        return Err(CoreError::DimensionMismatch {
            context: format!("randomize_attribute (attribute {attribute})"),
            expected: cardinality,
            got: matrix.size(),
        });
    }
    let column = dataset.column(attribute).map_err(CoreError::from)?;
    matrix.randomize_column(column, rng)
}

/// Randomizes every attribute of a dataset independently with its own
/// matrix (the randomization step of Protocol 1, RR-Independent), returning
/// a new dataset over the same schema.
///
/// # Errors
/// * [`CoreError::InvalidParameter`] if the number of matrices differs from
///   the number of attributes;
/// * errors from [`randomize_attribute`] otherwise.
pub fn randomize_dataset_independent(
    dataset: &Dataset,
    matrices: &[RRMatrix],
    rng: &mut impl Rng,
) -> Result<Dataset, CoreError> {
    if matrices.len() != dataset.n_attributes() {
        return Err(CoreError::invalid(
            "matrices",
            format!(
                "expected one matrix per attribute ({}), got {}",
                dataset.n_attributes(),
                matrices.len()
            ),
        ));
    }
    let mut randomized = dataset.clone();
    for (j, matrix) in matrices.iter().enumerate() {
        let column = randomize_attribute(dataset, j, matrix, rng)?;
        randomized
            .replace_column(j, column)
            .map_err(CoreError::from)?;
    }
    Ok(randomized)
}

/// Randomizes the *joint* codes of a group of attributes with a single
/// matrix over their Cartesian product (the randomization step of
/// Protocol 2 / RR-Clusters), returning the randomized joint codes.
///
/// # Errors
/// * [`CoreError::Data`] for bad attribute indices;
/// * [`CoreError::DimensionMismatch`] if the matrix size does not match the
///   joint-domain size.
pub fn randomize_joint(
    dataset: &Dataset,
    attributes: &[usize],
    matrix: &RRMatrix,
    rng: &mut impl Rng,
) -> Result<Vec<u32>, CoreError> {
    let (domain, codes) = dataset.joint_codes(attributes).map_err(CoreError::from)?;
    if matrix.size() != domain.size() {
        return Err(CoreError::DimensionMismatch {
            context: "randomize_joint".to_string(),
            expected: domain.size(),
            got: matrix.size(),
        });
    }
    matrix.randomize_column(&codes, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{empirical_distribution, estimate_proper};
    use mdrr_data::{Attribute, AttributeKind, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new(
                "A",
                AttributeKind::Nominal,
                vec!["a".into(), "b".into(), "c".into()],
            )
            .unwrap(),
            Attribute::new("B", AttributeKind::Nominal, vec!["x".into(), "y".into()]).unwrap(),
        ])
        .unwrap()
    }

    fn dataset(n: usize) -> Dataset {
        let mut ds = Dataset::empty(schema());
        for i in 0..n {
            ds.push_record(&[(i % 3) as u32, (i % 2) as u32]).unwrap();
        }
        ds
    }

    #[test]
    fn randomize_attribute_validates_matrix_size() {
        let ds = dataset(10);
        let wrong = RRMatrix::direct(0.5, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            randomize_attribute(&ds, 0, &wrong, &mut rng),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(randomize_attribute(&ds, 7, &wrong, &mut rng).is_err());
    }

    #[test]
    fn identity_matrices_leave_the_dataset_unchanged() {
        let ds = dataset(50);
        let matrices = vec![
            RRMatrix::identity(3).unwrap(),
            RRMatrix::identity(2).unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(0);
        let randomized = randomize_dataset_independent(&ds, &matrices, &mut rng).unwrap();
        assert_eq!(randomized, ds);
    }

    #[test]
    fn independent_randomization_validates_matrix_count() {
        let ds = dataset(5);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(
            randomize_dataset_independent(&ds, &[RRMatrix::identity(3).unwrap()], &mut rng)
                .is_err()
        );
    }

    #[test]
    fn randomized_dataset_estimates_recover_marginals() {
        let ds = dataset(30_000);
        let matrices = vec![
            RRMatrix::direct(0.6, 3).unwrap(),
            RRMatrix::direct(0.7, 2).unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(3);
        let randomized = randomize_dataset_independent(&ds, &matrices, &mut rng).unwrap();
        assert_eq!(randomized.n_records(), ds.n_records());

        for (j, matrix) in matrices.iter().enumerate() {
            let reports = randomized.column(j).unwrap();
            let lambda = empirical_distribution(reports, matrix.size()).unwrap();
            let estimate = estimate_proper(matrix, &lambda).unwrap();
            let truth = ds.marginal_distribution(j).unwrap();
            for (a, b) in estimate.iter().zip(truth.iter()) {
                assert!(
                    (a - b).abs() < 0.02,
                    "attribute {j}: {estimate:?} vs {truth:?}"
                );
            }
        }
    }

    #[test]
    fn joint_randomization_covers_the_product_domain() {
        let ds = dataset(12_000);
        let matrix = RRMatrix::direct(0.8, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let codes = randomize_joint(&ds, &[0, 1], &matrix, &mut rng).unwrap();
        assert_eq!(codes.len(), ds.n_records());
        assert!(codes.iter().all(|&c| (c as usize) < 6));

        // Estimating the joint distribution back should be close to the truth.
        let lambda = empirical_distribution(&codes, 6).unwrap();
        let est = estimate_proper(&matrix, &lambda).unwrap();
        let (_, truth) = ds.joint_distribution(&[0, 1]).unwrap();
        for (a, b) in est.iter().zip(truth.iter()) {
            assert!((a - b).abs() < 0.02);
        }
    }

    #[test]
    fn joint_randomization_validates_matrix_size() {
        let ds = dataset(10);
        let mut rng = StdRng::seed_from_u64(0);
        let wrong = RRMatrix::direct(0.5, 5).unwrap();
        assert!(matches!(
            randomize_joint(&ds, &[0, 1], &wrong, &mut rng),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }
}
