//! Randomization matrices.
//!
//! A randomization matrix `P` (Expression (1) of the paper) is an `r × r`
//! row-stochastic matrix where `p_uv = Pr(Y = v | X = u)`: the probability
//! of reporting category `v` when the true category is `u`.  The paper's
//! optimal matrices (Sections 2.3 and 6.3) all have the *uniform
//! perturbation* shape — a constant diagonal `p_u` and a constant
//! off-diagonal `p_d ≤ p_u` — which this module exploits:
//!
//! * randomizing a value costs O(1) instead of O(r);
//! * the unbiased estimator `π̂ = (Pᵀ)⁻¹ λ̂` of Equation (2) costs O(r) via
//!   the Sherman–Morrison closed form instead of O(r³);
//! * the differential-privacy level of Expression (4) is `ln(p_u / p_d)` in
//!   closed form.
//!
//! Arbitrary row-stochastic matrices are also supported (constructor
//! [`RRMatrix::from_matrix`]) and fall back to general linear algebra.

use crate::error::CoreError;
use mdrr_math::linsolve::{
    invert, solve, solve_uniform_perturbation, uniform_perturbation_condition,
};
use mdrr_math::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Internal representation of a randomization matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Form {
    /// Constant diagonal / constant off-diagonal matrix (`p_u`, `p_d`).
    Uniform {
        /// Diagonal entry `p_u = Pr(Y = u | X = u)`.
        diag: f64,
        /// Off-diagonal entry `p_d = Pr(Y = v | X = u)` for `v ≠ u`.
        off: f64,
    },
    /// Arbitrary row-stochastic matrix.
    General(Matrix),
}

/// A validated `r × r` randomization matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RRMatrix {
    r: usize,
    form: Form,
}

/// Probability tolerance used when validating stochasticity.
const TOL: f64 = 1e-9;

/// The number of uniform bits behind one draw: a raw `next_u64` output is
/// reduced to its top 53 bits, exactly the bits `rng.gen::<f64>()` keeps.
const DRAW_BITS: u32 = 53;

/// Largest channel domain counted through interleaved stack banks in
/// [`PreparedRandomizer::randomize_strided_tally`] (4 banks of this width
/// fit comfortably on the stack and zero quickly).
const TALLY_BANK_WIDTH: usize = 64;

/// The integer keep/redraw constants of a uniform-perturbation row,
/// precomputed once per matrix (or per call on the scalar path — the same
/// expressions either way, which is what keeps the two paths
/// bit-identical).
///
/// * `threshold` = `⌈diag · 2⁵³⌉`: a draw's top 53 bits `hi` satisfy
///   `hi < threshold` with probability exactly
///   `⌈diag · 2⁵³⌉ / 2⁵³` — the same probability the former
///   `gen::<f64>() < diag` comparison had, since `(hi · 2⁻⁵³) < diag ⟺
///   hi < ⌈diag · 2⁵³⌉` for integer `hi`.
/// * `redraw_scale` = `⌊(r − 1) · 2⁶⁴ / (2⁵³ − threshold)⌋`: the 64.64
///   fixed-point factor mapping the leftover mass
///   `hi − threshold ∈ [0, 2⁵³ − threshold)` onto `0 .. r − 1`
///   (`idx = (diff · redraw_scale) >> 64` is provably `< r − 1`, so no
///   clamp is needed; the non-uniformity of the map is below `2⁻¹⁰` of one
///   category even for the largest capped joint domains).
///
/// Everything is integer arithmetic — no float conversion, no division in
/// the hot loop — which is what lets the batched encoders run the kernel
/// at a few cycles per value.
#[inline]
fn uniform_row_constants(r: usize, diag: f64) -> (u64, u128) {
    let threshold = uniform_threshold(r, diag);
    (threshold, uniform_redraw_scale(r, threshold))
}

/// The keep threshold `⌈diag · 2⁵³⌉` alone (cheap: one multiply and a
/// ceil) — the scalar path computes this per call and derives the redraw
/// scale only when the (rarer) redraw branch is actually taken, so the
/// u128 division stays off the keep path.
#[inline]
fn uniform_threshold(r: usize, diag: f64) -> u64 {
    let full = 1u64 << DRAW_BITS;
    if diag >= 1.0 || r == 1 {
        full
    } else {
        ((diag * full as f64).ceil() as u64).min(full)
    }
}

/// The fixed-point redraw scale for a given threshold (one u128 division).
#[inline]
fn uniform_redraw_scale(r: usize, threshold: u64) -> u128 {
    let span = (1u64 << DRAW_BITS) - threshold;
    if span == 0 || r <= 1 {
        0
    } else {
        ((r as u128 - 1) << 64) / span as u128
    }
}

// The shared keep/redraw kernel below is the reason the batched and
// per-record paths are bit-identical: pure integer arithmetic, one draw
// per value.  mdrr-lint enforces that no float (and no allocation) ever
// sneaks back in.
// lint:region(no_float, no_alloc)

/// The redraw half of the kernel: maps the leftover mass `hi − threshold`
/// onto one of the `r − 1` categories other than `true_value`.  Shared by
/// the batched kernel and the scalar path so their arithmetic can never
/// diverge.
#[inline]
fn uniform_redraw(threshold: u64, redraw_scale: u128, true_value: u32, hi: u64) -> u32 {
    let idx = (((hi - threshold) as u128 * redraw_scale) >> 64) as u32;
    idx + u32::from(idx >= true_value)
}

/// The fused keep/redraw kernel of the uniform-perturbation form: maps one
/// raw 64-bit draw to the randomized category.
///
/// The row of `true_value` is `diag` at the true value and constant
/// elsewhere, so a single draw decides both questions at once: the top 53
/// bits below `threshold` keep the value, and otherwise the *leftover*
/// uniform mass selects one of the `r − 1` other categories through the
/// fixed-point `redraw_scale` (see [`uniform_row_constants`]).  One RNG
/// draw per value, no data-dependent extra draws; this is the draw
/// discipline both the per-record and the batched encoders share, which is
/// what makes them bit-identical under a common seed.
#[inline]
fn sample_uniform_raw(threshold: u64, redraw_scale: u128, true_value: u32, raw: u64) -> u32 {
    let hi = raw >> (64 - DRAW_BITS);
    if hi < threshold {
        return true_value;
    }
    uniform_redraw(threshold, redraw_scale, true_value, hi)
}

// lint:endregion(no_float, no_alloc)

/// One-draw inverse-CDF sampling along row `u` of a general row-stochastic
/// matrix: walk the row subtracting probabilities until the draw is spent.
#[inline]
fn sample_general_row(m: &Matrix, r: usize, u: usize, mut draw: f64) -> u32 {
    for (v, &p) in m.row(u).iter().enumerate() {
        draw -= p;
        if draw <= 0.0 {
            return v as u32;
        }
    }
    (r - 1) as u32
}

/// A matrix's randomization kernel with the form dispatch and constants
/// hoisted out — the per-value engine of the batched encoders.
///
/// Borrowing a [`PreparedRandomizer`] once per batch turns the per-value
/// work into pure integer arithmetic over *pre-drawn* raw u64s: no form
/// `match` re-resolution, no `Result`, no RNG virtual call in the loop.
/// The mapping from a raw draw to a randomized category is exactly the one
/// [`RRMatrix::randomize`] applies to one `next_u64` output (the same
/// integer threshold/fixed-point kernel), so a caller that feeds draws from
/// [`rand::RngCore::fill_u64`] in value order is bit-identical to
/// per-value `randomize` calls on the same RNG.
#[derive(Debug, Clone, Copy)]
pub struct PreparedRandomizer<'a> {
    r: usize,
    kind: PreparedKind<'a>,
}

#[derive(Debug, Clone, Copy)]
enum PreparedKind<'a> {
    Uniform { threshold: u64, redraw_scale: u128 },
    General(&'a Matrix),
}

impl PreparedRandomizer<'_> {
    /// Randomizes `true_value` with the raw 64-bit draw `raw` — exactly
    /// what [`RRMatrix::randomize`] computes from one `next_u64` output.
    ///
    /// The caller must have validated `true_value < r` (the batched
    /// encoders validate each column once per batch); out-of-range values
    /// are a debug-time panic and an unspecified in-range result in
    /// release builds.
    #[inline]
    pub fn randomize_raw(&self, true_value: u32, raw: u64) -> u32 {
        debug_assert!((true_value as usize) < self.r, "category out of range");
        match self.kind {
            PreparedKind::Uniform {
                threshold,
                redraw_scale,
            } => sample_uniform_raw(threshold, redraw_scale, true_value, raw),
            PreparedKind::General(m) => {
                sample_general_row(m, self.r, true_value as usize, rand::unit_f64_from_u64(raw))
            }
        }
    }

    /// Randomizes a whole column of (pre-validated) category codes with
    /// pre-drawn randomness, appending to `out`: value `i` uses
    /// `draws[offset + i · stride]`.
    ///
    /// The strided indexing is what lets a *column-at-a-time* encoder keep
    /// the *record-major* draw-to-value mapping of the per-record path
    /// (value `i` of channel `j` out of `m` always consumes draw
    /// `i · m + j` of the batch, no matter in which order the channels are
    /// processed) — column-major processing speed, per-record bit-identity.
    /// The form `match` is resolved once per call, the loop body is pure
    /// arithmetic, and `out` grows through one exact-size `extend`.
    ///
    /// # Panics
    /// Panics if `draws` is shorter than the strided indexing requires or
    /// `stride` is zero.
    #[inline]
    pub fn randomize_strided_into(
        &self,
        column: &[u32],
        draws: &[u64],
        offset: usize,
        stride: usize,
        out: &mut Vec<u32>,
    ) {
        assert!(stride > 0, "draw stride must be positive");
        assert!(
            column.is_empty() || offset + (column.len() - 1) * stride < draws.len(),
            "draw buffer too short for the strided column"
        );
        match self.kind {
            PreparedKind::Uniform {
                threshold,
                redraw_scale,
            } => {
                // lint:region(no_float, no_alloc)
                out.extend(column.iter().enumerate().map(|(i, &v)| {
                    sample_uniform_raw(threshold, redraw_scale, v, draws[offset + i * stride])
                }));
                // lint:endregion(no_float, no_alloc)
            }
            PreparedKind::General(m) => {
                let r = self.r;
                out.extend(column.iter().enumerate().map(|(i, &v)| {
                    let u = rand::unit_f64_from_u64(draws[offset + i * stride]);
                    sample_general_row(m, r, v as usize, u)
                }));
            }
        }
    }

    /// The counting sibling of
    /// [`PreparedRandomizer::randomize_strided_into`]: identical draws,
    /// identical randomized codes, but instead of materializing the codes
    /// it bumps `tally[code]` — the per-category sufficient statistics —
    /// in the same pass.  This is the hot loop of bulk ingestion, where
    /// the collector only ever needs the count vectors: fusing the count
    /// into the randomization avoids storing and re-reading every code.
    ///
    /// # Panics
    /// Panics if `tally.len() != r`, `draws` is shorter than the strided
    /// indexing requires, or `stride` is zero.
    #[inline]
    pub fn randomize_strided_tally(
        &self,
        column: &[u32],
        draws: &[u64],
        offset: usize,
        stride: usize,
        tally: &mut [u64],
    ) {
        assert!(stride > 0, "draw stride must be positive");
        assert!(
            column.is_empty() || offset + (column.len() - 1) * stride < draws.len(),
            "draw buffer too short for the strided column"
        );
        assert_eq!(tally.len(), self.r, "tally length must match the domain");
        match self.kind {
            PreparedKind::Uniform {
                threshold,
                redraw_scale,
            } => {
                // lint:region(no_float, no_alloc)
                if self.r <= TALLY_BANK_WIDTH {
                    // Four interleaved stack banks: consecutive values
                    // never increment the same counter slot, so the
                    // store-forwarding chains that serialize counting on
                    // low-cardinality channels (where most codes hit the
                    // same one or two categories) are broken.
                    let mut banks = [0u64; 4 * TALLY_BANK_WIDTH];
                    for (i, &v) in column.iter().enumerate() {
                        let code = sample_uniform_raw(
                            threshold,
                            redraw_scale,
                            v,
                            draws[offset + i * stride],
                        );
                        banks[(i & 3) * TALLY_BANK_WIDTH + code as usize] += 1;
                    }
                    for (code, slot) in tally.iter_mut().enumerate() {
                        *slot += banks[code]
                            + banks[TALLY_BANK_WIDTH + code]
                            + banks[2 * TALLY_BANK_WIDTH + code]
                            + banks[3 * TALLY_BANK_WIDTH + code];
                    }
                } else {
                    for (i, &v) in column.iter().enumerate() {
                        let code = sample_uniform_raw(
                            threshold,
                            redraw_scale,
                            v,
                            draws[offset + i * stride],
                        );
                        tally[code as usize] += 1;
                    }
                }
                // lint:endregion(no_float, no_alloc)
            }
            PreparedKind::General(m) => {
                for (i, &v) in column.iter().enumerate() {
                    let u = rand::unit_f64_from_u64(draws[offset + i * stride]);
                    let code = sample_general_row(m, self.r, v as usize, u);
                    tally[code as usize] += 1;
                }
            }
        }
    }
}

impl RRMatrix {
    /// The identity matrix: no randomization (and no privacy).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if `r == 0`.
    pub fn identity(r: usize) -> Result<Self, CoreError> {
        if r == 0 {
            return Err(CoreError::invalid("r", "matrix dimension must be positive"));
        }
        Ok(RRMatrix {
            r,
            form: Form::Uniform {
                diag: 1.0,
                off: 0.0,
            },
        })
    }

    /// The "keep with probability `p`, otherwise redraw uniformly from the
    /// whole domain" mechanism of Proposition 1 / Corollary 1 (Section 4.1).
    ///
    /// Its matrix has diagonal `p + (1−p)/r` and off-diagonal `(1−p)/r`.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if `r == 0` or `p ∉ [0, 1]`.
    pub fn uniform_keep(p: f64, r: usize) -> Result<Self, CoreError> {
        if r == 0 {
            return Err(CoreError::invalid("r", "matrix dimension must be positive"));
        }
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(CoreError::invalid(
                "p",
                format!("keep probability must lie in [0, 1], got {p}"),
            ));
        }
        let off = (1.0 - p) / r as f64;
        Ok(RRMatrix {
            r,
            form: Form::Uniform { diag: p + off, off },
        })
    }

    /// The classic direct mechanism: report the true value with probability
    /// `p` and each *other* value with probability `(1−p)/(r−1)`.
    ///
    /// For `r == 1` the only valid matrix is the identity.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if `r == 0` or `p ∉ [0, 1]`.
    pub fn direct(p: f64, r: usize) -> Result<Self, CoreError> {
        if r == 0 {
            return Err(CoreError::invalid("r", "matrix dimension must be positive"));
        }
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(CoreError::invalid(
                "p",
                format!("keep probability must lie in [0, 1], got {p}"),
            ));
        }
        if r == 1 {
            return RRMatrix::identity(1);
        }
        let off = (1.0 - p) / (r - 1) as f64;
        Ok(RRMatrix {
            r,
            form: Form::Uniform { diag: p, off },
        })
    }

    /// The ε-differentially-private optimal matrix (Section 6.3): diagonal
    /// `p_u = e^ε / (e^ε + r − 1)` and off-diagonal `p_d = 1 / (e^ε + r − 1)`,
    /// so that `p_u / p_d = e^ε` exactly (Expression (4) holds with
    /// equality) and each row sums to 1.
    ///
    /// This is the matrix the experiments use for RR-Independent
    /// (Section 6.3.1); [`RRMatrix::cluster_from_epsilons`] builds the
    /// equivalent-risk matrix for a cluster (Section 6.3.2).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if `r == 0` or `epsilon < 0`
    /// or non-finite.
    pub fn from_epsilon(epsilon: f64, r: usize) -> Result<Self, CoreError> {
        if r == 0 {
            return Err(CoreError::invalid("r", "matrix dimension must be positive"));
        }
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(CoreError::invalid(
                "epsilon",
                format!("privacy budget must be a non-negative finite number, got {epsilon}"),
            ));
        }
        if r == 1 {
            return RRMatrix::identity(1);
        }
        let e = epsilon.exp();
        let off = 1.0 / (e + r as f64 - 1.0);
        let diag = e * off;
        Ok(RRMatrix {
            r,
            form: Form::Uniform { diag, off },
        })
    }

    /// The cluster matrix of Section 6.3.2: given the per-attribute budgets
    /// `ε_A` that RR-Independent would spend on the attributes of a cluster,
    /// the equivalent-risk joint matrix over the cluster's `domain_size`
    /// combinations is the optimal matrix for `Σ_A ε_A`.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if `domain_size == 0`, the
    /// list of budgets is empty, or any budget is negative/non-finite.
    pub fn cluster_from_epsilons(epsilons: &[f64], domain_size: usize) -> Result<Self, CoreError> {
        if epsilons.is_empty() {
            return Err(CoreError::invalid(
                "epsilons",
                "cluster must contain at least one attribute budget",
            ));
        }
        if epsilons.iter().any(|e| !e.is_finite() || *e < 0.0) {
            return Err(CoreError::invalid(
                "epsilons",
                "all privacy budgets must be non-negative finite numbers",
            ));
        }
        RRMatrix::from_epsilon(epsilons.iter().sum(), domain_size)
    }

    /// Wraps an arbitrary row-stochastic matrix.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidMatrix`] if the matrix is not square or
    /// not row-stochastic (within `1e-9`).
    pub fn from_matrix(matrix: Matrix) -> Result<Self, CoreError> {
        if !matrix.is_square() {
            return Err(CoreError::invalid_matrix(format!(
                "randomization matrix must be square, got {}x{}",
                matrix.rows(),
                matrix.cols()
            )));
        }
        if matrix.rows() == 0 {
            return Err(CoreError::invalid_matrix(
                "randomization matrix must be non-empty",
            ));
        }
        if !matrix.is_row_stochastic(TOL) {
            return Err(CoreError::invalid_matrix(
                "every row must be a probability distribution (entries in [0,1] summing to 1)",
            ));
        }
        let r = matrix.rows();
        Ok(RRMatrix {
            r,
            form: Form::General(matrix),
        })
    }

    /// Number of categories `r`.
    pub fn size(&self) -> usize {
        self.r
    }

    /// The probability `p_uv = Pr(Y = v | X = u)`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn prob(&self, u: usize, v: usize) -> f64 {
        assert!(u < self.r && v < self.r, "category index out of range");
        match &self.form {
            Form::Uniform { diag, off } => {
                if u == v {
                    *diag
                } else {
                    *off
                }
            }
            Form::General(m) => m.get(u, v),
        }
    }

    /// The diagonal entry, i.e. the probability of reporting the true value.
    /// For general matrices this is the minimum diagonal entry (the
    /// worst-case truthful-report probability).
    pub fn keep_probability(&self) -> f64 {
        match &self.form {
            Form::Uniform { diag, .. } => *diag,
            Form::General(m) => m.diagonal().into_iter().fold(f64::INFINITY, f64::min),
        }
    }

    /// Whether the matrix has the structured constant-diagonal /
    /// constant-off-diagonal shape (and therefore O(r) estimation).
    pub fn is_uniform_perturbation(&self) -> bool {
        matches!(self.form, Form::Uniform { .. })
    }

    /// Materialises the matrix as a dense [`Matrix`] (row-major, rows are
    /// conditional distributions).
    pub fn to_matrix(&self) -> Matrix {
        match &self.form {
            Form::Uniform { diag, off } => {
                Matrix::from_fn(self.r, self.r, |i, j| if i == j { *diag } else { *off })
            }
            Form::General(m) => m.clone(),
        }
    }

    /// The ε-differential-privacy level of the matrix per Expression (4):
    /// `ε = ln( max_v max_u p_uv / min_u p_uv )`.
    ///
    /// Returns `f64::INFINITY` when some column contains a zero probability
    /// together with a positive one (e.g. the identity matrix), which is the
    /// correct degenerate value: such a mechanism offers no differential
    /// privacy.
    pub fn epsilon(&self) -> f64 {
        match &self.form {
            Form::Uniform { diag, off } => {
                if self.r == 1 {
                    0.0
                } else if *off <= 0.0 {
                    if *diag <= 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (diag / off).max(off / diag).ln()
                }
            }
            Form::General(m) => {
                let mut worst: f64 = 1.0;
                for v in 0..self.r {
                    let col = m.column(v);
                    let max = col.iter().cloned().fold(f64::MIN, f64::max);
                    let min = col.iter().cloned().fold(f64::MAX, f64::min);
                    if max <= 0.0 {
                        continue;
                    }
                    if min <= 0.0 {
                        return f64::INFINITY;
                    }
                    worst = worst.max(max / min);
                }
                worst.ln()
            }
        }
    }

    /// Error-propagation diagnostic: ratio of the extreme eigenvalues of
    /// `Pᵀ` (the `P_max / P_min` lower bound of Section 2.3, following
    /// Agrawal & Haritsa).  For general matrices this falls back to a
    /// singular-value-free proxy based on the inverse's norm and is intended
    /// for diagnostics only.
    pub fn condition_number(&self) -> Result<f64, CoreError> {
        match &self.form {
            Form::Uniform { diag, off } => {
                Ok(uniform_perturbation_condition(diag - off, *off, self.r)?)
            }
            Form::General(m) => {
                let inv = invert(&m.transpose())?;
                Ok(m.frobenius_norm() * inv.frobenius_norm() / self.r as f64)
            }
        }
    }

    /// Randomizes one category code according to row `true_value` of the
    /// matrix.
    ///
    /// Consumes exactly one RNG draw per value for the uniform-perturbation
    /// form (the fused keep/redraw kernel) and one per value for general
    /// matrices, so randomizing `n` values always advances the RNG by `n`
    /// draws regardless of the outcomes — the invariant the batched
    /// encoders rely on to be bit-identical to this per-value path.
    ///
    /// # Errors
    /// Returns [`CoreError::DimensionMismatch`] if `true_value >= r`.
    pub fn randomize(&self, true_value: u32, rng: &mut impl Rng) -> Result<u32, CoreError> {
        let u = true_value as usize;
        if u >= self.r {
            return Err(CoreError::DimensionMismatch {
                context: "randomize".to_string(),
                expected: self.r,
                got: u,
            });
        }
        match &self.form {
            Form::Uniform { diag, .. } => {
                // Same arithmetic as the batched kernel, but the u128
                // division behind the redraw scale only runs when the
                // redraw branch is actually taken.
                let threshold = uniform_threshold(self.r, *diag);
                let hi = rng.next_u64() >> (64 - DRAW_BITS);
                Ok(if hi < threshold {
                    true_value
                } else {
                    uniform_redraw(
                        threshold,
                        uniform_redraw_scale(self.r, threshold),
                        true_value,
                        hi,
                    )
                })
            }
            Form::General(m) => Ok(sample_general_row(m, self.r, u, rng.gen())),
        }
    }

    /// The matrix's randomization kernel with form dispatch and constants
    /// hoisted — see [`PreparedRandomizer`].
    pub fn prepared(&self) -> PreparedRandomizer<'_> {
        PreparedRandomizer {
            r: self.r,
            kind: match &self.form {
                Form::Uniform { diag, .. } => {
                    let (threshold, redraw_scale) = uniform_row_constants(self.r, *diag);
                    PreparedKind::Uniform {
                        threshold,
                        redraw_scale,
                    }
                }
                Form::General(m) => PreparedKind::General(m),
            },
        }
    }

    /// Randomizes a whole column of category codes, appending the results
    /// to `out` — the batched, allocation-free sibling of
    /// [`RRMatrix::randomize`].
    ///
    /// The column is validated in one pass up front (a single range check
    /// per batch rather than one per value), then the hot loop runs with
    /// the matrix constants hoisted.  The draws consumed are exactly the
    /// draws [`RRMatrix::randomize`] would consume on the same values in
    /// the same order, so the output is bit-identical to the per-value
    /// path under a shared RNG.  On error `out` is unchanged.
    ///
    /// # Errors
    /// Returns [`CoreError::DimensionMismatch`] if any code is out of range.
    pub fn randomize_into(
        &self,
        column: &[u32],
        rng: &mut impl Rng,
        out: &mut Vec<u32>,
    ) -> Result<(), CoreError> {
        if let Some(&bad) = column.iter().find(|&&v| v as usize >= self.r) {
            return Err(CoreError::DimensionMismatch {
                context: "randomize_into".to_string(),
                expected: self.r,
                got: bad as usize,
            });
        }
        out.reserve(column.len());
        match &self.form {
            Form::Uniform { diag, .. } => {
                let (threshold, redraw_scale) = uniform_row_constants(self.r, *diag);
                out.extend(
                    column
                        .iter()
                        .map(|&v| sample_uniform_raw(threshold, redraw_scale, v, rng.next_u64())),
                );
            }
            Form::General(m) => {
                out.extend(
                    column
                        .iter()
                        .map(|&v| sample_general_row(m, self.r, v as usize, rng.gen())),
                );
            }
        }
        Ok(())
    }

    /// Randomizes a whole column of category codes.
    ///
    /// # Errors
    /// Returns [`CoreError::DimensionMismatch`] if any code is out of range.
    pub fn randomize_column(
        &self,
        column: &[u32],
        rng: &mut impl Rng,
    ) -> Result<Vec<u32>, CoreError> {
        let mut out = Vec::new();
        self.randomize_into(column, rng, &mut out)?;
        Ok(out)
    }

    /// Propagates a true distribution through the mechanism:
    /// `λ = Pᵀ π` (the expected distribution of the randomized reports).
    ///
    /// # Errors
    /// Returns [`CoreError::DimensionMismatch`] if `pi.len() != r`.
    pub fn expected_reported_distribution(&self, pi: &[f64]) -> Result<Vec<f64>, CoreError> {
        if pi.len() != self.r {
            return Err(CoreError::DimensionMismatch {
                context: "expected_reported_distribution".to_string(),
                expected: self.r,
                got: pi.len(),
            });
        }
        match &self.form {
            Form::Uniform { diag, off } => {
                // λ_v = off · Σ_u π_u + (diag − off) π_v
                let total: f64 = pi.iter().sum();
                Ok(pi.iter().map(|&p| off * total + (diag - off) * p).collect())
            }
            Form::General(m) => Ok(m.vecmat(pi)?),
        }
    }

    /// Applies the unbiased estimator of Equation (2) to an empirical
    /// reported distribution: `π̂ = (Pᵀ)⁻¹ λ̂`.  The result may contain
    /// values outside `[0, 1]`; see `mdrr_core::estimate` for the proper
    /// post-processing.
    ///
    /// # Errors
    /// * [`CoreError::DimensionMismatch`] if `lambda_hat.len() != r`;
    /// * [`CoreError::Math`] if the matrix is singular.
    pub fn estimate_true_distribution(&self, lambda_hat: &[f64]) -> Result<Vec<f64>, CoreError> {
        if lambda_hat.len() != self.r {
            return Err(CoreError::DimensionMismatch {
                context: "estimate_true_distribution".to_string(),
                expected: self.r,
                got: lambda_hat.len(),
            });
        }
        match &self.form {
            Form::Uniform { diag, off } => {
                // Pᵀ = P for the uniform-perturbation shape (it is symmetric),
                // so the O(r) Sherman–Morrison solve applies directly.
                Ok(solve_uniform_perturbation(diag - off, *off, lambda_hat)?)
            }
            Form::General(m) => Ok(solve(&m.transpose(), lambda_hat)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn constructors_validate_parameters() {
        assert!(RRMatrix::identity(0).is_err());
        assert!(RRMatrix::uniform_keep(-0.1, 3).is_err());
        assert!(RRMatrix::uniform_keep(1.1, 3).is_err());
        assert!(RRMatrix::uniform_keep(0.5, 0).is_err());
        assert!(RRMatrix::direct(f64::NAN, 3).is_err());
        assert!(RRMatrix::from_epsilon(-1.0, 3).is_err());
        assert!(RRMatrix::from_epsilon(f64::INFINITY, 3).is_err());
        assert!(RRMatrix::cluster_from_epsilons(&[], 10).is_err());
        assert!(RRMatrix::cluster_from_epsilons(&[1.0, -0.5], 10).is_err());
    }

    #[test]
    fn rows_are_stochastic_for_all_constructors() {
        let matrices = [
            RRMatrix::identity(4).unwrap(),
            RRMatrix::uniform_keep(0.7, 5).unwrap(),
            RRMatrix::direct(0.3, 6).unwrap(),
            RRMatrix::from_epsilon(1.5, 9).unwrap(),
            RRMatrix::cluster_from_epsilons(&[0.5, 0.8, 1.1], 30).unwrap(),
        ];
        for m in &matrices {
            assert!(m.to_matrix().is_row_stochastic(1e-9), "{m:?}");
        }
    }

    #[test]
    fn uniform_keep_matches_proposition_1_model() {
        let p = 0.7;
        let r = 5;
        let m = RRMatrix::uniform_keep(p, r).unwrap();
        assert_close(m.prob(2, 2), p + (1.0 - p) / r as f64, 1e-12);
        assert_close(m.prob(2, 3), (1.0 - p) / r as f64, 1e-12);
        assert!(m.is_uniform_perturbation());
    }

    #[test]
    fn direct_matrix_entries() {
        let m = RRMatrix::direct(0.6, 5).unwrap();
        assert_close(m.prob(0, 0), 0.6, 1e-12);
        assert_close(m.prob(0, 4), 0.1, 1e-12);
        assert_close(m.keep_probability(), 0.6, 1e-12);
        // r = 1 degenerates to identity.
        let one = RRMatrix::direct(0.2, 1).unwrap();
        assert_eq!(one.prob(0, 0), 1.0);
    }

    #[test]
    fn epsilon_matrix_attains_the_bound_with_equality() {
        for &(eps, r) in &[(0.5, 2usize), (1.0, 9), (2.0, 16), (4.0, 100)] {
            let m = RRMatrix::from_epsilon(eps, r).unwrap();
            assert_close(m.epsilon(), eps, 1e-9);
            assert!(m.to_matrix().is_row_stochastic(1e-9));
            // Diagonal dominates off-diagonal by exactly e^ε.
            assert_close(m.prob(0, 0) / m.prob(0, 1), eps.exp(), 1e-9);
        }
    }

    #[test]
    fn cluster_matrix_spends_the_summed_budget() {
        let eps = [0.4, 0.7, 0.9];
        let m = RRMatrix::cluster_from_epsilons(&eps, 42).unwrap();
        assert_close(m.epsilon(), eps.iter().sum(), 1e-9);
    }

    #[test]
    fn epsilon_of_identity_is_infinite_and_of_uniform_is_zero() {
        assert_eq!(RRMatrix::identity(3).unwrap().epsilon(), f64::INFINITY);
        // p = 0 in uniform_keep means the output is uniform regardless of the
        // input: perfect privacy, ε = 0.
        assert_close(
            RRMatrix::uniform_keep(0.0, 4).unwrap().epsilon(),
            0.0,
            1e-12,
        );
        // A single category carries no information at all.
        assert_eq!(RRMatrix::identity(1).unwrap().epsilon(), 0.0);
    }

    #[test]
    fn general_matrix_validation_and_epsilon() {
        let m = Matrix::from_rows(&[vec![0.8, 0.2], vec![0.4, 0.6]]).unwrap();
        let rr = RRMatrix::from_matrix(m).unwrap();
        assert!(!rr.is_uniform_perturbation());
        // Column ratios: max(0.8/0.4, 0.6/0.2) = 3.
        assert_close(rr.epsilon(), 3.0f64.ln(), 1e-12);
        assert_close(rr.keep_probability(), 0.6, 1e-12);

        let bad = Matrix::from_rows(&[vec![0.5, 0.4], vec![0.4, 0.6]]).unwrap();
        assert!(RRMatrix::from_matrix(bad).is_err());
        let non_square = Matrix::zeros(2, 3);
        assert!(RRMatrix::from_matrix(non_square).is_err());
    }

    #[test]
    fn randomize_identity_is_noop_and_validates_range() {
        let m = RRMatrix::identity(4).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for v in 0..4u32 {
            assert_eq!(m.randomize(v, &mut rng).unwrap(), v);
        }
        assert!(m.randomize(4, &mut rng).is_err());
    }

    #[test]
    fn randomize_empirical_distribution_matches_matrix_row() {
        let m = RRMatrix::direct(0.6, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[m.randomize(1, &mut rng).unwrap() as usize] += 1;
        }
        let freq: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert_close(freq[1], 0.6, 0.01);
        for v in [0usize, 2, 3] {
            assert_close(freq[v], 0.4 / 3.0, 0.01);
        }
    }

    #[test]
    fn randomize_general_matrix_matches_row() {
        let m =
            RRMatrix::from_matrix(Matrix::from_rows(&[vec![0.1, 0.9], vec![0.5, 0.5]]).unwrap())
                .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut ones = 0usize;
        for _ in 0..n {
            if m.randomize(0, &mut rng).unwrap() == 1 {
                ones += 1;
            }
        }
        assert_close(ones as f64 / n as f64, 0.9, 0.01);
    }

    #[test]
    fn estimation_roundtrips_expected_distribution() {
        // λ = Pᵀ π, then π̂ = (Pᵀ)⁻¹ λ must recover π exactly.
        let pi = vec![0.5, 0.3, 0.15, 0.05];
        for m in [
            RRMatrix::direct(0.55, 4).unwrap(),
            RRMatrix::uniform_keep(0.4, 4).unwrap(),
            RRMatrix::from_epsilon(1.2, 4).unwrap(),
        ] {
            let lambda = m.expected_reported_distribution(&pi).unwrap();
            assert_close(lambda.iter().sum::<f64>(), 1.0, 1e-12);
            let back = m.estimate_true_distribution(&lambda).unwrap();
            for (a, b) in back.iter().zip(pi.iter()) {
                assert_close(*a, *b, 1e-10);
            }
        }
    }

    #[test]
    fn estimation_matches_general_path() {
        let m = RRMatrix::direct(0.5, 5).unwrap();
        let general = RRMatrix::from_matrix(m.to_matrix()).unwrap();
        let lambda = vec![0.3, 0.25, 0.2, 0.15, 0.1];
        let fast = m.estimate_true_distribution(&lambda).unwrap();
        let slow = general.estimate_true_distribution(&lambda).unwrap();
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn estimation_validates_dimension() {
        let m = RRMatrix::direct(0.5, 3).unwrap();
        assert!(m.estimate_true_distribution(&[0.5, 0.5]).is_err());
        assert!(m.expected_reported_distribution(&[0.5, 0.5]).is_err());
    }

    #[test]
    fn condition_number_grows_with_stronger_randomization() {
        let weak = RRMatrix::direct(0.9, 5)
            .unwrap()
            .condition_number()
            .unwrap();
        let strong = RRMatrix::direct(0.3, 5)
            .unwrap()
            .condition_number()
            .unwrap();
        assert!(strong > weak);
    }

    #[test]
    fn more_off_diagonal_mass_means_smaller_epsilon() {
        let strong_privacy = RRMatrix::direct(0.3, 5).unwrap().epsilon();
        let weak_privacy = RRMatrix::direct(0.9, 5).unwrap().epsilon();
        assert!(strong_privacy < weak_privacy);
    }
}
