//! # mdrr-core
//!
//! The core randomized-response (RR) mechanism of the MDRR library:
//!
//! * [`matrix`] — validated randomization matrices (Expression (1) of the
//!   paper), including the optimal ε-DP matrices of Section 6.3, with O(1)
//!   randomization and O(r) estimation for the structured shapes;
//! * [`randomize`] — attribute- and dataset-level randomization helpers
//!   respecting the local-anonymization trust model;
//! * [`estimate`] — the unbiased frequency estimator of Equation (2), the
//!   Section 6.4 projection onto the probability simplex, and the iterative
//!   Bayesian update alternative;
//! * [`privacy`] — ε-differential-privacy accounting per Expression (4)
//!   with sequential/parallel composition;
//! * [`bounds`] — the analytic error bounds of Sections 2.3 and 3.3 that
//!   quantify the curse of dimensionality.
//!
//! ## Example
//!
//! Randomize reports with an ε-DP matrix and recover the true distribution:
//!
//! ```
//! use mdrr_core::{estimate_from_reports, RRMatrix};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let matrix = RRMatrix::from_epsilon(2.0, 3)?;
//! assert!((matrix.epsilon() - 2.0).abs() < 1e-9);
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let reports: Vec<u32> = (0..30_000)
//!     .map(|i| matrix.randomize((i % 3) as u32, &mut rng))
//!     .collect::<Result<_, _>>()?;
//!
//! // The true values cycle 0,1,2, so each frequency is 1/3.
//! let estimate = estimate_from_reports(&matrix, &reports)?;
//! for frequency in &estimate {
//!     assert!((frequency - 1.0 / 3.0).abs() < 0.02);
//! }
//! # Ok::<(), mdrr_core::CoreError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod error;
pub mod estimate;
pub mod matrix;
pub mod privacy;
pub mod randomize;

pub use bounds::{
    absolute_error_bound, best_case_relative_error, relative_error_bound,
    rr_independent_relative_error, rr_joint_relative_error, sqrt_b,
};
pub use error::CoreError;
pub use estimate::{
    distribution_from_counts, empirical_distribution, estimate_from_reports, estimate_proper,
    estimate_proper_from_counts, estimate_raw, iterative_bayesian_update,
};
pub use matrix::{PreparedRandomizer, RRMatrix};
pub use privacy::{epsilon_for_keep_probability, split_budget, Composition, PrivacyAccountant};
pub use randomize::{randomize_attribute, randomize_dataset_independent, randomize_joint};
