//! # mdrr-core
//!
//! The core randomized-response (RR) mechanism of the MDRR library:
//!
//! * [`matrix`] — validated randomization matrices (Expression (1) of the
//!   paper), including the optimal ε-DP matrices of Section 6.3, with O(1)
//!   randomization and O(r) estimation for the structured shapes;
//! * [`randomize`] — attribute- and dataset-level randomization helpers
//!   respecting the local-anonymization trust model;
//! * [`estimate`] — the unbiased frequency estimator of Equation (2), the
//!   Section 6.4 projection onto the probability simplex, and the iterative
//!   Bayesian update alternative;
//! * [`privacy`] — ε-differential-privacy accounting per Expression (4)
//!   with sequential/parallel composition;
//! * [`bounds`] — the analytic error bounds of Sections 2.3 and 3.3 that
//!   quantify the curse of dimensionality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod error;
pub mod estimate;
pub mod matrix;
pub mod privacy;
pub mod randomize;

pub use bounds::{
    absolute_error_bound, best_case_relative_error, relative_error_bound,
    rr_independent_relative_error, rr_joint_relative_error, sqrt_b,
};
pub use error::CoreError;
pub use estimate::{
    empirical_distribution, estimate_from_reports, estimate_proper, estimate_raw,
    iterative_bayesian_update,
};
pub use matrix::RRMatrix;
pub use privacy::{epsilon_for_keep_probability, split_budget, Composition, PrivacyAccountant};
pub use randomize::{randomize_attribute, randomize_dataset_independent, randomize_joint};
