//! Error metrics and summary statistics for the evaluation (Section 6.5).

use serde::{Deserialize, Serialize};

/// Absolute count-query error `e_S = |Y_S − X_S|`.
pub fn absolute_error(estimated: f64, truth: f64) -> f64 {
    (estimated - truth).abs()
}

/// Relative count-query error `r_S = |Y_S − X_S| / X_S` (Expression (16)).
///
/// Returns `None` when the true count is zero (the relative error is
/// undefined there); callers skip such runs, as the paper implicitly does
/// by using coverages large enough that `X_S > 0`.
pub fn relative_error(estimated: f64, truth: f64) -> Option<f64> {
    if truth == 0.0 {
        return None;
    }
    Some((estimated - truth).abs() / truth)
}

/// Median of a sample (the paper reports medians over 1000 runs).
/// Returns `None` for an empty sample.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    if n % 2 == 1 {
        Some(sorted[n / 2])
    } else {
        Some(0.5 * (sorted[n / 2 - 1] + sorted[n / 2]))
    }
}

/// Empirical quantile (`q ∈ [0, 1]`) using the nearest-rank convention.
/// Returns `None` for an empty sample or an out-of-range `q`.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Arithmetic mean; `None` for an empty sample.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Summary of the error distribution of one method at one evaluation point
/// (one `(p, σ)` combination, or one table cell).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Number of runs that contributed.
    pub runs: usize,
    /// Median absolute error `|Y_S − X_S|`.
    pub median_absolute: f64,
    /// Median relative error `|Y_S − X_S| / X_S`.
    pub median_relative: f64,
    /// Mean relative error (extra diagnostic, not in the paper's plots).
    pub mean_relative: f64,
    /// 90th percentile of the relative error (extra diagnostic).
    pub p90_relative: f64,
}

impl ErrorSummary {
    /// Builds a summary from per-run `(absolute, relative)` errors, skipping
    /// runs whose relative error is undefined.
    pub fn from_runs(absolute: &[f64], relative: &[f64]) -> ErrorSummary {
        ErrorSummary {
            runs: absolute.len(),
            median_absolute: median(absolute).unwrap_or(f64::NAN),
            median_relative: median(relative).unwrap_or(f64::NAN),
            mean_relative: mean(relative).unwrap_or(f64::NAN),
            p90_relative: quantile(relative, 0.9).unwrap_or(f64::NAN),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_and_relative_errors() {
        assert_eq!(absolute_error(12.0, 10.0), 2.0);
        assert_eq!(absolute_error(8.0, 10.0), 2.0);
        assert_eq!(relative_error(12.0, 10.0), Some(0.2));
        assert_eq!(relative_error(8.0, 10.0), Some(0.2));
        assert_eq!(relative_error(5.0, 0.0), None);
        assert_eq!(relative_error(0.0, 10.0), Some(1.0));
    }

    #[test]
    fn median_odd_even_and_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[f64::NAN]), None);
        assert_eq!(median(&[1.0, f64::NAN, 3.0]), Some(2.0));
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(5.0));
        assert_eq!(quantile(&v, 0.9), Some(9.0));
        assert_eq!(quantile(&v, 1.0), Some(10.0));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&v, 1.5), None);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn summary_aggregates_runs() {
        let abs = [1.0, 3.0, 2.0];
        let rel = [0.1, 0.3, 0.2];
        let s = ErrorSummary::from_runs(&abs, &rel);
        assert_eq!(s.runs, 3);
        assert_eq!(s.median_absolute, 2.0);
        assert_eq!(s.median_relative, 0.2);
        assert!((s.mean_relative - 0.2).abs() < 1e-12);
        assert_eq!(s.p90_relative, 0.3);
    }

    #[test]
    fn summary_with_no_runs_is_nan() {
        let s = ErrorSummary::from_runs(&[], &[]);
        assert_eq!(s.runs, 0);
        assert!(s.median_absolute.is_nan());
        assert!(s.median_relative.is_nan());
    }
}
