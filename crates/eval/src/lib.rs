//! # mdrr-eval
//!
//! Evaluation harness for the MDRR library:
//!
//! * [`queries`] — the coverage-σ count-query workload of Section 6.5;
//! * [`metrics`] — absolute/relative count-query errors (Expression (16))
//!   and the median-over-runs summaries the paper reports;
//! * [`report`] — serializable series/table containers plus plain-text
//!   rendering used by the experiment binaries and EXPERIMENTS.md;
//! * [`obs`] — opt-in query-path instrumentation: [`ObservedEstimator`]
//!   wraps any estimator to count estimates served and time each query
//!   through an injected `mdrr_obs` clock, without changing any answer;
//! * [`experiments`] — one driver per table and figure of the paper
//!   (Figure 1, Figure 2, Table 1, Figure 3, Table 2), plus the Section 3.3
//!   analytic accuracy comparison and the Proposition 1 covariance
//!   attenuation check.
//!
//! ## Example
//!
//! Evaluate one method at reduced scale, exactly as the experiment binaries
//! do:
//!
//! ```
//! use mdrr_eval::{evaluate_method, ExperimentConfig, MethodSpec};
//!
//! let mut config = ExperimentConfig::quick();
//! config.records = 1_000;
//! config.runs = 4;
//! let dataset = config.adult()?;
//!
//! let summary = evaluate_method(
//!     &dataset,
//!     &MethodSpec::Independent { p: 0.7 },
//!     0.1,
//!     config.runs,
//!     config.seed,
//! )?;
//! assert!(summary.median_absolute >= 0.0);
//! # Ok::<(), mdrr_protocols::ProtocolError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod obs;
pub mod queries;
pub mod report;

pub use experiments::{
    build_clustering, evaluate_method, run_method_once, ExperimentConfig, MethodSpec,
};
pub use metrics::{absolute_error, median, quantile, relative_error, ErrorSummary};
pub use obs::{ObservedEstimator, QueryObs};
pub use queries::CountQuery;
pub use report::{render_panel, render_table, FigurePanel, Series, TableResult};
