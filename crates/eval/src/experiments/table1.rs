//! Table 1: median relative error of RR-Clusters on Adult for
//! `Tv ∈ {50, 100, 300}`, `Td ∈ {0.1, 0.2, 0.3}` and keep probability
//! `p ∈ {0.1, 0.3, 0.5, 0.7}`, at coverage σ = 0.1.
//!
//! The qualitative findings the reproduction should preserve (Section 6.5):
//!
//! * the relative error decreases as `p` grows (weaker randomization);
//! * as a rule the error increases with `Tv` (bigger clusters hurt at this
//!   data-set size);
//! * the influence of `Td` is secondary.

use super::runner::{build_clustering, evaluate_method, MethodSpec};
use super::ExperimentConfig;
use crate::report::TableResult;
use mdrr_data::Dataset;
use mdrr_protocols::ProtocolError;
use serde::{Deserialize, Serialize};

/// Coverage used by the table (σ = 0.1 in the paper).
pub const TABLE1_SIGMA: f64 = 0.1;

/// Default parameter grid of the table.
pub fn default_grid() -> Grid {
    Grid {
        keep_probabilities: vec![0.1, 0.3, 0.5, 0.7],
        min_dependences: vec![0.1, 0.2, 0.3],
        max_combinations: vec![50, 100, 300],
    }
}

/// The parameter grid of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    /// Keep probabilities `p`.
    pub keep_probabilities: Vec<f64>,
    /// Dependence thresholds `Td`.
    pub min_dependences: Vec<f64>,
    /// Combination thresholds `Tv`.
    pub max_combinations: Vec<usize>,
}

/// One cell of the table with its full parameterisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Keep probability `p`.
    pub p: f64,
    /// Dependence threshold `Td`.
    pub td: f64,
    /// Combination threshold `Tv`.
    pub tv: usize,
    /// Number of clusters Algorithm 1 produced.
    pub clusters: usize,
    /// Median relative error at σ = 0.1.
    pub median_relative_error: f64,
}

/// Result of the Table 1 (or Table 2) reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableExperimentResult {
    /// All evaluated cells.
    pub cells: Vec<Cell>,
    /// The rendered table (rows = `p, Td`, columns = `Tv`), matching the
    /// layout of the paper's Tables 1 and 2.
    pub table: TableResult,
    /// For every `p`, the `(Tv, Td)` pair with the lowest error — the
    /// parameterisation Figure 3 reuses.
    pub best_per_p: Vec<(f64, usize, f64)>,
}

/// Reproduces Table 1 on the synthetic Adult data set.
///
/// # Errors
/// Propagates protocol errors.
pub fn run(config: &ExperimentConfig) -> Result<TableExperimentResult, ProtocolError> {
    let dataset = config.adult()?;
    run_on_dataset(
        config,
        &dataset,
        "Table 1 — median relative error of RR-Clusters (Adult)",
    )
}

/// Shared driver for Tables 1 and 2 (Table 2 passes the Adult6 data set).
///
/// # Errors
/// Propagates protocol errors.
pub fn run_on_dataset(
    config: &ExperimentConfig,
    dataset: &Dataset,
    title: &str,
) -> Result<TableExperimentResult, ProtocolError> {
    run_grid(config, dataset, &default_grid(), title)
}

/// Fully parameterised driver.
///
/// # Errors
/// Propagates protocol errors.
pub fn run_grid(
    config: &ExperimentConfig,
    dataset: &Dataset,
    grid: &Grid,
    title: &str,
) -> Result<TableExperimentResult, ProtocolError> {
    let mut cells = Vec::new();
    let mut row_labels = Vec::new();
    let mut values = Vec::new();

    for &p in &grid.keep_probabilities {
        for &td in &grid.min_dependences {
            let mut row = Vec::with_capacity(grid.max_combinations.len());
            for &tv in &grid.max_combinations {
                // The clustering itself depends on (p, Tv, Td): the
                // dependence estimation of Section 4.1 uses the same p.
                let clustering_seed = config.seed ^ (tv as u64) << 20 ^ (td * 1_000.0) as u64;
                let clustering = build_clustering(dataset, p, tv, td, clustering_seed)?;
                let spec = MethodSpec::Clusters {
                    p,
                    clustering: clustering.clone(),
                };
                let eval_seed = config
                    .seed
                    .wrapping_add((p * 1_000.0) as u64)
                    .wrapping_mul(31)
                    .wrapping_add(tv as u64)
                    .wrapping_add((td * 100.0) as u64);
                let summary =
                    evaluate_method(dataset, &spec, TABLE1_SIGMA, config.runs, eval_seed)?;
                row.push(summary.median_relative);
                cells.push(Cell {
                    p,
                    td,
                    tv,
                    clusters: clustering.len(),
                    median_relative_error: summary.median_relative,
                });
            }
            row_labels.push(format!("p={p:.1} Td={td:.1}"));
            values.push(row);
        }
    }

    let table = TableResult {
        title: title.to_string(),
        row_header: "p / Td".to_string(),
        row_labels,
        col_labels: grid
            .max_combinations
            .iter()
            .map(|tv| format!("Tv={tv}"))
            .collect(),
        values,
    };

    // Best (Tv, Td) per p.
    let mut best_per_p = Vec::new();
    for &p in &grid.keep_probabilities {
        let best = cells
            .iter()
            .filter(|c| (c.p - p).abs() < 1e-12 && c.median_relative_error.is_finite())
            .min_by(|a, b| {
                a.median_relative_error
                    .partial_cmp(&b.median_relative_error)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        if let Some(best) = best {
            best_per_p.push((p, best.tv, best.td));
        }
    }

    Ok(TableExperimentResult {
        cells,
        table,
        best_per_p,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_preserves_the_papers_qualitative_findings() {
        // Reduced grid: the two extreme p values, one Td, two Tv values.
        let config = ExperimentConfig {
            records: 8_000,
            runs: 10,
            seed: 3,
            alpha: 0.05,
        };
        let dataset = config.adult().unwrap();
        let grid = Grid {
            keep_probabilities: vec![0.1, 0.7],
            min_dependences: vec![0.1],
            max_combinations: vec![50, 300],
        };
        let result = run_grid(&config, &dataset, &grid, "Table 1 (quick)").unwrap();
        assert_eq!(result.cells.len(), 4);
        assert_eq!(result.table.values.len(), 2);
        assert_eq!(result.table.values[0].len(), 2);
        assert_eq!(result.best_per_p.len(), 2);

        // Errors decrease as p grows (weaker randomization): compare the
        // Tv = 50 column across the extreme p rows.
        let err_p01 = result.table.values[0][0];
        let err_p07 = result.table.values[1][0];
        assert!(
            err_p07 < err_p01,
            "p = 0.7 error {err_p07} should be below p = 0.1 error {err_p01}"
        );

        // Every evaluated clustering is a partition of the 8 attributes.
        for cell in &result.cells {
            assert!(cell.clusters >= 1 && cell.clusters <= 8);
            assert!(cell.median_relative_error.is_finite());
            assert!(cell.median_relative_error >= 0.0);
        }
    }
}
