//! Figure 1: the error-bound factor `√B` as a function of the number of
//! categories `r`.
//!
//! The paper plots `√B` — the square root of the `α/r` upper percentile of
//! the χ²₁ distribution — for `α = 0.05` and `r` up to 100 000, showing
//! that it grows from ≈ 2.2 at `r = 2` to ≈ 4.7 at `r = 100 000` (the
//! "limited but real" direct impact of the number of categories on the
//! absolute error of Expression (5)).

use super::ExperimentConfig;
use crate::report::Series;
use mdrr_core::sqrt_b;
use mdrr_protocols::ProtocolError;
use serde::{Deserialize, Serialize};

/// Result of the Figure 1 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Confidence level α used (the paper uses 0.05).
    pub alpha: f64,
    /// `√B` as a function of `r`.
    pub series: Series,
}

/// Default grid of category counts: dense at the start, then log-spaced up
/// to 100 000 like the paper's x-axis.
pub fn default_grid() -> Vec<usize> {
    let mut grid = vec![
        2usize, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000,
    ];
    let mut r = 20_000usize;
    while r <= 100_000 {
        grid.push(r);
        r += 20_000;
    }
    grid
}

/// Reproduces Figure 1.
///
/// # Errors
/// Propagates invalid-α errors from the χ² quantile.
pub fn run(config: &ExperimentConfig) -> Result<Fig1Result, ProtocolError> {
    run_on_grid(config.alpha, &default_grid())
}

/// Reproduces Figure 1 on an explicit grid of category counts.
///
/// # Errors
/// Propagates invalid-parameter errors.
pub fn run_on_grid(alpha: f64, grid: &[usize]) -> Result<Fig1Result, ProtocolError> {
    let mut x = Vec::with_capacity(grid.len());
    let mut y = Vec::with_capacity(grid.len());
    for &r in grid {
        x.push(r as f64);
        y.push(sqrt_b(alpha, r).map_err(ProtocolError::from)?);
    }
    Ok(Fig1Result {
        alpha,
        series: Series::new("sqrt(B)", x, y),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_range_and_monotonicity() {
        let result = run(&ExperimentConfig::quick()).unwrap();
        let y = &result.series.y;
        assert_eq!(result.alpha, 0.05);
        // Starts slightly above 2 and ends below ~5, monotonically increasing.
        assert!(y.first().unwrap() > &2.0 && y.first().unwrap() < &2.5);
        assert!(y.last().unwrap() > &4.4 && y.last().unwrap() < &5.1);
        for w in y.windows(2) {
            assert!(w[1] > w[0]);
        }
        // The grid reaches the paper's 100 000 categories.
        assert_eq!(*result.series.x.last().unwrap(), 100_000.0);
    }

    #[test]
    fn custom_grid_and_invalid_alpha() {
        let result = run_on_grid(0.01, &[10, 100]).unwrap();
        assert_eq!(result.series.x, vec![10.0, 100.0]);
        assert!(result.series.y[1] > result.series.y[0]);
        assert!(run_on_grid(0.0, &[10]).is_err());
        assert!(run_on_grid(0.05, &[0]).is_err());
    }
}
