//! Figure 2: absolute and relative count-query error of the raw randomized
//! data ("Randomized") versus RR-Independent, as a function of the coverage
//! σ, at keep probability p = 0.7.
//!
//! The paper's observations, which the reproduction should preserve:
//!
//! * applying the Equation (2) estimator (RR-Independent) dramatically
//!   reduces both errors compared to counting on the raw randomized data;
//! * the absolute error of Randomized peaks around σ = 0.5 and is
//!   symmetric-ish in σ;
//! * the relative error decreases as σ grows (the true count in the
//!   denominator grows).

use super::runner::{evaluate_method, MethodSpec};
use super::ExperimentConfig;
use crate::report::{FigurePanel, Series};
use mdrr_protocols::ProtocolError;
use serde::{Deserialize, Serialize};

/// Default coverage grid σ ∈ {0.1, …, 0.9}.
pub fn default_sigmas() -> Vec<f64> {
    (1..=9).map(|i| i as f64 / 10.0).collect()
}

/// Keep probability used by the paper for this figure.
pub const FIG2_P: f64 = 0.7;

/// Result of the Figure 2 reproduction: one panel for the absolute error
/// and one for the relative error, each with a "Randomized" and an
/// "RR-Ind" curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Keep probability used.
    pub p: f64,
    /// Absolute-error panel (left plot of Figure 2).
    pub absolute: FigurePanel,
    /// Relative-error panel (right plot of Figure 2).
    pub relative: FigurePanel,
}

/// Reproduces Figure 2 at the paper's p = 0.7.
///
/// # Errors
/// Propagates protocol errors.
pub fn run(config: &ExperimentConfig) -> Result<Fig2Result, ProtocolError> {
    run_with(config, FIG2_P, &default_sigmas())
}

/// Reproduces Figure 2 for an arbitrary keep probability and coverage grid.
///
/// # Errors
/// Propagates protocol errors.
pub fn run_with(
    config: &ExperimentConfig,
    p: f64,
    sigmas: &[f64],
) -> Result<Fig2Result, ProtocolError> {
    let dataset = config.adult()?;
    let methods = [MethodSpec::Randomized { p }, MethodSpec::Independent { p }];

    let mut absolute_series = Vec::with_capacity(methods.len());
    let mut relative_series = Vec::with_capacity(methods.len());
    for (index, spec) in methods.iter().enumerate() {
        let mut abs = Vec::with_capacity(sigmas.len());
        let mut rel = Vec::with_capacity(sigmas.len());
        for (s, &sigma) in sigmas.iter().enumerate() {
            let seed = config
                .seed
                .wrapping_add((index * sigmas.len() + s) as u64 * 7_919);
            let summary = evaluate_method(&dataset, spec, sigma, config.runs, seed)?;
            abs.push(summary.median_absolute);
            rel.push(summary.median_relative);
        }
        absolute_series.push(Series::new(spec.label(), sigmas.to_vec(), abs));
        relative_series.push(Series::new(spec.label(), sigmas.to_vec(), rel));
    }

    Ok(Fig2Result {
        p,
        absolute: FigurePanel {
            title: format!("Figure 2 (left): absolute error, p = {p}"),
            x_label: "sigma".to_string(),
            y_label: "absolute error".to_string(),
            series: absolute_series,
        },
        relative: FigurePanel {
            title: format!("Figure 2 (right): relative error, p = {p}"),
            x_label: "sigma".to_string(),
            y_label: "relative error".to_string(),
            series: relative_series,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_preserves_the_papers_qualitative_shape() {
        let config = ExperimentConfig {
            records: 8_000,
            runs: 10,
            seed: 1,
            alpha: 0.05,
        };
        let result = run_with(&config, FIG2_P, &[0.1, 0.5, 0.9]).unwrap();

        // Two curves per panel, labelled as in the paper.
        assert_eq!(result.absolute.series.len(), 2);
        assert_eq!(result.relative.series.len(), 2);
        let labels: Vec<&str> = result
            .relative
            .series
            .iter()
            .map(|s| s.label.as_str())
            .collect();
        assert!(labels.contains(&"Randomized"));
        assert!(labels.contains(&"RR-Ind"));

        let randomized_rel = &result.relative.series[0];
        let rr_ind_rel = &result.relative.series[1];
        // Equation (2) reduces the relative error at every coverage.
        for (a, b) in rr_ind_rel.y.iter().zip(randomized_rel.y.iter()) {
            assert!(a < b, "RR-Ind {a} should be below Randomized {b}");
        }
        // Relative error of Randomized decreases as sigma grows (the
        // denominator X_S grows with the coverage).
        assert!(randomized_rel.y[0] > randomized_rel.y[2]);

        // Both absolute-error curves stay finite and non-negative; the tent
        // shape of the Randomized absolute error (peak at sigma = 0.5) is
        // asserted by the paper-scale integration test, where the medians
        // are stable enough to order neighbouring coverages.
        for series in &result.absolute.series {
            assert!(series.y.iter().all(|&v| v.is_finite() && v >= 0.0));
        }
    }
}
