//! Table 2: the same grid as Table 1, evaluated on Adult6 — the Adult data
//! set concatenated six times — to study the effect of the data-set size.
//!
//! The paper's observations (Section 6.5):
//!
//! * the relative error decreases for every parameterisation compared to
//!   Table 1;
//! * the reduction is most visible for the larger `Tv` budgets (and for the
//!   stronger randomizations at small `Tv`), because a larger data set can
//!   support more category combinations per cluster;
//! * the effect of `Td` does not change much with the data-set size.

use super::table1::{run_grid, Grid, TableExperimentResult};
use super::ExperimentConfig;
use mdrr_protocols::ProtocolError;

/// Number of copies of Adult concatenated to form Adult6.
pub const ADULT6_REPETITIONS: usize = 6;

/// Reproduces Table 2 on Adult6 (the synthetic Adult repeated six times).
///
/// # Errors
/// Propagates protocol errors.
pub fn run(config: &ExperimentConfig) -> Result<TableExperimentResult, ProtocolError> {
    run_with_repetitions(config, ADULT6_REPETITIONS, &super::table1::default_grid())
}

/// Fully parameterised driver: concatenates the synthetic Adult
/// `repetitions` times and evaluates the given grid on it.
///
/// # Errors
/// Propagates protocol errors.
pub fn run_with_repetitions(
    config: &ExperimentConfig,
    repetitions: usize,
    grid: &Grid,
) -> Result<TableExperimentResult, ProtocolError> {
    let adult = config.adult()?;
    let repeated = adult
        .repeat(repetitions.max(1))
        .map_err(ProtocolError::from)?;
    let title = format!(
        "Table 2 — median relative error of RR-Clusters (Adult{})",
        repetitions.max(1)
    );
    run_grid(config, &repeated, grid, &title)
}

#[cfg(test)]
mod tests {
    use super::super::runner::{build_clustering, evaluate_method, MethodSpec};
    use super::super::table1::TABLE1_SIGMA;
    use super::*;

    #[test]
    fn larger_dataset_reduces_the_error_for_a_fixed_clustering() {
        // The headline finding of Table 2 is that a larger data set supports
        // a given cluster structure better.  At reduced scale the clustering
        // produced by the privacy-preserving dependence estimation is itself
        // noisy, so this test isolates the size effect: it fixes one
        // clustering and evaluates the same RR-Clusters protocol on Adult
        // and on Adult4.
        let config = ExperimentConfig {
            records: 6_000,
            runs: 12,
            seed: 9,
            alpha: 0.05,
        };
        let adult = config.adult().unwrap();
        let adult4 = adult.repeat(4).unwrap();
        // One clustering, built once (on the larger data set, where the
        // dependence estimates are the most reliable).
        let clustering = build_clustering(&adult4, 0.5, 300, 0.1, 7).unwrap();
        let spec = MethodSpec::Clusters { p: 0.5, clustering };
        let small = evaluate_method(&adult, &spec, TABLE1_SIGMA, config.runs, 21).unwrap();
        let large = evaluate_method(&adult4, &spec, TABLE1_SIGMA, config.runs, 21).unwrap();
        assert!(
            large.median_relative < small.median_relative,
            "Adult4 error {} should be below Adult error {}",
            large.median_relative,
            small.median_relative
        );
    }

    #[test]
    fn table2_title_mentions_the_repetition_count() {
        let config = ExperimentConfig {
            records: 1_500,
            runs: 4,
            seed: 9,
            alpha: 0.05,
        };
        let grid = Grid {
            keep_probabilities: vec![0.7],
            min_dependences: vec![0.3],
            max_combinations: vec![50],
        };
        let result = run_with_repetitions(&config, 2, &grid).unwrap();
        assert!(result.table.title.contains("Adult2"));
        assert_eq!(result.cells.len(), 1);
    }
}
