//! Figure 3: median relative error of the four evaluated methods
//! (RR-Independent, RR-Independent + Adjustment, RR-Clusters,
//! RR-Clusters + Adjustment) as a function of the coverage σ, one panel per
//! keep probability p ∈ {0.1, 0.3, 0.5, 0.7}.
//!
//! The paper's qualitative findings (Section 6.5), which the reproduction
//! should preserve:
//!
//! * for small p (strong randomization) RR-Independent is the best —
//!   clustering and adjustment cannot exploit dependences that the
//!   randomization has destroyed;
//! * for large p and large coverage all methods are similar and accurate;
//! * for large p and small coverage RR-Clusters clearly beats
//!   RR-Independent, and RR-Adjustment further helps both pipelines.

use super::runner::{build_clustering, evaluate_method, MethodSpec};
use super::ExperimentConfig;
use crate::report::{FigurePanel, Series};
use mdrr_protocols::{AdjustmentConfig, ProtocolError};
use serde::{Deserialize, Serialize};

/// Default coverage grid σ ∈ {0.1, …, 0.9}.
pub fn default_sigmas() -> Vec<f64> {
    (1..=9).map(|i| i as f64 / 10.0).collect()
}

/// Per-panel parameterisation: keep probability plus the `(Tv, Td)` pair
/// used for the cluster-based methods (the paper takes the best cell of
/// Table 1 for each p; these defaults are the pairs reported in the
/// paper's Figure 3 legends).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PanelSpec {
    /// Keep probability p.
    pub p: f64,
    /// Maximum category combinations per cluster (Tv).
    pub tv: usize,
    /// Minimum dependence to merge clusters (Td).
    pub td: f64,
}

/// The paper's panel parameterisations: (p, Tv, Td) = (0.1, 50, 0.3),
/// (0.3, 50, 0.3), (0.5, 50, 0.1), (0.7, 50, 0.1).
pub fn default_panels() -> Vec<PanelSpec> {
    vec![
        PanelSpec {
            p: 0.1,
            tv: 50,
            td: 0.3,
        },
        PanelSpec {
            p: 0.3,
            tv: 50,
            td: 0.3,
        },
        PanelSpec {
            p: 0.5,
            tv: 50,
            td: 0.1,
        },
        PanelSpec {
            p: 0.7,
            tv: 50,
            td: 0.1,
        },
    ]
}

/// Result of the Figure 3 reproduction: one panel per keep probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// The panel parameterisations that were used.
    pub panels_spec: Vec<PanelSpec>,
    /// The rendered panels (same order).
    pub panels: Vec<FigurePanel>,
}

/// Reproduces Figure 3 with the paper's default panels and coverages.
///
/// # Errors
/// Propagates protocol errors.
pub fn run(config: &ExperimentConfig) -> Result<Fig3Result, ProtocolError> {
    run_with(config, &default_panels(), &default_sigmas())
}

/// Fully parameterised driver.
///
/// # Errors
/// Propagates protocol errors.
pub fn run_with(
    config: &ExperimentConfig,
    panels_spec: &[PanelSpec],
    sigmas: &[f64],
) -> Result<Fig3Result, ProtocolError> {
    let dataset = config.adult()?;
    let adjustment = AdjustmentConfig::default();
    let mut panels = Vec::with_capacity(panels_spec.len());

    for (panel_index, panel) in panels_spec.iter().enumerate() {
        let clustering_seed = config.seed ^ ((panel_index as u64 + 1) << 32);
        let clustering = build_clustering(&dataset, panel.p, panel.tv, panel.td, clustering_seed)?;
        let methods = [
            MethodSpec::Independent { p: panel.p },
            MethodSpec::IndependentAdjusted {
                p: panel.p,
                adjustment,
            },
            MethodSpec::Clusters {
                p: panel.p,
                clustering: clustering.clone(),
            },
            MethodSpec::ClustersAdjusted {
                p: panel.p,
                clustering,
                adjustment,
            },
        ];

        let mut series = Vec::with_capacity(methods.len());
        for (method_index, spec) in methods.iter().enumerate() {
            let mut y = Vec::with_capacity(sigmas.len());
            for (sigma_index, &sigma) in sigmas.iter().enumerate() {
                let seed = config
                    .seed
                    .wrapping_add((panel_index as u64) << 24)
                    .wrapping_add((method_index as u64) << 16)
                    .wrapping_add(sigma_index as u64 * 101);
                let summary = evaluate_method(&dataset, spec, sigma, config.runs, seed)?;
                y.push(summary.median_relative);
            }
            let label = match spec {
                MethodSpec::Clusters { .. } => format!("RR-Cluster {} {}", panel.tv, panel.td),
                MethodSpec::ClustersAdjusted { .. } => {
                    format!("RR-Cluster {} {} + RR_Adj", panel.tv, panel.td)
                }
                other => other.label(),
            };
            series.push(Series::new(label, sigmas.to_vec(), y));
        }
        panels.push(FigurePanel {
            title: format!("Figure 3: relative error, p = {}", panel.p),
            x_label: "sigma".to_string(),
            y_label: "relative error".to_string(),
            series,
        });
    }

    Ok(Fig3Result {
        panels_spec: panels_spec.to_vec(),
        panels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_well_formed_panels() {
        // Structural smoke test at reduced scale; the qualitative orderings
        // of Figure 3 (clusters/adjustment beating plain independence at
        // high p and small coverage) are asserted at paper scale by the
        // `paper_scale` integration tests and reported in EXPERIMENTS.md,
        // because they need the full data-set size and many runs to rise
        // above the run-to-run noise.
        let config = ExperimentConfig {
            records: 4_000,
            runs: 6,
            seed: 5,
            alpha: 0.05,
        };
        let panels = vec![PanelSpec {
            p: 0.7,
            tv: 50,
            td: 0.1,
        }];
        let result = run_with(&config, &panels, &[0.1, 0.5]).unwrap();
        assert_eq!(result.panels.len(), 1);
        let panel = &result.panels[0];
        assert_eq!(panel.series.len(), 4);

        let labels: Vec<&str> = panel.series.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"RR-Ind"));
        assert!(labels.contains(&"RR-Ind + RR-Adj"));
        assert!(labels.iter().any(|l| l.starts_with("RR-Cluster 50")));
        assert!(labels.iter().any(|l| l.ends_with("+ RR_Adj")));

        for series in &panel.series {
            assert_eq!(series.x, vec![0.1, 0.5]);
            for &y in &series.y {
                assert!(y.is_finite() && y >= 0.0);
            }
            // At large coverage every method has a small relative error
            // (the flat right-hand side of every panel in the paper).
            assert!(
                series.y[1] < 0.2,
                "series {} has error {} at sigma 0.5",
                series.label,
                series.y[1]
            );
        }
    }
}
