//! Section 3.3 analytic accuracy comparison: best-case relative error of
//! RR-Independent versus RR-Joint as the number of attributes grows.
//!
//! For the Adult cardinalities and the Adult record count, the analysis
//! shows why RR-Joint over all attributes is hopeless: the relative error
//! of the joint estimate grows with the square root of the joint-domain
//! size (exponential in the number of attributes), while RR-Independent's
//! per-attribute error stays bounded by the largest single attribute.

use super::ExperimentConfig;
use crate::report::{FigurePanel, Series, TableResult};
use mdrr_core::{rr_independent_relative_error, rr_joint_relative_error};
use mdrr_data::adult_schema;
use mdrr_protocols::ProtocolError;
use serde::{Deserialize, Serialize};

/// Result of the Section 3.3 analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyAnalysisResult {
    /// Data-set size used (`n`).
    pub records: usize,
    /// Confidence level α.
    pub alpha: f64,
    /// The per-prefix bounds as a table (rows = number of attributes).
    pub table: TableResult,
    /// The same data as two curves (for plotting).
    pub panel: FigurePanel,
}

/// Runs the analysis over the prefixes of the Adult schema (1 attribute,
/// first 2 attributes, …, all 8 attributes) at the configured data-set
/// size.
///
/// # Errors
/// Propagates invalid-parameter errors from the bounds.
pub fn run(config: &ExperimentConfig) -> Result<AccuracyAnalysisResult, ProtocolError> {
    let cardinalities = adult_schema().cardinalities();
    run_with(config.records, config.alpha, &cardinalities)
}

/// Fully parameterised driver over arbitrary attribute cardinalities.
///
/// # Errors
/// Propagates invalid-parameter errors from the bounds.
pub fn run_with(
    records: usize,
    alpha: f64,
    cardinalities: &[usize],
) -> Result<AccuracyAnalysisResult, ProtocolError> {
    if cardinalities.is_empty() {
        return Err(ProtocolError::config(
            "at least one attribute cardinality is required",
        ));
    }
    let mut row_labels = Vec::new();
    let mut values = Vec::new();
    let mut x = Vec::new();
    let mut independent_curve = Vec::new();
    let mut joint_curve = Vec::new();

    for m in 1..=cardinalities.len() {
        let prefix = &cardinalities[..m];
        let independent = rr_independent_relative_error(prefix, records, alpha)?;
        let joint = rr_joint_relative_error(prefix, records, alpha)?;
        let domain: usize = prefix.iter().product();
        row_labels.push(format!("m={m} (domain {domain})"));
        values.push(vec![independent, joint]);
        x.push(m as f64);
        independent_curve.push(independent);
        joint_curve.push(joint);
    }

    let table = TableResult {
        title: format!(
            "Section 3.3 — best-case relative error bounds (n = {records}, alpha = {alpha})"
        ),
        row_header: "attributes".to_string(),
        row_labels,
        col_labels: vec!["RR-Independent".to_string(), "RR-Joint".to_string()],
        values,
    };
    let panel = FigurePanel {
        title: "Best-case relative error vs number of attributes".to_string(),
        x_label: "attributes".to_string(),
        y_label: "relative error bound".to_string(),
        series: vec![
            Series::new("RR-Independent", x.clone(), independent_curve),
            Series::new("RR-Joint", x, joint_curve),
        ],
    };
    Ok(AccuracyAnalysisResult {
        records,
        alpha,
        table,
        panel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_error_explodes_while_independent_stays_flat() {
        let result = run(&ExperimentConfig::standard()).unwrap();
        let independent = &result.panel.series[0].y;
        let joint = &result.panel.series[1].y;
        assert_eq!(independent.len(), 8);

        // With a single attribute the two protocols coincide.
        assert!((independent[0] - joint[0]).abs() < 1e-12);
        // RR-Joint's bound grows monotonically and ends far above 100 %.
        for w in joint.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(*joint.last().unwrap() > 2.0);
        // RR-Independent's bound stays below 20 % for the Adult cardinalities.
        assert!(independent.iter().all(|&e| e < 0.2));
        // The paper's conclusion: the gap is at least an order of magnitude.
        assert!(joint.last().unwrap() / independent.last().unwrap() > 10.0);
    }

    #[test]
    fn custom_cardinalities_and_validation() {
        let result = run_with(10_000, 0.05, &[4, 4, 4]).unwrap();
        assert_eq!(result.table.values.len(), 3);
        assert!(run_with(0, 0.05, &[4]).is_err());
        assert!(run_with(100, 0.05, &[]).is_err());
    }
}
