//! Streamed-vs-batch equivalence experiment.
//!
//! The streaming subsystem (`mdrr-stream`) claims that sharded ingestion
//! over per-channel count vectors loses nothing: a mid-stream snapshot is
//! numerically identical to the batch release computed from the same
//! randomized codes.  This experiment demonstrates that end to end on the
//! synthetic Adult data set for all three protocols: every record chunk
//! is batch-encoded once (client side, through the columnar
//! `ReportBatch` pipeline), the report batches are routed to a sharded
//! collector *and* decoded into the pooled randomized data set (the batch
//! collector's input), and the two estimates are compared over the full
//! single- and pair-marginal query workload.  The expected deviation is
//! exactly zero up to floating-point noise (≪ 1e-12); any larger value
//! indicates the sufficient-statistics argument of DESIGN.md §6 has been
//! broken.

use super::ExperimentConfig;
use crate::obs::{ObservedEstimator, QueryObs};
use mdrr_obs::{Clock, MonotonicClock, Registry};
use mdrr_protocols::{
    Clustering, FrequencyEstimator, Protocol, ProtocolError, ProtocolSpec, RandomizationLevel,
};
use mdrr_stream::{ReportBatch, ShardedCollector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Number of shards the experiment streams through.
pub const STREAM_SHARDS: usize = 4;

/// Batch size of the columnar chunk views feeding the batched encoders.
pub const ENCODE_CHUNK: usize = 1_024;

/// Keep probability used for all three protocols.
pub const STREAM_KEEP_PROBABILITY: f64 = 0.7;

/// Attributes the RR-Joint variant is restricted to (the full Adult joint
/// domain exceeds the protocol's cap; three attributes keep it at
/// 9 × 16 × 7 = 1008 cells, comfortably estimable).
pub const JOINT_ATTRIBUTES: [usize; 3] = [0, 1, 2];

/// Equivalence measurements for one protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolEquivalence {
    /// Protocol name (`RR-Independent`, `RR-Joint`, `RR-Clusters`).
    pub protocol: String,
    /// Number of reports streamed.
    pub reports: usize,
    /// Number of shards the reports were routed across.
    pub shards: usize,
    /// Number of queries in the comparison workload.
    pub queries: usize,
    /// Maximum absolute deviation between the streamed snapshot and the
    /// batch release over the workload (expected ≪ 1e-12).
    pub max_abs_deviation: f64,
    /// Ingestion throughput of the streaming path, in reports per second
    /// (wall clock, encoding included).
    pub reports_per_sec: f64,
    /// Queries answered by the streamed snapshot, as counted by the
    /// query-path instrumentation (must equal `queries`; a mismatch means
    /// the observability wrapper dropped or double-counted calls).
    pub estimates_served: u64,
}

/// Result of the streamed-vs-batch equivalence experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamEquivalenceResult {
    /// One entry per protocol.
    pub per_protocol: Vec<ProtocolEquivalence>,
    /// The largest deviation across all protocols (the headline number).
    pub worst_abs_deviation: f64,
}

/// Runs the experiment on the synthetic Adult data set.
///
/// # Errors
/// Propagates protocol and streaming errors.
pub fn run(config: &ExperimentConfig) -> Result<StreamEquivalenceResult, ProtocolError> {
    let dataset = config.adult()?;
    let schema = dataset.schema().clone();
    let m = schema.len();
    let clustering = Clustering::new((0..m / 2).map(|k| vec![2 * k, 2 * k + 1]).collect(), m)
        .map_err(|e| ProtocolError::config(format!("pairing clustering failed: {e}")))?;

    let joint_dataset = dataset.project(&JOINT_ATTRIBUTES)?;
    let level = RandomizationLevel::KeepProbability(STREAM_KEEP_PROBABILITY);
    // Protocols are selected by declarative specs and built as trait
    // objects; adding a variant is one more spec, not a new code path.
    let variants: Vec<(ProtocolSpec, &mdrr_data::Dataset, &mdrr_data::Schema)> = vec![
        (ProtocolSpec::independent(level.clone()), &dataset, &schema),
        (
            ProtocolSpec::Joint {
                level: level.clone(),
                max_domain: None,
                equivalent_risk: false,
            },
            &joint_dataset,
            joint_dataset.schema(),
        ),
        (
            ProtocolSpec::Clusters {
                level,
                clustering,
                equivalent_risk: false,
            },
            &dataset,
            &schema,
        ),
    ];

    let mut per_protocol = Vec::with_capacity(variants.len());
    let mut worst = 0.0f64;
    for (spec, data, protocol_schema) in variants {
        let protocol = spec.build_arc(protocol_schema)?;
        let entry = run_protocol(&protocol, data, config.seed)?;
        worst = worst.max(entry.max_abs_deviation);
        per_protocol.push(entry);
    }
    Ok(StreamEquivalenceResult {
        per_protocol,
        worst_abs_deviation: worst,
    })
}

fn run_protocol(
    protocol: &Arc<dyn Protocol>,
    dataset: &mdrr_data::Dataset,
    seed: u64,
) -> Result<ProtocolEquivalence, ProtocolError> {
    // Client side: every record chunk randomizes into one columnar
    // [`ReportBatch`] through the batched encoder, once.  The records are
    // drawn through the zero-copy columnar chunk views — the arrival
    // pattern of a real deployment, where clients report in batches
    // rather than as one materialized table.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batches: Vec<ReportBatch> = Vec::new();
    for chunk in dataset.column_chunks(ENCODE_CHUNK)? {
        let mut batch = ReportBatch::for_protocol(&**protocol);
        batch.encode_records(&**protocol, &chunk, &mut rng)?;
        batches.push(batch);
    }
    let n_reports: usize = batches.iter().map(ReportBatch::n_reports).sum();

    // Streaming path: route the pre-encoded report batches across the
    // shards (bulk counting, no per-report work).  All wall-clock reads go
    // through the injected monotonic clock — the one ambient clock of the
    // workspace lives in `mdrr_obs`, never here.
    let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
    let start = clock.now_nanos();
    let mut collector = ShardedCollector::new(Arc::clone(protocol), STREAM_SHARDS)?;
    for (i, batch) in batches.iter().enumerate() {
        collector.ingest_batch(i % STREAM_SHARDS, batch)?;
    }
    let snapshot = collector.snapshot()?;
    let elapsed = clock.now_nanos().saturating_sub(start) as f64 / 1e9;

    // Batch path: the same reports decoded into the pooled randomized
    // data set and estimated through the batch constructor.
    let mut randomized = mdrr_data::Dataset::empty(protocol.schema().clone());
    let mut codes = Vec::new();
    for batch in &batches {
        for i in 0..batch.n_reports() {
            batch.read_report(i, &mut codes)?;
            let record = protocol.decode_report(&codes)?;
            randomized
                .push_record(&record)
                .map_err(ProtocolError::from)?;
        }
    }
    let batch = protocol.release_from_randomized(randomized)?;

    // Compare over every single- and pair-marginal assignment.  The
    // streamed side is queried through the observed estimator, so the
    // query-path instrumentation counts exactly one estimate per query.
    let registry = Registry::new();
    let query_obs = QueryObs::new(Arc::clone(&clock), &registry);
    let snapshot = ObservedEstimator::new(snapshot, query_obs.clone());
    let cards = protocol.schema().cardinalities();
    let mut max_abs_deviation = 0.0f64;
    let mut queries = 0usize;
    for (a, &ca) in cards.iter().enumerate() {
        for va in 0..ca as u32 {
            let mut compare = |query: &[(usize, u32)]| -> Result<(), ProtocolError> {
                let streamed = snapshot.frequency(query)?;
                let batched = batch.frequency(query)?;
                max_abs_deviation = max_abs_deviation.max((streamed - batched).abs());
                queries += 1;
                Ok(())
            };
            compare(&[(a, va)])?;
            for (b, &cb) in cards.iter().enumerate().skip(a + 1) {
                for vb in 0..cb as u32 {
                    compare(&[(a, va), (b, vb)])?;
                }
            }
        }
    }

    Ok(ProtocolEquivalence {
        protocol: protocol.name(),
        reports: n_reports,
        shards: STREAM_SHARDS,
        queries,
        max_abs_deviation,
        reports_per_sec: if elapsed > 0.0 {
            n_reports as f64 / elapsed
        } else {
            f64::INFINITY
        },
        estimates_served: query_obs.estimates_served(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_and_batch_estimates_coincide_on_adult() {
        let config = ExperimentConfig {
            records: 2_000,
            runs: 1,
            seed: 11,
            alpha: 0.05,
        };
        let result = run(&config).unwrap();
        assert_eq!(result.per_protocol.len(), 3);
        for entry in &result.per_protocol {
            assert_eq!(entry.reports, 2_000);
            assert_eq!(entry.shards, STREAM_SHARDS);
            assert!(entry.queries > 0);
            assert_eq!(entry.estimates_served, entry.queries as u64);
            assert!(
                entry.max_abs_deviation < 1e-12,
                "{}: deviation {}",
                entry.protocol,
                entry.max_abs_deviation
            );
        }
        assert!(result.worst_abs_deviation < 1e-12);
    }
}
