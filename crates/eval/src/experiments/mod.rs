//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation (Section 6), plus the analytic accuracy comparison of
//! Section 3.3, the covariance-attenuation check of Proposition 1 /
//! Corollary 1, and the streamed-vs-batch equivalence check of the
//! streaming subsystem ([`stream`]).
//!
//! Each driver is a pure function from an [`ExperimentConfig`] to a
//! serializable result container; the `mdrr-bench` binaries print and dump
//! these results, and the integration tests assert their qualitative shape
//! at reduced scale.

pub mod accuracy;
pub mod covariance;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod runner;
pub mod stream;
pub mod table1;
pub mod table2;

use mdrr_data::{AdultSynthesizer, Dataset, ADULT_RECORD_COUNT};
use mdrr_protocols::ProtocolError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

pub use runner::{build_clustering, evaluate_method, run_method_once, MethodSpec};

/// Global knobs shared by every experiment driver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of records of the synthetic Adult data set (the paper uses
    /// the original 32 561).
    pub records: usize,
    /// Number of randomization runs per evaluation point (the paper reports
    /// medians over 1000 runs; the default trades a little noise for a much
    /// faster harness, and the binaries accept `--runs`).
    pub runs: usize,
    /// Base seed; every run derives its own deterministic sub-seed.
    pub seed: u64,
    /// Confidence level α of the analytic error bounds (Figure 1 uses 0.05).
    pub alpha: f64,
}

impl ExperimentConfig {
    /// Paper-scale configuration (32 561 records, 100 runs per point).
    pub fn standard() -> Self {
        ExperimentConfig {
            records: ADULT_RECORD_COUNT,
            runs: 100,
            seed: 42,
            alpha: 0.05,
        }
    }

    /// Reduced-scale configuration for CI and smoke tests.
    pub fn quick() -> Self {
        ExperimentConfig {
            records: 4_000,
            runs: 8,
            seed: 42,
            alpha: 0.05,
        }
    }

    /// Generates the synthetic Adult data set this configuration describes.
    ///
    /// # Errors
    /// Returns a configuration error when `records == 0`.
    pub fn adult(&self) -> Result<Dataset, ProtocolError> {
        let synthesizer = AdultSynthesizer::new(self.records)
            .map_err(|e| ProtocolError::config(format!("invalid record count: {e}")))?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        Ok(synthesizer.generate(&mut rng))
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_have_sane_defaults() {
        let standard = ExperimentConfig::standard();
        assert_eq!(standard.records, ADULT_RECORD_COUNT);
        assert!(standard.runs > 0);
        let quick = ExperimentConfig::quick();
        assert!(quick.records < standard.records);
        assert_eq!(ExperimentConfig::default(), standard);
    }

    #[test]
    fn adult_generation_is_deterministic_per_seed() {
        let config = ExperimentConfig {
            records: 500,
            runs: 1,
            seed: 7,
            alpha: 0.05,
        };
        let a = config.adult().unwrap();
        let b = config.adult().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.n_records(), 500);
        let other = ExperimentConfig { seed: 8, ..config };
        assert_ne!(other.adult().unwrap(), a);
    }
}
