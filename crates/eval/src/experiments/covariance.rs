//! Empirical check of Proposition 1 / Corollary 1 (Section 4.1): the
//! uniform-keep randomization attenuates the covariance between two
//! attributes by the factor `p_a · p_b` but preserves the relative strength
//! (ranking) of the covariances between attribute pairs.

use super::ExperimentConfig;
use mdrr_core::{randomize_dataset_independent, RRMatrix};
use mdrr_data::Dataset;
use mdrr_math::correlation::covariance_codes;
use mdrr_protocols::{
    dependence_matrix_plain, dependence_via_randomized_attributes, ProtocolError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One attribute pair's covariance before and after randomization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairAttenuation {
    /// The two attribute indices.
    pub pair: (usize, usize),
    /// Covariance of the category codes on the true data.
    pub true_covariance: f64,
    /// Covariance of the category codes on the randomized data.
    pub randomized_covariance: f64,
    /// The empirical attenuation ratio `randomized / true` (NaN when the
    /// true covariance is ~0).
    pub empirical_ratio: f64,
}

/// Result of the covariance-attenuation experiment for one keep
/// probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CovarianceAttenuationResult {
    /// Keep probability p used for every attribute.
    pub p: f64,
    /// Theoretical attenuation factor `p²` predicted by Proposition 1.
    pub theoretical_ratio: f64,
    /// Per-pair measurements.
    pub pairs: Vec<PairAttenuation>,
    /// Fraction of attribute-pair pairs whose dependence ranking
    /// (Cramér's V / |correlation|, as used by Algorithm 1) is preserved
    /// after randomization (Corollary 1 predicts ≈ 1 for the covariance;
    /// empirically the same holds for the clustering measures).
    pub ranking_agreement: f64,
}

/// Runs the experiment at one keep probability on the synthetic Adult.
///
/// # Errors
/// Propagates protocol errors.
pub fn run(
    config: &ExperimentConfig,
    p: f64,
) -> Result<CovarianceAttenuationResult, ProtocolError> {
    let dataset = config.adult()?;
    run_on_dataset(&dataset, p, config.seed)
}

/// Fully parameterised driver.
///
/// # Errors
/// Propagates protocol errors.
pub fn run_on_dataset(
    dataset: &Dataset,
    p: f64,
    seed: u64,
) -> Result<CovarianceAttenuationResult, ProtocolError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(ProtocolError::config(format!(
            "keep probability must lie in [0, 1], got {p}"
        )));
    }
    let schema = dataset.schema();
    let m = schema.len();

    // Randomize every attribute with the Proposition 1 mechanism.
    let matrices: Vec<RRMatrix> = schema
        .attributes()
        .iter()
        .map(|a| RRMatrix::uniform_keep(p, a.cardinality()))
        .collect::<Result<_, _>>()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let randomized = randomize_dataset_independent(dataset, &matrices, &mut rng)?;

    let mut pairs = Vec::new();
    for i in 0..m {
        for j in (i + 1)..m {
            let true_cov = covariance_codes(dataset.column(i)?, dataset.column(j)?)?;
            let rand_cov = covariance_codes(randomized.column(i)?, randomized.column(j)?)?;
            let ratio = if true_cov.abs() > 1e-9 {
                rand_cov / true_cov
            } else {
                f64::NAN
            };
            pairs.push(PairAttenuation {
                pair: (i, j),
                true_covariance: true_cov,
                randomized_covariance: rand_cov,
                empirical_ratio: ratio,
            });
        }
    }

    // Ranking agreement of the clustering dependence measure before and
    // after randomization (the property Algorithm 1 actually relies on).
    let plain = dependence_matrix_plain(dataset)?;
    let mut dep_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let randomized_dep = dependence_via_randomized_attributes(dataset, p, &mut dep_rng)?;
    let ranking_agreement = plain.ranking_agreement(&randomized_dep.matrix)?;

    Ok(CovarianceAttenuationResult {
        p,
        theoretical_ratio: p * p,
        pairs,
        ranking_agreement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::AdultSynthesizer;

    #[test]
    fn attenuation_matches_proposition_1_on_strong_pairs() {
        let mut rng = StdRng::seed_from_u64(2);
        let dataset = AdultSynthesizer::new(25_000).unwrap().generate(&mut rng);
        let p = 0.7;
        let result = run_on_dataset(&dataset, p, 7).unwrap();
        assert!((result.theoretical_ratio - 0.49).abs() < 1e-12);

        // Per-pair ratios are noisy (the randomized covariance of a single
        // pair has sampling variance), but averaged over the strongly
        // covarying pairs the empirical attenuation must match the p² of
        // Proposition 1 closely.
        let strong: Vec<&PairAttenuation> = result
            .pairs
            .iter()
            .filter(|pair| pair.true_covariance.abs() > 0.3)
            .collect();
        assert!(
            strong.len() >= 2,
            "the synthetic Adult should have strongly covarying pairs"
        );
        let mean_ratio: f64 =
            strong.iter().map(|pair| pair.empirical_ratio).sum::<f64>() / strong.len() as f64;
        assert!(
            (mean_ratio - result.theoretical_ratio).abs() < 0.1,
            "mean attenuation {mean_ratio} vs theory {}",
            result.theoretical_ratio
        );
        // Every individual strong pair is attenuated (|randomized| < |true|).
        for pair in &strong {
            assert!(
                pair.randomized_covariance.abs() < pair.true_covariance.abs(),
                "pair {:?} was not attenuated: {} vs {}",
                pair.pair,
                pair.randomized_covariance,
                pair.true_covariance
            );
        }
    }

    #[test]
    fn ranking_is_mostly_preserved_at_moderate_randomization() {
        let mut rng = StdRng::seed_from_u64(3);
        let dataset = AdultSynthesizer::new(10_000).unwrap().generate(&mut rng);
        let result = run_on_dataset(&dataset, 0.8, 11).unwrap();
        assert!(
            result.ranking_agreement > 0.7,
            "ranking agreement {} too low",
            result.ranking_agreement
        );
    }

    #[test]
    fn validation() {
        let mut rng = StdRng::seed_from_u64(4);
        let dataset = AdultSynthesizer::new(200).unwrap().generate(&mut rng);
        assert!(run_on_dataset(&dataset, 1.4, 0).is_err());
    }
}
