//! Shared machinery of the empirical experiments: the evaluated methods,
//! one randomization run, and the parallel sweep over runs.

use crate::metrics::{absolute_error, relative_error, ErrorSummary};
use crate::queries::CountQuery;
use mdrr_data::Dataset;
use mdrr_protocols::{
    cluster_attributes, dependence_via_randomized_attributes, AdjustmentConfig, Clustering,
    ClusteringConfig, EmpiricalEstimator, ProtocolError, ProtocolSpec, RandomizationLevel,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One evaluated method of Section 6.2, with its parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MethodSpec {
    /// The raw randomized data set of RR-Independent, *without* applying the
    /// Equation (2) estimator ("Randomized" in Figure 2).
    Randomized {
        /// Keep probability of the per-attribute randomization.
        p: f64,
    },
    /// RR-Independent (Protocol 1) with per-attribute uniform-keep matrices.
    Independent {
        /// Keep probability of the per-attribute randomization.
        p: f64,
    },
    /// RR-Independent followed by RR-Adjustment (Algorithm 2).
    IndependentAdjusted {
        /// Keep probability of the per-attribute randomization.
        p: f64,
        /// Termination parameters of the adjustment.
        adjustment: AdjustmentConfig,
    },
    /// RR-Clusters with the given clustering, at the equivalent risk of
    /// RR-Independent with keep probability `p` (Section 6.3.2).
    Clusters {
        /// Keep probability defining the per-attribute budgets.
        p: f64,
        /// The attribute clustering to use.
        clustering: Clustering,
    },
    /// RR-Clusters followed by RR-Adjustment.
    ClustersAdjusted {
        /// Keep probability defining the per-attribute budgets.
        p: f64,
        /// The attribute clustering to use.
        clustering: Clustering,
        /// Termination parameters of the adjustment.
        adjustment: AdjustmentConfig,
    },
}

impl MethodSpec {
    /// Display label used in figures and tables.
    pub fn label(&self) -> String {
        match self {
            MethodSpec::Randomized { .. } => "Randomized".to_string(),
            MethodSpec::Independent { .. } => "RR-Ind".to_string(),
            MethodSpec::IndependentAdjusted { .. } => "RR-Ind + RR-Adj".to_string(),
            MethodSpec::Clusters { .. } => "RR-Cluster".to_string(),
            MethodSpec::ClustersAdjusted { .. } => "RR-Cluster + RR-Adj".to_string(),
        }
    }

    /// The keep probability of the method.
    pub fn keep_probability(&self) -> f64 {
        match self {
            MethodSpec::Randomized { p }
            | MethodSpec::Independent { p }
            | MethodSpec::IndependentAdjusted { p, .. }
            | MethodSpec::Clusters { p, .. }
            | MethodSpec::ClustersAdjusted { p, .. } => *p,
        }
    }

    /// The declarative [`ProtocolSpec`] this method runs: every evaluated
    /// method is one of the unified protocols ("Randomized" runs
    /// RR-Independent and merely *queries* the release differently — raw
    /// counts on the randomized data instead of Equation (2)).
    pub fn protocol_spec(&self) -> ProtocolSpec {
        let level = RandomizationLevel::KeepProbability(self.keep_probability());
        match self {
            MethodSpec::Randomized { .. } | MethodSpec::Independent { .. } => {
                ProtocolSpec::independent(level)
            }
            MethodSpec::IndependentAdjusted { adjustment, .. } => {
                ProtocolSpec::independent(level).adjusted(*adjustment)
            }
            MethodSpec::Clusters { clustering, .. } => {
                ProtocolSpec::clusters(level, clustering.clone())
            }
            MethodSpec::ClustersAdjusted {
                clustering,
                adjustment,
                ..
            } => ProtocolSpec::clusters(level, clustering.clone()).adjusted(*adjustment),
        }
    }

    /// Whether the method queries the raw randomized data set directly
    /// (the "Randomized" baseline of Figure 2) instead of the protocol's
    /// Equation (2) release.
    pub fn queries_raw_randomized(&self) -> bool {
        matches!(self, MethodSpec::Randomized { .. })
    }
}

/// Builds the attribute clustering used by RR-Clusters for a given
/// randomization level and thresholds, with the privacy-preserving
/// dependence estimation of Section 4.1 (per-attribute RR at the same keep
/// probability `p`).
///
/// # Errors
/// Propagates dependence-estimation and clustering errors.
pub fn build_clustering(
    dataset: &Dataset,
    p: f64,
    max_combinations: usize,
    min_dependence: f64,
    seed: u64,
) -> Result<Clustering, ProtocolError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let estimate = dependence_via_randomized_attributes(dataset, p, &mut rng)?;
    let config = ClusteringConfig::new(max_combinations, min_dependence)?;
    cluster_attributes(&estimate.matrix, &dataset.schema().cardinalities(), config)
}

/// One randomization run of a method: generates a random coverage-σ query,
/// runs the method on the data set and returns the `(absolute, relative)`
/// count-query errors (`relative` is `None` when the true count is zero).
///
/// # Errors
/// Propagates protocol and query errors.
pub fn run_method_once(
    dataset: &Dataset,
    spec: &MethodSpec,
    sigma: f64,
    rng: &mut impl Rng,
) -> Result<(f64, Option<f64>), ProtocolError> {
    let query = CountQuery::random(dataset.schema(), sigma, rng)?;
    let truth = query.true_count(dataset)?;

    // One uniform path for every method: build the protocol from its
    // declarative spec and run it as a trait object.  Adjusted variants are
    // the same path — the spec stacks RR-Adjustment on the base protocol.
    let protocol = spec.protocol_spec().build(dataset.schema())?;
    let release = protocol.run(dataset, rng)?;

    let estimated = if spec.queries_raw_randomized() {
        // No Equation (2) correction: count directly on the randomized data.
        let randomized = release
            .randomized()
            .expect("batch run releases include the randomized dataset");
        let raw = EmpiricalEstimator::new(randomized);
        query.estimated_count(&raw)?
    } else {
        query.estimated_count(&release)?
    };

    Ok((
        absolute_error(estimated, truth),
        relative_error(estimated, truth),
    ))
}

/// Runs a method `runs` times in parallel (each run with its own
/// deterministic seed and its own random query) and aggregates the errors.
///
/// # Errors
/// Propagates the first error encountered by any run.
pub fn evaluate_method(
    dataset: &Dataset,
    spec: &MethodSpec,
    sigma: f64,
    runs: usize,
    base_seed: u64,
) -> Result<ErrorSummary, ProtocolError> {
    if runs == 0 {
        return Err(ProtocolError::config("at least one run is required"));
    }
    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
        .min(runs);
    let chunk = runs.div_ceil(threads);

    // Per-worker batches of (absolute error, optional relative error) pairs.
    type WorkerBatch = Result<Vec<(f64, Option<f64>)>, ProtocolError>;
    let results: Vec<WorkerBatch> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(runs);
            if start >= end {
                break;
            }
            handles.push(scope.spawn(move || {
                let mut local = Vec::with_capacity(end - start);
                for run in start..end {
                    // Independent, reproducible stream per run.
                    let mut rng = StdRng::seed_from_u64(
                        base_seed ^ (run as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    local.push(run_method_once(dataset, spec, sigma, &mut rng)?);
                }
                Ok(local)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let mut absolute = Vec::with_capacity(runs);
    let mut relative = Vec::with_capacity(runs);
    for chunk_result in results {
        for (abs, rel) in chunk_result? {
            absolute.push(abs);
            if let Some(rel) = rel {
                relative.push(rel);
            }
        }
    }
    Ok(ErrorSummary::from_runs(&absolute, &relative))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::AdultSynthesizer;

    fn small_adult() -> Dataset {
        let mut rng = StdRng::seed_from_u64(3);
        AdultSynthesizer::new(2_000).unwrap().generate(&mut rng)
    }

    #[test]
    fn labels_and_keep_probability() {
        let clustering = Clustering::singletons(8).unwrap();
        let specs = vec![
            MethodSpec::Randomized { p: 0.7 },
            MethodSpec::Independent { p: 0.7 },
            MethodSpec::IndependentAdjusted {
                p: 0.7,
                adjustment: AdjustmentConfig::default(),
            },
            MethodSpec::Clusters {
                p: 0.7,
                clustering: clustering.clone(),
            },
            MethodSpec::ClustersAdjusted {
                p: 0.7,
                clustering,
                adjustment: AdjustmentConfig::default(),
            },
        ];
        let labels: Vec<String> = specs.iter().map(MethodSpec::label).collect();
        assert_eq!(labels.len(), 5);
        assert!(labels.contains(&"RR-Ind".to_string()));
        assert!(labels.contains(&"RR-Cluster + RR-Adj".to_string()));
        for spec in &specs {
            assert!((spec.keep_probability() - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn clustering_construction_groups_the_known_dependent_attributes() {
        let ds = small_adult();
        let clustering = build_clustering(&ds, 0.7, 100, 0.1, 11).unwrap();
        assert_eq!(clustering.attribute_count(), 8);
        // Marital-status (2), Relationship (4) and Sex (6) are strongly
        // dependent in the generator; with Tv = 100 at least two of them
        // should share a cluster.
        let same = |a: usize, b: usize| clustering.cluster_of(a) == clustering.cluster_of(b);
        assert!(
            same(2, 4) || same(4, 6) || same(2, 6),
            "expected some of the strongly dependent attributes to be clustered: {clustering:?}"
        );
        assert!(
            clustering
                .max_combinations(&ds.schema().cardinalities())
                .unwrap()
                <= 100
        );
    }

    #[test]
    fn single_runs_produce_finite_errors() {
        let ds = small_adult();
        let mut rng = StdRng::seed_from_u64(5);
        for spec in [
            MethodSpec::Randomized { p: 0.7 },
            MethodSpec::Independent { p: 0.7 },
            MethodSpec::IndependentAdjusted {
                p: 0.7,
                adjustment: AdjustmentConfig::new(10, 1e-6).unwrap(),
            },
        ] {
            let (abs, rel) = run_method_once(&ds, &spec, 0.3, &mut rng).unwrap();
            assert!(abs.is_finite() && abs >= 0.0);
            if let Some(rel) = rel {
                assert!(rel.is_finite() && rel >= 0.0);
            }
        }
    }

    #[test]
    fn evaluate_method_aggregates_and_validates() {
        let ds = small_adult();
        let spec = MethodSpec::Independent { p: 0.7 };
        assert!(evaluate_method(&ds, &spec, 0.3, 0, 1).is_err());
        let summary = evaluate_method(&ds, &spec, 0.3, 6, 1).unwrap();
        assert_eq!(summary.runs, 6);
        assert!(summary.median_relative.is_finite());
        assert!(summary.median_absolute >= 0.0);
    }

    #[test]
    fn evaluation_is_deterministic_for_a_fixed_seed() {
        let ds = small_adult();
        let spec = MethodSpec::Independent { p: 0.5 };
        let a = evaluate_method(&ds, &spec, 0.2, 4, 99).unwrap();
        let b = evaluate_method(&ds, &spec, 0.2, 4, 99).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn estimator_corrected_method_beats_raw_randomized_counts() {
        // The qualitative claim of Figure 2: applying Equation (2) reduces
        // the count-query error relative to querying the raw randomized
        // data.  At p = 0.7 and small coverage the gap is large.
        let mut rng = StdRng::seed_from_u64(3);
        let ds = mdrr_data::AdultSynthesizer::new(8_000)
            .unwrap()
            .generate(&mut rng);
        let randomized =
            evaluate_method(&ds, &MethodSpec::Randomized { p: 0.7 }, 0.15, 12, 7).unwrap();
        let corrected =
            evaluate_method(&ds, &MethodSpec::Independent { p: 0.7 }, 0.15, 12, 7).unwrap();
        assert!(
            corrected.median_relative < randomized.median_relative,
            "corrected {corrected:?} vs randomized {randomized:?}"
        );
    }
}
