//! Machine-readable result containers and plain-text rendering.
//!
//! Every experiment driver returns one of these containers so the
//! experiment binaries can both pretty-print the paper's tables/figures to
//! the terminal and dump them as JSON for EXPERIMENTS.md.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One curve of a figure: a label plus `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"RR-Ind"`).
    pub label: String,
    /// X coordinates (e.g. the coverage σ).
    pub x: Vec<f64>,
    /// Y coordinates (e.g. the median relative error).
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series; the two coordinate vectors must have equal length.
    ///
    /// # Panics
    /// Panics if the lengths differ (a programming error in the harness).
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(
            x.len(),
            y.len(),
            "series coordinates must have equal length"
        );
        Series {
            label: label.into(),
            x,
            y,
        }
    }
}

/// A group of series forming one panel of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigurePanel {
    /// Panel title (e.g. `"p = 0.7"`).
    pub title: String,
    /// Axis label for x.
    pub x_label: String,
    /// Axis label for y.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

/// A rectangular table of numbers with row/column labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableResult {
    /// Table title (e.g. `"Table 1 — relative error of RR-Clusters (Adult)"`).
    pub title: String,
    /// Label of the row-header column (e.g. `"p / Td"`).
    pub row_header: String,
    /// Row labels.
    pub row_labels: Vec<String>,
    /// Column labels.
    pub col_labels: Vec<String>,
    /// Values, `values[row][col]`.
    pub values: Vec<Vec<f64>>,
}

/// Renders a table as aligned plain text.
pub fn render_table(table: &TableResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", table.title);
    let width = 12usize;
    let header_width = table
        .row_labels
        .iter()
        .map(String::len)
        .chain(std::iter::once(table.row_header.len()))
        .max()
        .unwrap_or(8)
        + 2;
    let _ = write!(out, "{:header_width$}", table.row_header);
    for col in &table.col_labels {
        let _ = write!(out, "{col:>width$}");
    }
    let _ = writeln!(out);
    for (row_label, row) in table.row_labels.iter().zip(&table.values) {
        let _ = write!(out, "{row_label:header_width$}");
        for v in row {
            if v.is_nan() {
                let _ = write!(out, "{:>width$}", "-");
            } else {
                let _ = write!(out, "{v:>width$.4}");
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a figure panel as a plain-text table (one column per series).
pub fn render_panel(panel: &FigurePanel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}  [{} vs {}]",
        panel.title, panel.y_label, panel.x_label
    );
    let width = 16usize;
    let _ = write!(out, "{:>10}", panel.x_label);
    for s in &panel.series {
        let _ = write!(out, "{:>width$}", s.label);
    }
    let _ = writeln!(out);
    let points = panel.series.first().map(|s| s.x.len()).unwrap_or(0);
    for i in 0..points {
        let x = panel.series[0].x[i];
        let _ = write!(out, "{x:>10.3}");
        for s in &panel.series {
            let y = s.y.get(i).copied().unwrap_or(f64::NAN);
            if y.is_nan() {
                let _ = write!(out, "{:>width$}", "-");
            } else {
                let _ = write!(out, "{y:>width$.4}");
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "equal length")]
    fn series_length_mismatch_panics() {
        let _ = Series::new("x", vec![1.0], vec![1.0, 2.0]);
    }

    #[test]
    fn table_rendering_contains_labels_and_values() {
        let table = TableResult {
            title: "Table 1".to_string(),
            row_header: "p/Td".to_string(),
            row_labels: vec!["0.1/0.1".to_string(), "0.7/0.3".to_string()],
            col_labels: vec!["50".to_string(), "100".to_string()],
            values: vec![vec![0.335, 0.404], vec![0.07, f64::NAN]],
        };
        let text = render_table(&table);
        assert!(text.contains("Table 1"));
        assert!(text.contains("0.1/0.1"));
        assert!(text.contains("0.3350"));
        assert!(text.contains('-'));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn panel_rendering_lists_every_point() {
        let panel = FigurePanel {
            title: "p = 0.7".to_string(),
            x_label: "sigma".to_string(),
            y_label: "relative error".to_string(),
            series: vec![
                Series::new("RR-Ind", vec![0.1, 0.2], vec![0.05, 0.03]),
                Series::new("RR-Cluster", vec![0.1, 0.2], vec![0.02, 0.01]),
            ],
        };
        let text = render_panel(&panel);
        assert!(text.contains("p = 0.7"));
        assert!(text.contains("RR-Ind"));
        assert!(text.contains("0.100"));
        assert!(text.contains("0.0200"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn serde_roundtrip() {
        let table = TableResult {
            title: "t".into(),
            row_header: "r".into(),
            row_labels: vec!["a".into()],
            col_labels: vec!["c".into()],
            values: vec![vec![1.0]],
        };
        let json = serde_json::to_string(&table).unwrap();
        let back: TableResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, table);
    }
}
