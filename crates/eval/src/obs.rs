//! Optional query-path instrumentation: how many estimates a release
//! served and how long each took.
//!
//! [`QueryObs`] bundles the injected [`Clock`] with the query-side
//! instruments, registered into a caller-supplied
//! [`Registry`] so the collector's and the query
//! path's metrics live in one registry and export together.
//! [`ObservedEstimator`] wraps any [`FrequencyEstimator`] and forwards
//! every call unchanged, counting and timing it on the way through —
//! the wrapped estimator's answers are bit-identical to the unwrapped
//! ones, and under a [`NullClock`](mdrr_obs::NullClock) the wrapper does
//! no timing work at all.
//!
//! Metric catalog (registered on construction):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `eval_estimates_served_total` | counter | frequency/count queries answered |
//! | `eval_estimate_nanos` | histogram | per-query wall time |

use mdrr_obs::{Clock, Counter, Histogram, Registry};
use mdrr_protocols::{Assignment, FrequencyEstimator, ProtocolError};
use std::sync::Arc;

/// The query path's instruments plus the clock that times them.
///
/// ```
/// use mdrr_eval::QueryObs;
/// use mdrr_obs::{MonotonicClock, Registry};
/// use std::sync::Arc;
///
/// let registry = Registry::new();
/// let obs = QueryObs::new(Arc::new(MonotonicClock::new()), &registry);
/// assert!(obs.clock().enabled());
/// let snapshot = registry.snapshot();
/// assert_eq!(snapshot.counter_value("eval_estimates_served_total", &[]), Some(0));
/// assert!(snapshot.histogram_snapshot("eval_estimate_nanos", &[]).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct QueryObs {
    clock: Arc<dyn Clock>,
    estimates_served: Arc<Counter>,
    estimate_nanos: Arc<Histogram>,
}

impl QueryObs {
    /// Registers the query-path instruments in `registry` and binds them
    /// to `clock`.
    pub fn new(clock: Arc<dyn Clock>, registry: &Registry) -> Self {
        QueryObs {
            clock,
            estimates_served: registry.counter("eval_estimates_served_total"),
            estimate_nanos: registry.histogram("eval_estimate_nanos"),
        }
    }

    /// The clock the observed query path reads.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Number of estimates served so far through estimators observed by
    /// this instance (or any sharing the same registry entry).
    pub fn estimates_served(&self) -> u64 {
        self.estimates_served.get()
    }
}

/// A [`FrequencyEstimator`] that forwards to an inner estimator while
/// counting and timing every query.
///
/// ```
/// use mdrr_data::{Attribute, Schema};
/// use mdrr_eval::{ObservedEstimator, QueryObs};
/// use mdrr_obs::{MonotonicClock, Registry};
/// use mdrr_protocols::{FrequencyEstimator, ProtocolSpec, RandomizationLevel};
/// use std::sync::Arc;
///
/// let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
/// let protocol = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7))
///     .build_arc(&schema)?;
/// let records: Vec<Vec<u32>> = (0..100).map(|i| vec![i % 2]).collect();
/// let dataset = mdrr_data::Dataset::from_records(schema, &records)?;
/// # use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let release = protocol.run(&dataset, &mut rng)?;
///
/// let registry = Registry::new();
/// let obs = QueryObs::new(Arc::new(MonotonicClock::new()), &registry);
/// let observed = ObservedEstimator::new(&release, obs.clone());
///
/// let f = observed.frequency(&[(0, 0)])?;
/// assert_eq!(f, release.frequency(&[(0, 0)])?); // answers are unchanged
/// assert_eq!(obs.estimates_served(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ObservedEstimator<E> {
    inner: E,
    obs: QueryObs,
}

impl<E: FrequencyEstimator> ObservedEstimator<E> {
    /// Wraps `inner` so every query is counted and timed through `obs`.
    pub fn new(inner: E, obs: QueryObs) -> Self {
        ObservedEstimator { inner, obs }
    }

    /// The wrapped estimator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner estimator.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: FrequencyEstimator> FrequencyEstimator for ObservedEstimator<E> {
    fn frequency(&self, assignment: &Assignment) -> Result<f64, ProtocolError> {
        let clock = self.obs.clock();
        let start = clock.enabled().then(|| clock.now_nanos());
        let result = self.inner.frequency(assignment);
        if let Some(start) = start {
            self.obs
                .estimate_nanos
                .record(clock.now_nanos().saturating_sub(start));
        }
        self.obs.estimates_served.inc();
        result
    }

    fn record_count(&self) -> usize {
        self.inner.record_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_obs::{ManualClock, NullClock};

    /// A fixed-answer estimator for wrapper tests.
    #[derive(Debug)]
    struct Fixed(f64, usize);

    impl FrequencyEstimator for Fixed {
        fn frequency(&self, _assignment: &Assignment) -> Result<f64, ProtocolError> {
            Ok(self.0)
        }

        fn record_count(&self) -> usize {
            self.1
        }
    }

    #[test]
    fn wrapper_counts_and_times_without_changing_answers() {
        let registry = Registry::new();
        let clock = Arc::new(ManualClock::new());
        let obs = QueryObs::new(clock, &registry);
        let estimator = ObservedEstimator::new(Fixed(0.25, 80), obs.clone());

        assert_eq!(estimator.frequency(&[]).unwrap(), 0.25);
        assert_eq!(estimator.count(&[]).unwrap(), 20.0);
        assert_eq!(estimator.record_count(), 80);

        // frequency() once directly + once through count() = 2 estimates.
        assert_eq!(obs.estimates_served(), 2);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counter_value("eval_estimates_served_total", &[]),
            Some(2)
        );
        let hist = snapshot
            .histogram_snapshot("eval_estimate_nanos", &[])
            .unwrap();
        assert_eq!(hist.count, 2);
    }

    #[test]
    fn null_clock_counts_but_skips_timing() {
        let registry = Registry::new();
        let obs = QueryObs::new(Arc::new(NullClock), &registry);
        let estimator = ObservedEstimator::new(Fixed(0.5, 10), obs.clone());
        for _ in 0..5 {
            estimator.frequency(&[]).unwrap();
        }
        assert_eq!(obs.estimates_served(), 5);
        let snapshot = registry.snapshot();
        let hist = snapshot
            .histogram_snapshot("eval_estimate_nanos", &[])
            .unwrap();
        assert!(hist.is_empty());
    }

    #[test]
    fn errors_still_count_as_served_queries() {
        #[derive(Debug)]
        struct Failing;
        impl FrequencyEstimator for Failing {
            fn frequency(&self, _assignment: &Assignment) -> Result<f64, ProtocolError> {
                Err(ProtocolError::unsupported("always fails"))
            }
            fn record_count(&self) -> usize {
                0
            }
        }

        let registry = Registry::new();
        let obs = QueryObs::new(Arc::new(NullClock), &registry);
        let estimator = ObservedEstimator::new(Failing, obs.clone());
        assert!(estimator.frequency(&[]).is_err());
        assert_eq!(obs.estimates_served(), 1);
    }
}
