//! Paper-scale sanity checks for the experiment harness.
//!
//! These run at (or near) the scale of the paper's evaluation — the full
//! 32 561-record synthetic Adult — and assert the qualitative orderings the
//! paper reports.  They take tens of seconds in release mode, so they are
//! `#[ignore]`d by default; run them with
//!
//! ```text
//! cargo test -p mdrr-eval --release -- --ignored
//! ```

use mdrr_eval::experiments::{fig2, fig3, runner::MethodSpec, ExperimentConfig};
use mdrr_eval::{build_clustering, evaluate_method};

fn paper_config(runs: usize) -> ExperimentConfig {
    ExperimentConfig {
        records: 32_561,
        runs,
        seed: 42,
        alpha: 0.05,
    }
}

#[test]
#[ignore = "paper-scale run; execute with --ignored in release mode"]
fn rr_independent_beats_randomized_at_paper_scale() {
    let config = paper_config(20);
    let dataset = config.adult().unwrap();
    let randomized = evaluate_method(
        &dataset,
        &MethodSpec::Randomized { p: 0.7 },
        0.1,
        config.runs,
        1,
    )
    .unwrap();
    let corrected = evaluate_method(
        &dataset,
        &MethodSpec::Independent { p: 0.7 },
        0.1,
        config.runs,
        1,
    )
    .unwrap();
    assert!(
        corrected.median_relative < randomized.median_relative,
        "RR-Ind {corrected:?} should beat Randomized {randomized:?}"
    );
}

#[test]
#[ignore = "paper-scale run; execute with --ignored in release mode"]
fn figure2_shapes_hold_at_paper_scale() {
    // Figure 2: the absolute error of the raw randomized counts peaks at
    // sigma = 0.5 and the relative error decreases with the coverage, while
    // RR-Independent stays below Randomized throughout.
    let config = paper_config(24);
    let result = fig2::run_with(&config, fig2::FIG2_P, &[0.1, 0.5, 0.9]).unwrap();
    let randomized_abs = &result.absolute.series[0];
    let randomized_rel = &result.relative.series[0];
    let rr_ind_rel = &result.relative.series[1];
    eprintln!("Randomized abs: {:?}", randomized_abs.y);
    eprintln!("Randomized rel: {:?}", randomized_rel.y);
    eprintln!("RR-Ind rel:     {:?}", rr_ind_rel.y);
    assert!(randomized_abs.y[1] > randomized_abs.y[0]);
    assert!(randomized_abs.y[1] > randomized_abs.y[2]);
    assert!(randomized_rel.y[0] > randomized_rel.y[2]);
    for (a, b) in rr_ind_rel.y.iter().zip(randomized_rel.y.iter()) {
        assert!(a < b, "RR-Ind {a} should be below Randomized {b}");
    }
}

#[test]
#[ignore = "paper-scale run; execute with --ignored in release mode"]
fn clusters_beat_independence_at_high_p_small_coverage() {
    let config = paper_config(20);
    let dataset = config.adult().unwrap();
    let p = 0.7;
    let clustering = build_clustering(&dataset, p, 50, 0.1, 7).unwrap();
    eprintln!("clustering: {clustering:?}");
    let independent = evaluate_method(
        &dataset,
        &MethodSpec::Independent { p },
        0.1,
        config.runs,
        3,
    )
    .unwrap();
    let clusters = evaluate_method(
        &dataset,
        &MethodSpec::Clusters { p, clustering },
        0.1,
        config.runs,
        3,
    )
    .unwrap();
    eprintln!("independent: {independent:?}");
    eprintln!("clusters:    {clusters:?}");
    assert!(
        clusters.median_relative < independent.median_relative,
        "RR-Clusters {clusters:?} should beat RR-Independent {independent:?}"
    );
}

#[test]
#[ignore = "paper-scale run; execute with --ignored in release mode"]
fn error_decreases_with_keep_probability() {
    let config = paper_config(48);
    let dataset = config.adult().unwrap();
    let mut errors = Vec::new();
    for p in [0.1, 0.3, 0.5, 0.7] {
        let clustering = build_clustering(&dataset, p, 50, 0.3, 11).unwrap();
        let summary = evaluate_method(
            &dataset,
            &MethodSpec::Clusters { p, clustering },
            0.1,
            config.runs,
            5,
        )
        .unwrap();
        eprintln!("p = {p}: {summary:?}");
        errors.push(summary.median_relative);
    }
    // The strongest randomization is clearly the worst, and the two weakest
    // randomizations are clearly better than p = 0.3 (the fine-grained
    // ordering between p = 0.5 and p = 0.7 is within run-to-run noise at
    // this run count, exactly like neighbouring cells of the paper's
    // Table 1).
    assert!(
        errors[0] > errors[1],
        "p = 0.1 ({}) should be worse than p = 0.3 ({})",
        errors[0],
        errors[1]
    );
    assert!(errors[0] > errors[2]);
    assert!(errors[0] > errors[3]);
    assert!(
        errors[1] > errors[2],
        "p = 0.3 ({}) should be worse than p = 0.5 ({})",
        errors[1],
        errors[2]
    );
    assert!(
        errors[1] > errors[3],
        "p = 0.3 ({}) should be worse than p = 0.7 ({})",
        errors[1],
        errors[3]
    );
}

#[test]
#[ignore = "paper-scale run; execute with --ignored in release mode"]
fn adjustment_and_clustering_help_at_high_p_small_coverage() {
    let config = paper_config(32);
    let result = fig3::run_with(
        &config,
        &[fig3::PanelSpec {
            p: 0.7,
            tv: 50,
            td: 0.1,
        }],
        &[0.1, 0.2],
    )
    .unwrap();
    let panel = &result.panels[0];
    let series = |needle: &str| {
        panel
            .series
            .iter()
            .find(|s| s.label.starts_with(needle))
            .unwrap_or_else(|| panic!("missing series {needle}"))
    };
    let rr_ind = series("RR-Ind");
    let rr_ind_adj = panel
        .series
        .iter()
        .find(|s| s.label == "RR-Ind + RR-Adj")
        .unwrap();
    let rr_cluster = series("RR-Cluster 50");
    let rr_cluster_adj = panel
        .series
        .iter()
        .find(|s| s.label.ends_with("+ RR_Adj"))
        .unwrap();
    for s in &panel.series {
        eprintln!("{}: {:?}", s.label, s.y);
    }
    // The paper's Figure 3 (bottom right, p = 0.7): at small coverages the
    // cluster-based and adjusted pipelines beat plain RR-Independent.
    // Averaging the two smallest coverages smooths the per-point noise.
    let avg = |s: &mdrr_eval::Series| (s.y[0] + s.y[1]) / 2.0;
    assert!(
        avg(rr_cluster) < avg(rr_ind),
        "RR-Clusters {:?} should beat RR-Independent {:?}",
        rr_cluster.y,
        rr_ind.y
    );
    assert!(
        avg(rr_ind_adj) < avg(rr_ind),
        "RR-Ind + Adj {:?} should beat RR-Independent {:?}",
        rr_ind_adj.y,
        rr_ind.y
    );
    assert!(
        avg(rr_cluster_adj) <= avg(rr_cluster) * 1.05,
        "RR-Cluster + Adj {:?} should not be worse than RR-Cluster {:?}",
        rr_cluster_adj.y,
        rr_cluster.y
    );
}
