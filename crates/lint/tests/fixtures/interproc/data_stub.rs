// Mini mdrr-data stub (loaded in-memory as crates/data/src/lib.rs).
// Fixtures are lexed, never compiled, so the bodies are skeletal.
pub struct Dataset {
    cols: Vec<Vec<u32>>,
}

pub struct RecordsView;

impl Dataset {
    pub fn view(&self) -> RecordsView {
        RecordsView
    }
    pub fn len(&self) -> usize {
        self.cols.len()
    }
}

impl RecordsView {
    pub fn as_slice(&self) -> &[u32] {
        &[]
    }
    pub fn read_record(&self, i: usize, row: &mut Vec<u32>) {
        let _ = (i, row);
    }
}
