// Binary output sink (crates/stream/src/bin/stream_sim.rs): printing a
// raw record to stdout is an export like any other.  The metadata-only
// print is clean; the record print is a finding.  The local is bound
// from a `Dataset::` constructor — the let-tracking must type it raw.
use mdrr_data::Dataset;

fn main() {
    let ds = Dataset::load();
    println!("records: {}", ds.len());
    println!("first: {:?}", ds.view());
}
