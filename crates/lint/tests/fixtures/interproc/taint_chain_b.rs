// Link 2 of the violating chain (crates/stream/src/forward.rs): a pure
// pass-through — the raw view goes in one parameter and out one call.
use mdrr_data::RecordsView;
use mdrr_store::persist_view;

pub fn forward_records(v: RecordsView) -> u64 {
    persist_view(v)
}
