// Conforming variant of link 3 (crates/store/src/persist.rs): the raw
// view passes through the sanctioned `encode_batch` randomizer before
// anything reaches the snapshot — the whole chain is clean.
use crate::Snapshot;
use mdrr_data::RecordsView;
use mdrr_protocols::Proto;

pub fn persist_view(v: RecordsView) -> u64 {
    let proto = Proto;
    let counts = proto.encode_batch(&v);
    let snap = Snapshot::new(&counts);
    snap.to_bytes().len() as u64
}
