// A release-computation root (loaded as crates/protocols/src/release.rs):
// `release_from_counts` is in the determinism root catalog; everything
// it reaches must be deterministic.
use mdrr_core::normalize;

pub fn release_from_counts(counts: &[u64]) -> Vec<f64> {
    normalize(counts)
}
