// A public mdrr-store API (loaded as crates/store/src/api.rs): the
// reachability root.  Its own `.unwrap()` belongs to the file-scoped
// `no-panic-paths` rule, NOT to panic-reachability — asserting the
// interprocedural rule skips it pins the no-double-reporting contract.
use mdrr_math::checked_div;

pub fn load(n: u64) -> u64 {
    let half = checked_div(n, 2);
    let parsed: u64 = "0".parse().unwrap();
    half + parsed
}
