// Helper reachable from a public mdrr-store API (loaded as
// crates/math/src/lib.rs): the `.unwrap()` here is outside the
// file-scoped no-panic-paths jurisdiction, so only the interprocedural
// rule can see that the store's no-panic promise reaches it.
pub fn checked_div(a: u64, b: u64) -> u64 {
    a.checked_div(b).unwrap()
}
