// Link 3 of the violating chain (crates/store/src/persist.rs): the raw
// view lands in a snapshot constructor — the sink.  The one finding of
// the chain anchors here and names all three links.
use crate::Snapshot;
use mdrr_data::RecordsView;

pub fn persist_view(v: RecordsView) -> u64 {
    let snap = Snapshot::new(v.as_slice());
    snap.to_bytes().len() as u64
}
