// Diamond call graph (crates/stream/src/diamond.rs): two raw-forwarding
// paths converge on one sink call.  The analysis must report exactly
// one finding — the sink site — not one per path.
use mdrr_data::{Dataset, RecordsView};
use mdrr_store::Snapshot;

pub fn root(ds: &Dataset) {
    left(ds.view());
    right(ds.view());
}

fn left(v: RecordsView) {
    join(v)
}

fn right(v: RecordsView) {
    join(v)
}

fn join(v: RecordsView) {
    Snapshot::new(v.as_slice());
}
