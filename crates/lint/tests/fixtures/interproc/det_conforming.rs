// Conforming helper (loaded as crates/core/src/norm.rs): ordered
// collections, no ambient entropy — deterministic releases.
use std::collections::BTreeMap;

pub fn normalize(counts: &[u64]) -> Vec<f64> {
    let mut seen = BTreeMap::new();
    for (i, &c) in counts.iter().enumerate() {
        seen.insert(i, c);
    }
    seen.values().map(|&c| c as f64).collect()
}
