// Mini mdrr-store stub (loaded in-memory as crates/store/src/lib.rs).
// `Snapshot::new`, `Snapshot::to_bytes` and `SnapshotWriter::write` are
// privacy-taint sinks by catalog; the stub gives the resolver real
// definitions to land on.
pub struct Snapshot;

impl Snapshot {
    pub fn new(counts: &[u64]) -> Snapshot {
        let _ = counts;
        Snapshot
    }
    pub fn to_bytes(&self) -> Vec<u8> {
        Vec::new()
    }
}

pub struct SnapshotWriter;

impl SnapshotWriter {
    pub fn write(&self, snap: &Snapshot) {
        let _ = snap;
    }
}
