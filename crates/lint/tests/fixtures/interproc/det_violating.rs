// Helper reachable from a release-computation root (loaded as
// crates/core/src/norm.rs): a `HashMap` and an unseeded RNG both feed
// the release — two findings with the connecting chain.
use std::collections::HashMap;

pub fn normalize(counts: &[u64]) -> Vec<f64> {
    let mut seen = HashMap::new();
    for (i, &c) in counts.iter().enumerate() {
        seen.insert(i, c);
    }
    let jitter = thread_rng().gen::<f64>();
    seen.values().map(|&c| c as f64 + jitter).collect()
}
