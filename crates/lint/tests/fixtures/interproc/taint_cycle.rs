// Mutually recursive raw-forwarding cycle (crates/stream/src/cycle.rs):
// the fixpoint must terminate and still report the single sink call.
use mdrr_data::RecordsView;
use mdrr_store::Snapshot;

pub fn ping(v: RecordsView, depth: u32) {
    if depth > 0 {
        pong(v, depth - 1)
    }
}

fn pong(v: RecordsView, depth: u32) {
    ping(v, depth);
    Snapshot::new(v.as_slice());
}
