// Mini mdrr-protocols stub (loaded in-memory as
// crates/protocols/src/lib.rs).  `encode_batch` is a sanctioned
// sanitizer: taint passing through it is cleared.
use mdrr_data::RecordsView;

pub struct Proto;

impl Proto {
    pub fn encode_batch(&self, view: &RecordsView) -> Vec<u64> {
        let _ = view;
        Vec::new()
    }
}
