// Link 1 of the violating 3-file chain (crates/eval/src/collect.rs):
// takes raw microdata and forwards a raw view across crates.
use mdrr_data::Dataset;
use mdrr_stream::forward_records;

pub fn collect_counts(ds: &Dataset) -> u64 {
    forward_records(ds.view())
}
