// Conforming helper (loaded as crates/math/src/lib.rs): the failure
// mode maps to a value the caller can handle — nothing panics.
pub fn checked_div(a: u64, b: u64) -> u64 {
    match a.checked_div(b) {
        Some(q) => q,
        None => 0,
    }
}
