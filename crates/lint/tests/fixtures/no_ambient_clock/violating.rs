//! Fixture: ambient clock reads in library code that should take an
//! injected `mdrr_obs::Clock`.

/// Times an ingest round off the ambient monotonic clock — a `NullClock`
/// can never make this free, and a `ManualClock` can never test it.
pub fn timed_ingest(reports: &[u64]) -> (u64, f64) {
    let start = Instant::now();
    let total = reports.iter().sum();
    (total, start.elapsed().as_secs_f64())
}

/// Stamps an event with the ambient wall clock.
pub fn stamp() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}
