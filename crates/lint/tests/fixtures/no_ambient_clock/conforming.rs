//! Fixture: all timing flows through the injected `mdrr_obs::Clock`;
//! ambient clocks appear only in test code.

use mdrr_obs::Clock;
use std::sync::Arc;

/// Times an ingest round off the injected clock — `NullClock` makes the
/// instrumentation free, `ManualClock` makes the test exact.
pub fn timed_ingest(reports: &[u64], clock: &Arc<dyn Clock>) -> (u64, u64) {
    let start = clock.now_nanos();
    let total = reports.iter().sum();
    (total, clock.now_nanos().saturating_sub(start))
}

#[cfg(test)]
mod tests {
    #[test]
    fn ambient_timing_in_tests_is_fine() {
        let t = Instant::now();
        let _ = SystemTime::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}
