//! Fixture: ambient entropy on the deterministic-resume path (ambient
//! *clocks* are the no-ambient-clock-in-lib fixture's concern).

/// Seeds shard RNGs from ambient OS entropy — resume can never reproduce.
pub fn shard_rngs(n: usize) -> Vec<StdRng> {
    (0..n).map(|_| StdRng::from_entropy()).collect()
}

/// Draws through the thread-local generator.
pub fn route(n_shards: usize) -> usize {
    let mut rng = thread_rng();
    rng.next_u64() as usize % n_shards
}
