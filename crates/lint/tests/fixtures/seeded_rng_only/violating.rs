//! Fixture: ambient entropy and wall-clock reads on the
//! deterministic-resume path.

/// Seeds shard RNGs from ambient OS entropy — resume can never reproduce.
pub fn shard_rngs(n: usize) -> Vec<StdRng> {
    (0..n).map(|_| StdRng::from_entropy()).collect()
}

/// Draws through the thread-local generator.
pub fn route(n_shards: usize) -> usize {
    let mut rng = thread_rng();
    rng.next_u64() as usize % n_shards
}

/// Derives a "seed" from the wall clock.
pub fn clock_seed() -> u64 {
    let now = SystemTime::now();
    let tick = Instant::now();
    let _ = tick;
    now.duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0)
}
