//! Fixture: all randomness flows from explicit seeds; clocks appear only
//! in test code.

/// Shard RNGs derive deterministically from one base seed.
pub fn shard_rngs(base_seed: u64, n: usize) -> Vec<StdRng> {
    (0..n)
        .map(|k| StdRng::seed_from_u64(base_seed.wrapping_add(k as u64)))
        .collect()
}

/// Routing is a pure function of the report index.
pub fn route(i: u64, n_shards: usize) -> usize {
    (i % n_shards as u64) as usize
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}
