//! Fixture: the allocation hoisted out of the region; the loop body only
//! indexes and increments.

/// Buffers are sized once per batch, outside the region.
pub fn tally(columns: &[Vec<u32>], sizes: &[usize]) -> Vec<Vec<u64>> {
    let mut out: Vec<Vec<u64>> = sizes.iter().map(|&s| vec![0u64; s]).collect();
    // lint:region(no_alloc)
    for (codes, counts) in columns.iter().zip(out.iter_mut()) {
        for &code in codes {
            counts[code as usize] += 1;
        }
    }
    // lint:endregion(no_alloc)
    out
}
