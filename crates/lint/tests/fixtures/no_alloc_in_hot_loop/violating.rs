//! Fixture: per-value allocations inside a region declared allocation-free.

/// A counting loop that allocates on every iteration.
pub fn tally(columns: &[Vec<u32>], sizes: &[usize]) -> Vec<Vec<u64>> {
    let mut out: Vec<Vec<u64>> = sizes.iter().map(|&s| vec![0u64; s]).collect();
    // lint:region(no_alloc)
    for (codes, counts) in columns.iter().zip(out.iter_mut()) {
        let copy = codes.to_vec();
        let label = format!("{} codes", copy.len());
        let rows: Vec<u64> = copy.iter().map(|&c| c as u64).collect();
        let boxed = Box::new(label);
        for (c, _) in rows.iter().zip(boxed.chars()) {
            counts[*c as usize] += 1;
        }
    }
    // lint:endregion(no_alloc)
    out
}
