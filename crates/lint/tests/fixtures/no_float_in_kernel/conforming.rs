//! Fixture: an integer-only kernel region, with the float setup correctly
//! outside the region.

/// Float math is fine outside the region: per-matrix setup.
pub fn threshold_of(p: f64) -> u64 {
    (p * 9007199254740992.0) as u64
}

/// The kernel itself: threshold compare and fixed-point multiply only.
pub fn kernel(threshold: u64, redraw_scale: u128, true_value: u32, raw: u64) -> u32 {
    // lint:region(no_float)
    let hi = raw >> 11;
    if hi < threshold {
        return true_value;
    }
    let idx = (((hi - threshold) as u128 * redraw_scale) >> 64) as u32;
    idx + u32::from(idx >= true_value)
    // lint:endregion(no_float)
}
