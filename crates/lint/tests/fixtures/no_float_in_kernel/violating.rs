//! Fixture: floats leaking into a region declared float-free.

/// A kernel that drifted back to floating-point arithmetic.
pub fn kernel(threshold: u64, draw: u64, r: u32) -> u32 {
    // lint:region(no_float)
    let p: f64 = threshold as f64 / 9007199254740992.0;
    let keep = (draw as f64) < p * 2.0f64;
    if keep {
        0
    } else {
        r - 1
    }
    // lint:endregion(no_float)
}
