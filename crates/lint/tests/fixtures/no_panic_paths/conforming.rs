//! Fixture: the same operations written panic-free — typed errors, `get`,
//! exhaustive matches — plus the two sanctioned escapes (test code and a
//! reasoned `lint:allow`).

/// Reads the declared length, reporting truncation as a typed error.
pub fn length(bytes: &[u8]) -> Result<u32, StoreError> {
    let head = bytes.get(..4).ok_or(StoreError::Truncated {
        offset: 0,
        needed: 4,
        available: bytes.len(),
    })?;
    let mut word = [0u8; 4];
    for (dst, src) in word.iter_mut().zip(head) {
        *dst = *src;
    }
    Ok(u32::from_le_bytes(word))
}

/// Dispatches on a tag byte with a typed error for unknown tags.
pub fn dispatch(tag: u8) -> Result<&'static str, StoreError> {
    match tag {
        0 => Ok("counts"),
        1 => Ok("header"),
        other => Err(StoreError::layout(format!("unknown block tag {other}"))),
    }
}

/// Looks up a shard name with an explicit bounds check.
pub fn shard_name(names: &[String], k: usize) -> Option<&str> {
    names.get(k).map(String::as_str)
}

/// A masked index is provably in range — suppressed with a reason.
pub fn masked(table: &[u64; 256], byte: u8) -> u64 {
    // lint:allow(no-panic-paths, reason = "index is masked to 0..256, table has 256 slots")
    table[(byte & 0xFF) as usize]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
