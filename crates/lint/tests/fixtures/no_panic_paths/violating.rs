//! Fixture: every way no-panic-paths fires on store parse code.

/// Reads the declared length, panicking on truncated input.
pub fn length(bytes: &[u8]) -> u32 {
    let head: [u8; 4] = bytes[..4].try_into().unwrap();
    u32::from_le_bytes(head)
}

/// Dispatches on a tag byte, panicking on unknown tags.
pub fn dispatch(tag: u8) -> &'static str {
    match tag {
        0 => "counts",
        1 => "header",
        _ => unreachable!("validated upstream"),
    }
}

/// Indexes a shard table without a bounds check.
pub fn shard_name(names: &[String], k: usize) -> &str {
    &names[k]
}

/// Expects a parsed header that may be absent.
pub fn header(parsed: Option<&str>) -> &str {
    parsed.expect("header present")
}
