//! Fixture lib.rs: no `#![deny(missing_docs)]`, and a public error enum
//! with neither `Display` nor `std::error::Error`.

/// Failure modes of the fixture crate.
pub enum FixtureError {
    /// The input did not parse.
    Malformed,
    /// An index was out of range.
    OutOfRange,
}
