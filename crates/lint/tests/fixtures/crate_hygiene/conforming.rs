//! Fixture lib.rs: documented-by-default, with a fully wired error enum.

#![deny(missing_docs)]

use std::fmt;

/// Failure modes of the fixture crate.
#[derive(Debug)]
pub enum FixtureError {
    /// The input did not parse.
    Malformed,
    /// An index was out of range.
    OutOfRange,
}

impl fmt::Display for FixtureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixtureError::Malformed => write!(f, "the input did not parse"),
            FixtureError::OutOfRange => write!(f, "an index was out of range"),
        }
    }
}

impl std::error::Error for FixtureError {}
