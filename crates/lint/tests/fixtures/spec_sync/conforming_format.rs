//! Fixture reference implementation matching `conforming_FORMAT.md`.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  = "MDRRSNAP" (ASCII)
//! 8       4     format version (u32, currently 1)
//! 12      8     record count (u64)
//! 20      4     channel count C (u32)
//! 24      4     header JSON length H (u32)
//! 28      H     header JSON
//! ```

/// The eight magic bytes.
pub const MAGIC: [u8; 8] = *b"MDRRSNAP";

/// The format version this fixture reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// The reflected CRC-64/XZ generator polynomial.
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

/// ```
/// assert_eq!(fixture::crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
/// ```
pub fn crc64(_bytes: &[u8]) -> u64 {
    CRC64_POLY
}
