//! Fixture implementation that drifted from `conforming_FORMAT.md`: new
//! magic, bumped version, different polynomial, rearranged offsets — the
//! document was never updated.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  = "MDRRSNAQ" (ASCII)
//! 8       4     format version (u32, currently 3)
//! 12      4     channel count C (u32)
//! 16      8     record count (u64)
//! ```

/// The eight magic bytes.
pub const MAGIC: [u8; 8] = *b"MDRRSNAQ";

/// The format version this fixture reads and writes.
pub const FORMAT_VERSION: u32 = 3;

/// The reflected CRC-64/ECMA-182 generator polynomial (not XZ!).
const CRC64_POLY: u64 = 0x42F0_E1EB_A9EA_3693;

/// ```
/// assert_eq!(fixture::crc64(b"123456789"), 0x6C40_DF5F_0B49_7347);
/// ```
pub fn crc64(_bytes: &[u8]) -> u64 {
    CRC64_POLY
}
