//! Fixture: the supported access patterns — indexed rows into a reused
//! buffer, or the zero-copy columnar view.

/// Reads every row through the reused-buffer path.
pub fn row_sum(ds: &Dataset) -> u64 {
    let view = ds.view();
    let mut row = Vec::new();
    let mut sum = 0u64;
    for i in 0..ds.n_records() {
        view.read_record(i, &mut row).expect("index in range");
        sum += row.iter().map(|&c| c as u64).sum::<u64>();
    }
    sum
}

/// Single-row access by index.
pub fn first_row(ds: &Dataset) -> Option<Vec<u32>> {
    ds.record(0).ok()
}
