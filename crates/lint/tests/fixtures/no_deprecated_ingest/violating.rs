//! Fixture: call sites still on the deprecated row-materialising
//! accessors.

/// Materializes every row, one fresh `Vec` per record.
pub fn all_rows(ds: &Dataset) -> Vec<Vec<u32>> {
    ds.records().collect()
}

/// Walks the dataset in row-major chunks through the deprecated API.
pub fn chunked(ds: &Dataset) -> usize {
    ds.record_chunks(64).count()
}
