//! Fixture: every unsafe site documents the invariant that makes it
//! sound; `unsafe fn` declarations need no comment (they create an
//! obligation, they don't discharge one).

/// Reinterprets a `u64` slice as bytes.
pub fn as_bytes(words: &[u64]) -> &[u8] {
    // SAFETY: u64 has no padding and no invalid bit patterns, the pointer
    // and length come from a live slice, and 8 × len cannot overflow
    // because the slice already fits in memory.
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast(), words.len() * 8) }
}

/// A counting allocator shim.
pub struct Counting;

// SAFETY: Counting is a zero-sized stateless marker; sharing it across
// threads touches no data.
unsafe impl Sync for Counting {}

/// Declaring an unsafe fn is not itself an unsafe act.
pub unsafe fn caller_must_check(p: *const u8) -> u8 {
    // SAFETY: the contract of this function requires `p` to be valid.
    unsafe { *p }
}
