//! Fixture: unsafe sites with no written proof obligation.

/// Reinterprets a `u64` slice as bytes.
pub fn as_bytes(words: &[u64]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast(), words.len() * 8) }
}

/// A counting allocator shim.
pub struct Counting;

unsafe impl Sync for Counting {}

/// A marker trait whose implementors promise exclusive access.
pub unsafe trait Exclusive {}
