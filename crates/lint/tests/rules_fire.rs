//! The mutation suite: every rule must *fire* on its violating fixture
//! and stay *silent* on its conforming twin — a linter that never fires
//! is indistinguishable from one that works.  spec-sync additionally gets
//! true mutation tests against the real `docs/FORMAT.md` /
//! `crates/store/src/format.rs` texts: flip one constant in memory and
//! the rule must name exactly the drifted field.

use mdrr_lint::diag::Diagnostic;
use mdrr_lint::engine::run_filtered;
use mdrr_lint::rules::{all_rules, spec_sync};
use mdrr_lint::Workspace;

/// Runs exactly one rule over an in-memory workspace.
fn lint_one(rule: &str, rel: &str, text: &str) -> (Vec<Diagnostic>, usize) {
    let ws = Workspace::in_memory(vec![(rel, text)], vec![]);
    let out = run_filtered(&ws, &all_rules(), Some(&[rule.to_string()]));
    (out.diagnostics, out.suppressed)
}

#[test]
fn no_panic_paths_fires_on_every_panic_form() {
    let (diags, _) = lint_one(
        "no-panic-paths",
        "crates/store/src/fixture.rs",
        include_str!("fixtures/no_panic_paths/violating.rs"),
    );
    assert_eq!(diags.len(), 5, "unexpected: {diags:#?}");
    let all = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(all.contains(".unwrap"));
    assert!(all.contains(".expect"));
    assert!(all.contains("unreachable"));
    assert!(all.contains("slice indexing"));
}

#[test]
fn no_panic_paths_is_silent_on_typed_errors_tests_and_reasoned_allows() {
    let (diags, suppressed) = lint_one(
        "no-panic-paths",
        "crates/store/src/fixture.rs",
        include_str!("fixtures/no_panic_paths/conforming.rs"),
    );
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
    assert_eq!(
        suppressed, 1,
        "the reasoned allow should absorb the masked index"
    );
}

#[test]
fn no_panic_paths_ignores_out_of_scope_crates() {
    let (diags, _) = lint_one(
        "no-panic-paths",
        "crates/eval/src/fixture.rs",
        include_str!("fixtures/no_panic_paths/violating.rs"),
    );
    assert!(diags.is_empty(), "eval code carries no no-panic contract");
}

#[test]
fn no_float_in_kernel_fires_on_types_and_literals() {
    let (diags, _) = lint_one(
        "no-float-in-kernel",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_float_in_kernel/violating.rs"),
    );
    assert_eq!(diags.len(), 5, "unexpected: {diags:#?}");
    assert!(diags.iter().any(|d| d.message.contains("float literal")));
    assert!(diags.iter().any(|d| d.message.contains("`f64`")));
}

#[test]
fn no_float_in_kernel_allows_floats_outside_the_region() {
    let (diags, _) = lint_one(
        "no-float-in-kernel",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_float_in_kernel/conforming.rs"),
    );
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

#[test]
fn no_alloc_in_hot_loop_fires_on_the_allocating_vocabulary() {
    let (diags, _) = lint_one(
        "no-alloc-in-hot-loop",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_alloc_in_hot_loop/violating.rs"),
    );
    assert_eq!(diags.len(), 4, "unexpected: {diags:#?}");
    let all = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(all.contains("to_vec"));
    assert!(all.contains("format"));
    assert!(all.contains("collect"));
    assert!(all.contains("Box::new"));
}

#[test]
fn no_alloc_in_hot_loop_allows_hoisted_buffers() {
    let (diags, _) = lint_one(
        "no-alloc-in-hot-loop",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_alloc_in_hot_loop/conforming.rs"),
    );
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

#[test]
fn seeded_rng_only_fires_on_ambient_entropy() {
    let (diags, _) = lint_one(
        "seeded-rng-only",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/seeded_rng_only/violating.rs"),
    );
    assert_eq!(diags.len(), 2, "unexpected: {diags:#?}");
    let all = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(all.contains("thread_rng"));
    assert!(all.contains("from_entropy"));
}

#[test]
fn seeded_rng_only_allows_explicit_seeds_and_test_clocks() {
    let (diags, _) = lint_one(
        "seeded-rng-only",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/seeded_rng_only/conforming.rs"),
    );
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

#[test]
fn no_ambient_clock_fires_on_both_clock_types() {
    let (diags, _) = lint_one(
        "no-ambient-clock-in-lib",
        "crates/eval/src/fixture.rs",
        include_str!("fixtures/no_ambient_clock/violating.rs"),
    );
    assert_eq!(diags.len(), 2, "unexpected: {diags:#?}");
    let all = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(all.contains("Instant"));
    assert!(all.contains("SystemTime"));
}

#[test]
fn no_ambient_clock_accepts_injected_clocks_and_test_timing() {
    let (diags, _) = lint_one(
        "no-ambient-clock-in-lib",
        "crates/eval/src/fixture.rs",
        include_str!("fixtures/no_ambient_clock/conforming.rs"),
    );
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

#[test]
fn no_ambient_clock_exempts_the_obs_boundary_crate() {
    let (diags, _) = lint_one(
        "no-ambient-clock-in-lib",
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/no_ambient_clock/violating.rs"),
    );
    assert!(
        diags.is_empty(),
        "mdrr-obs owns the one ambient clock read: {diags:#?}"
    );
}

#[test]
fn no_ambient_clock_exempts_binaries() {
    let (diags, _) = lint_one(
        "no-ambient-clock-in-lib",
        "crates/bench/src/bin/fixture.rs",
        include_str!("fixtures/no_ambient_clock/violating.rs"),
    );
    assert!(diags.is_empty(), "bin sources are not lib code: {diags:#?}");
}

#[test]
fn safety_comments_fires_on_undocumented_unsafe() {
    let (diags, _) = lint_one(
        "safety-comments",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/safety_comments/violating.rs"),
    );
    assert_eq!(diags.len(), 3, "unexpected: {diags:#?}");
    let all = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(all.contains("unsafe block"));
    assert!(all.contains("unsafe impl"));
    assert!(all.contains("unsafe trait"));
}

#[test]
fn safety_comments_accepts_adjacent_safety_comments() {
    let (diags, _) = lint_one(
        "safety-comments",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/safety_comments/conforming.rs"),
    );
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

#[test]
fn crate_hygiene_fires_on_missing_attribute_and_bare_error_enum() {
    let (diags, _) = lint_one(
        "crate-hygiene",
        "crates/hygiene/src/lib.rs",
        include_str!("fixtures/crate_hygiene/violating.rs"),
    );
    assert_eq!(diags.len(), 2, "unexpected: {diags:#?}");
    assert!(diags
        .iter()
        .any(|d| d.message.contains("deny(missing_docs)")));
    assert!(diags.iter().any(|d| d.message.contains("FixtureError")
        && d.message.contains("`Display`")
        && d.message.contains("`std::error::Error`")));
}

#[test]
fn crate_hygiene_accepts_wired_crates() {
    let (diags, _) = lint_one(
        "crate-hygiene",
        "crates/hygiene/src/lib.rs",
        include_str!("fixtures/crate_hygiene/conforming.rs"),
    );
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

#[test]
fn no_deprecated_ingest_fires_outside_the_data_crate() {
    let (diags, _) = lint_one(
        "no-deprecated-ingest",
        "crates/stream/src/fixture.rs",
        include_str!("fixtures/no_deprecated_ingest/violating.rs"),
    );
    assert_eq!(diags.len(), 2, "unexpected: {diags:#?}");
    let all = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(all.contains("records"));
    assert!(all.contains("record_chunks"));
}

#[test]
fn no_deprecated_ingest_exempts_the_definition_site() {
    let (diags, _) = lint_one(
        "no-deprecated-ingest",
        "crates/data/src/fixture.rs",
        include_str!("fixtures/no_deprecated_ingest/violating.rs"),
    );
    assert!(diags.is_empty(), "the accessors' home crate is exempt");
}

#[test]
fn no_deprecated_ingest_accepts_the_supported_paths() {
    let (diags, _) = lint_one(
        "no-deprecated-ingest",
        "crates/stream/src/fixture.rs",
        include_str!("fixtures/no_deprecated_ingest/conforming.rs"),
    );
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

// ---------------------------------------------------------------------------
// spec-sync: fixtures, then true mutation tests on the real repo texts.
// ---------------------------------------------------------------------------

const FIX_DOC_OK: &str = include_str!("fixtures/spec_sync/conforming_FORMAT.md");
const FIX_IMPL_OK: &str = include_str!("fixtures/spec_sync/conforming_format.rs");
const FIX_DOC_BAD: &str = include_str!("fixtures/spec_sync/violating_FORMAT.md");
const FIX_IMPL_BAD: &str = include_str!("fixtures/spec_sync/violating_format.rs");

/// The real texts, baked in at compile time so the test cannot drift from
/// the tree it ships with.
const REAL_DOC: &str = include_str!("../../../docs/FORMAT.md");
const REAL_IMPL: &str = include_str!("../../store/src/format.rs");

fn messages(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn spec_sync_fixture_pair_agrees() {
    let diags = spec_sync::check_texts(FIX_DOC_OK, FIX_IMPL_OK);
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

#[test]
fn spec_sync_fires_on_a_drifted_document() {
    let all = messages(&spec_sync::check_texts(FIX_DOC_BAD, FIX_IMPL_OK));
    assert!(all.contains("magic hex spelling"), "got: {all}");
    assert!(all.contains("format version"), "got: {all}");
    assert!(all.contains("header-offset table"), "got: {all}");
    assert!(all.contains("should start at 20"), "got: {all}");
    assert!(all.contains("CRC-64 check vector"), "got: {all}");
}

#[test]
fn spec_sync_fires_on_a_drifted_implementation() {
    let all = messages(&spec_sync::check_texts(FIX_DOC_OK, FIX_IMPL_BAD));
    assert!(all.contains("magic bytes"), "got: {all}");
    assert!(all.contains("format version"), "got: {all}");
    assert!(all.contains("CRC-64 polynomial"), "got: {all}");
    assert!(all.contains("header-offset table"), "got: {all}");
}

#[test]
fn spec_sync_passes_on_the_real_tree() {
    let diags = spec_sync::check_texts(REAL_DOC, REAL_IMPL);
    assert!(diags.is_empty(), "the shipped spec drifted: {diags:#?}");
}

#[test]
fn spec_sync_names_a_flipped_format_version() {
    let mutated = REAL_IMPL.replace(
        "pub const FORMAT_VERSION: u32 = 1;",
        "pub const FORMAT_VERSION: u32 = 2;",
    );
    assert_ne!(
        mutated, REAL_IMPL,
        "the anchor constant moved; update this test"
    );
    let diags = spec_sync::check_texts(REAL_DOC, &mutated);
    let version: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.message.contains("format version"))
        .collect();
    assert_eq!(version.len(), 1, "got: {diags:#?}");
    assert!(version[0].message.contains("declares 1"));
    assert!(version[0].message.contains("defines 2"));
}

#[test]
fn spec_sync_names_flipped_magic_bytes() {
    let mutated = REAL_IMPL.replace(
        "pub const MAGIC: [u8; 8] = *b\"MDRRSNAP\";",
        "pub const MAGIC: [u8; 8] = *b\"MDRRSNAX\";",
    );
    assert_ne!(
        mutated, REAL_IMPL,
        "the anchor constant moved; update this test"
    );
    let all = messages(&spec_sync::check_texts(REAL_DOC, &mutated));
    assert!(all.contains("magic bytes drift"), "got: {all}");
    assert!(all.contains("MDRRSNAX"), "got: {all}");
}

#[test]
fn spec_sync_names_a_flipped_crc_polynomial() {
    let mutated = REAL_IMPL.replace("0xC96C_5795_D787_0F42", "0xC96C_5795_D787_0F43");
    assert_ne!(
        mutated, REAL_IMPL,
        "the anchor constant moved; update this test"
    );
    let all = messages(&spec_sync::check_texts(REAL_DOC, &mutated));
    assert!(all.contains("CRC-64 polynomial drift"), "got: {all}");
}

#[test]
fn spec_sync_names_a_flipped_check_vector() {
    let mutated = REAL_IMPL.replace("0x995D_C9BB_DF19_39FA", "0x995D_C9BB_DF19_39FB");
    assert_ne!(
        mutated, REAL_IMPL,
        "the anchor constant moved; update this test"
    );
    let all = messages(&spec_sync::check_texts(REAL_DOC, &mutated));
    assert!(all.contains("CRC-64 check vector drift"), "got: {all}");
}

#[test]
fn spec_sync_names_a_moved_offset_row() {
    let mutated = REAL_IMPL.replace(
        "//! 12      8     record count (u64)",
        "//! 16      8     record count (u64)",
    );
    assert_ne!(
        mutated, REAL_IMPL,
        "the module-doc table moved; update this test"
    );
    let all = messages(&spec_sync::check_texts(REAL_DOC, &mutated));
    assert!(all.contains("header-offset table drift"), "got: {all}");
}
