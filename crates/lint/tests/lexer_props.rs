//! Property tests for the lint lexer: it must be *total* (any byte soup
//! lexes without panicking) and *lossless* (token spans tile the input
//! exactly, so concatenating token texts round-trips the source).  The
//! vendored proptest shim has no string strategies, so inputs are built
//! from fragment indices and raw byte vectors.

use mdrr_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// Fragments chosen to collide interestingly when concatenated: every
/// token class, plus unterminated openers and stray closers.
const FRAGMENTS: &[&str] = &[
    "fn main() {",
    "}",
    "let x = 1;",
    "// line comment\n",
    "/* block /* nested */ */",
    "r#\"raw \" string\"#",
    "r##\"deeper \"# still\"##",
    "\"str \\\" esc\"",
    "'a'",
    "'\\n'",
    "'static",
    "b'x'",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "1.0f64",
    "0xFF_u32",
    "1..10",
    "ident_a",
    "r#match",
    "=> :: .. ..= #![deny(missing_docs)]",
    "\u{1F600}",
    "é∂å",
    "\n",
    " ",
    "\t",
    "unsafe {",
    "*/",
    "\"unterminated",
    "r#\"unterminated",
    "/* unterminated",
    "'",
];

/// Concatenates the indexed fragments into one source string.
fn build(idxs: &[usize]) -> String {
    idxs.iter()
        .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
        .collect()
}

/// Spans must start at 0, be non-empty, abut exactly, and end at EOF —
/// and every span must slice cleanly (char-boundary safe).
fn assert_tiles(src: &str) {
    let tokens = lex(src);
    let mut pos = 0usize;
    for t in &tokens {
        prop_assert_eq!(t.start, pos, "gap or overlap at byte {}", pos);
        prop_assert!(t.end > t.start, "empty token at byte {}", pos);
        pos = t.end;
    }
    prop_assert_eq!(pos, src.len(), "tokens do not reach EOF");
    let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
    prop_assert_eq!(rebuilt, src, "token texts do not round-trip the source");
}

proptest! {
    /// Any concatenation of fragments lexes totally and round-trips.
    #[test]
    fn fragment_soup_lexes_totally(idxs in prop::collection::vec(0usize..31, 0..40)) {
        let src = build(&idxs);
        assert_tiles(&src);
    }

    /// Any byte soup (lossily decoded) lexes totally and round-trips —
    /// no panic on inputs that are not remotely Rust.
    #[test]
    fn byte_soup_lexes_totally(bytes in prop::collection::vec(0u8..=255, 0..200)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_tiles(&src);
    }

    /// Line/column bookkeeping is monotone: lines never decrease, and a
    /// token on a fresh line starts at column 1 or later.
    #[test]
    fn positions_are_monotone(idxs in prop::collection::vec(0usize..31, 0..40)) {
        let src = build(&idxs);
        let mut last_line = 1u32;
        for t in lex(&src) {
            prop_assert!(t.line >= last_line, "line went backwards");
            prop_assert!(t.col >= 1, "columns are 1-based");
            last_line = t.line;
        }
    }
}

#[test]
fn significant_filter_drops_exactly_trivia() {
    let src = "let a = 1; // c\n/* b */ \"s\" 'c' r#\"raw\"#";
    for t in lex(src) {
        let trivia = matches!(
            t.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        );
        assert_eq!(t.kind.is_significant(), !trivia, "token {:?}", t);
    }
}
