//! Property tests pinning symbol-resolution round-trips: for any
//! generated module tree, a function *placed* at a path and *named* by
//! that path (through a `use` import, a fully qualified call, or an
//! inline-`mod` crate-relative path) resolves back to exactly that
//! definition — no misses, no same-named strangers.

use mdrr_lint::sem::callgraph::CallGraph;
use mdrr_lint::sem::symbols::{Callee, SymbolTable};
use mdrr_lint::Workspace;
use proptest::prelude::*;

/// Module-name alphabet (small on purpose: collisions between runs are
/// the interesting case).
const MODS: &[&str] = &["alpha", "beta", "gamma", "delta"];

fn module_path(idxs: &[usize]) -> Vec<&'static str> {
    idxs.iter().map(|&i| MODS[i % MODS.len()]).collect()
}

/// Builds the target file at `crates/a/src/<path>/mod.rs` (or lib.rs at
/// the crate root) defining `target_fn`.
fn target_file(path: &[&str]) -> (String, String) {
    let rel = if path.is_empty() {
        "crates/a/src/lib.rs".to_string()
    } else {
        format!("crates/a/src/{}/mod.rs", path.join("/"))
    };
    (rel, "pub fn target_fn(x: u64) -> u64 { x }\n".to_string())
}

fn build(files: Vec<(&str, &str)>) -> (Workspace, SymbolTable) {
    let ws = Workspace::in_memory(files, vec![]);
    let st = SymbolTable::build(&ws);
    (ws, st)
}

proptest! {
    /// `use mdrr_a::<path>::target_fn; target_fn(…)` resolves to the
    /// one definition at `<path>`, wherever the generator put it —
    /// even with a same-named decoy in the caller's own crate at a
    /// different module path.
    #[test]
    fn use_import_roundtrip(idxs in prop::collection::vec(0usize..4, 0..3)) {
        let path = module_path(&idxs);
        let (target_rel, target_src) = target_file(&path);
        let import = std::iter::once("mdrr_a")
            .chain(path.iter().copied())
            .chain(std::iter::once("target_fn"))
            .collect::<Vec<_>>()
            .join("::");
        let caller_src = format!(
            "use {import};\npub fn caller() -> u64 {{ target_fn(1) }}\n"
        );
        let decoy_rel = "crates/b/src/decoy_mod/mod.rs";
        let (ws, st) = build(vec![
            (&target_rel, &target_src),
            ("crates/b/src/lib.rs", &caller_src),
            (decoy_rel, "pub fn target_fn(x: u64) -> u64 { x + 1 }\n"),
        ]);
        let target = st
            .fns
            .iter()
            .position(|f| f.name == "target_fn" && f.rel == target_rel)
            .expect("target indexed");
        let caller = st.fns.iter().position(|f| f.name == "caller").expect("caller indexed");
        let resolved = st.resolve(caller, &Callee::Plain("target_fn".into()));
        prop_assert_eq!(resolved, vec![target], "path {:?}", path);
        let _ = ws;
    }

    /// A fully qualified call `mdrr_a::<path>::target_fn(…)` produces
    /// exactly one call-graph edge, to the placed definition.
    #[test]
    fn qualified_call_roundtrip(idxs in prop::collection::vec(0usize..4, 0..3)) {
        let path = module_path(&idxs);
        let (target_rel, target_src) = target_file(&path);
        let qualified = std::iter::once("mdrr_a")
            .chain(path.iter().copied())
            .collect::<Vec<_>>()
            .join("::");
        let caller_src = format!(
            "pub fn caller() -> u64 {{ {qualified}::target_fn(1) }}\n"
        );
        let (ws, st) = build(vec![
            (&target_rel, &target_src),
            ("crates/b/src/lib.rs", &caller_src),
        ]);
        let g = CallGraph::build(&ws, &st);
        let target = st
            .fns
            .iter()
            .position(|f| f.name == "target_fn")
            .expect("target indexed");
        let caller = st.fns.iter().position(|f| f.name == "caller").expect("caller indexed");
        let callees: Vec<_> = g
            .edges
            .get(&caller)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        prop_assert_eq!(callees, vec![target], "path {:?}", path);
    }

    /// Inline `mod` nesting composes with crate-relative calls: a fn
    /// buried `depth` inline modules deep is reachable via
    /// `crate::<mods>::target_fn(…)`.
    #[test]
    fn inline_mod_roundtrip(idxs in prop::collection::vec(0usize..4, 0..3)) {
        let path = module_path(&idxs);
        let mut src = String::new();
        for m in &path {
            src.push_str(&format!("pub mod {m} {{\n"));
        }
        src.push_str("pub fn target_fn(x: u64) -> u64 { x }\n");
        for _ in &path {
            src.push_str("}\n");
        }
        let qualified = std::iter::once("crate")
            .chain(path.iter().copied())
            .collect::<Vec<_>>()
            .join("::");
        src.push_str(&format!(
            "pub fn caller() -> u64 {{ {qualified}::target_fn(1) }}\n"
        ));
        let (ws, st) = build(vec![("crates/a/src/lib.rs", &src)]);
        let g = CallGraph::build(&ws, &st);
        let target = st
            .fns
            .iter()
            .position(|f| f.name == "target_fn")
            .expect("target indexed");
        let expected: Vec<String> = path.iter().map(|s| s.to_string()).collect();
        prop_assert_eq!(&st.fns[target].module, &expected, "module path recovered");
        let caller = st.fns.iter().position(|f| f.name == "caller").expect("caller indexed");
        let callees: Vec<_> = g
            .edges
            .get(&caller)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        prop_assert_eq!(callees, vec![target], "path {:?}", path);
    }
}
