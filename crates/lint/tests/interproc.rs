//! Mutation tests for the interprocedural analyses: every seeded
//! violating call chain must be detected with an *exact* finding count,
//! every conforming variant must stay silent, and the privacy-taint
//! analysis must fire on a raw-record→snapshot chain injected into the
//! **real** workspace (then vanish when the injection is removed) — so
//! the analyses are proven live against the tree they actually guard.

use mdrr_lint::engine::run_filtered;
use mdrr_lint::rules::all_rules;
use mdrr_lint::{Diagnostic, Workspace};
use std::path::Path;

fn lint(rule: &str, files: Vec<(&str, &str)>) -> Vec<Diagnostic> {
    let ws = Workspace::in_memory(files, vec![]);
    run_filtered(&ws, &all_rules(), Some(&[rule.to_string()])).diagnostics
}

const DATA_STUB: &str = include_str!("fixtures/interproc/data_stub.rs");
const STORE_STUB: &str = include_str!("fixtures/interproc/store_stub.rs");
const PROTOCOLS_STUB: &str = include_str!("fixtures/interproc/protocols_stub.rs");

#[test]
fn taint_fires_once_on_a_violating_three_file_chain() {
    let diags = lint(
        "privacy-taint",
        vec![
            ("crates/data/src/lib.rs", DATA_STUB),
            ("crates/store/src/lib.rs", STORE_STUB),
            (
                "crates/eval/src/collect.rs",
                include_str!("fixtures/interproc/taint_chain_a.rs"),
            ),
            (
                "crates/stream/src/forward.rs",
                include_str!("fixtures/interproc/taint_chain_b.rs"),
            ),
            (
                "crates/store/src/persist.rs",
                include_str!("fixtures/interproc/taint_chain_c.rs"),
            ),
        ],
    );
    assert_eq!(diags.len(), 1, "exactly one finding: {diags:?}");
    let d = &diags[0];
    assert_eq!(d.file, "crates/store/src/persist.rs");
    assert!(
        d.message.contains("mdrr_eval::collect::collect_counts")
            && d.message.contains("mdrr_stream::forward::forward_records")
            && d.message.contains("mdrr_store::persist::persist_view")
            && d.message.contains("mdrr_store::Snapshot::new"),
        "chain names all three links and the sink: {}",
        d.message
    );
}

#[test]
fn taint_stays_silent_when_the_chain_passes_a_sanitizer() {
    let diags = lint(
        "privacy-taint",
        vec![
            ("crates/data/src/lib.rs", DATA_STUB),
            ("crates/store/src/lib.rs", STORE_STUB),
            ("crates/protocols/src/lib.rs", PROTOCOLS_STUB),
            (
                "crates/eval/src/collect.rs",
                include_str!("fixtures/interproc/taint_chain_a.rs"),
            ),
            (
                "crates/stream/src/forward.rs",
                include_str!("fixtures/interproc/taint_chain_b.rs"),
            ),
            (
                "crates/store/src/persist.rs",
                include_str!("fixtures/interproc/taint_sanitized_c.rs"),
            ),
        ],
    );
    assert_eq!(diags.len(), 0, "sanitized chain is clean: {diags:?}");
}

#[test]
fn taint_reports_a_diamond_exactly_once() {
    let diags = lint(
        "privacy-taint",
        vec![
            ("crates/data/src/lib.rs", DATA_STUB),
            ("crates/store/src/lib.rs", STORE_STUB),
            (
                "crates/stream/src/diamond.rs",
                include_str!("fixtures/interproc/taint_diamond.rs"),
            ),
        ],
    );
    assert_eq!(
        diags.len(),
        1,
        "one sink site, one finding — paths don't multiply: {diags:?}"
    );
    assert_eq!(diags[0].file, "crates/stream/src/diamond.rs");
}

#[test]
fn taint_terminates_on_recursive_cycles_and_still_fires() {
    let diags = lint(
        "privacy-taint",
        vec![
            ("crates/data/src/lib.rs", DATA_STUB),
            ("crates/store/src/lib.rs", STORE_STUB),
            (
                "crates/stream/src/cycle.rs",
                include_str!("fixtures/interproc/taint_cycle.rs"),
            ),
        ],
    );
    assert_eq!(diags.len(), 1, "cycle converges to one finding: {diags:?}");
    assert!(diags[0].message.contains("mdrr_stream::cycle::ping"));
}

#[test]
fn taint_flags_raw_prints_in_binaries_but_not_metadata() {
    let diags = lint(
        "privacy-taint",
        vec![
            ("crates/data/src/lib.rs", DATA_STUB),
            (
                "crates/stream/src/bin/stream_sim.rs",
                include_str!("fixtures/interproc/taint_bin_print.rs"),
            ),
        ],
    );
    assert_eq!(
        diags.len(),
        1,
        "raw view print flagged, len() print clean: {diags:?}"
    );
    assert!(diags[0].message.contains("println"));
}

#[test]
fn panic_reachability_crosses_crates_but_skips_the_file_rule_scope() {
    let violating = vec![
        (
            "crates/store/src/api.rs",
            include_str!("fixtures/interproc/panic_store_api.rs"),
        ),
        (
            "crates/math/src/lib.rs",
            include_str!("fixtures/interproc/panic_violating.rs"),
        ),
    ];
    let diags = lint("panic-reachability", violating);
    // Exactly one finding: the helper's unwrap.  The unwrap inside the
    // store file itself belongs to file-scoped no-panic-paths.
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].file, "crates/math/src/lib.rs");
    assert!(
        diags[0].message.contains("mdrr_store::api::load")
            && diags[0].message.contains("mdrr_math::checked_div"),
        "chain names root and helper: {}",
        diags[0].message
    );

    let conforming = vec![
        (
            "crates/store/src/api.rs",
            include_str!("fixtures/interproc/panic_store_api.rs"),
        ),
        (
            "crates/math/src/lib.rs",
            include_str!("fixtures/interproc/panic_conforming.rs"),
        ),
    ];
    assert_eq!(lint("panic-reachability", conforming).len(), 0);
}

#[test]
fn determinism_follows_the_release_chain() {
    let violating = vec![
        (
            "crates/protocols/src/release.rs",
            include_str!("fixtures/interproc/det_release_root.rs"),
        ),
        (
            "crates/core/src/norm.rs",
            include_str!("fixtures/interproc/det_violating.rs"),
        ),
    ];
    let diags = lint("determinism", violating);
    // Exactly two findings: the HashMap and the thread_rng draw.
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("HashMap")));
    assert!(diags.iter().any(|d| d.message.contains("thread_rng")));
    assert!(diags.iter().all(|d| d
        .message
        .contains("mdrr_protocols::release::release_from_counts")));

    let conforming = vec![
        (
            "crates/protocols/src/release.rs",
            include_str!("fixtures/interproc/det_release_root.rs"),
        ),
        (
            "crates/core/src/norm.rs",
            include_str!("fixtures/interproc/det_conforming.rs"),
        ),
    ];
    assert_eq!(lint("determinism", conforming).len(), 0);
}

#[test]
fn unreachable_hashmap_is_not_a_determinism_finding() {
    // The same HashMap helper with no root calling it: out of scope.
    let diags = lint(
        "determinism",
        vec![(
            "crates/core/src/norm.rs",
            include_str!("fixtures/interproc/det_violating.rs"),
        )],
    );
    assert_eq!(diags.len(), 0, "no root, no reach, no finding: {diags:?}");
}

/// The acceptance-criteria test: the real tree is taint-clean, and a
/// deliberately injected raw-record→snapshot chain is caught — the
/// injection lives only inside this test's in-memory copy, so the
/// "revert" is structural.
#[test]
fn real_tree_is_clean_and_a_seeded_leak_is_caught() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate sits two levels under the workspace root")
        .to_path_buf();
    let mut ws = Workspace::discover(&root).expect("discover real workspace");
    let rules = all_rules();
    let only = ["privacy-taint".to_string()];
    let clean = run_filtered(&ws, &rules, Some(&only));
    assert_eq!(
        clean.diagnostics.len(),
        0,
        "real tree must be taint-clean: {:?}",
        clean.diagnostics
    );

    ws.push_file(
        "crates/stream/src/debug_dump.rs",
        "use mdrr_data::Dataset;\n\
         use mdrr_store::Snapshot;\n\
         pub fn debug_dump(ds: &Dataset) -> Vec<u8> {\n\
             let snap = Snapshot::new(ds.view().as_slice());\n\
             snap.to_bytes()\n\
         }\n",
    );
    let leaked = run_filtered(&ws, &rules, Some(&only));
    assert_eq!(
        leaked.diagnostics.len(),
        1,
        "the seeded raw-record→snapshot chain must be the one finding: {:?}",
        leaked.diagnostics
    );
    let d = &leaked.diagnostics[0];
    assert_eq!(d.file, "crates/stream/src/debug_dump.rs");
    assert!(
        d.message.contains("debug_dump") && d.message.contains("Snapshot::new"),
        "finding names the injected chain and the sink: {}",
        d.message
    );
}

/// The other two analyses are also live against the real tree: seeding
/// a panic chain behind a store pub API and a HashMap behind a release
/// root both produce findings.
#[test]
fn real_tree_seeded_panic_and_hashmap_chains_are_caught() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let rules = all_rules();

    let mut ws = Workspace::discover(&root).expect("discover real workspace");
    ws.push_file(
        "crates/math/src/debug_unwrap.rs",
        "pub fn halve(n: u64) -> u64 { n.checked_div(2).unwrap() }\n",
    );
    ws.push_file(
        "crates/store/src/debug_api.rs",
        "use mdrr_math::debug_unwrap::halve;\n\
         pub fn load_half(n: u64) -> u64 { halve(n) }\n",
    );
    let only = ["panic-reachability".to_string()];
    let out = run_filtered(&ws, &rules, Some(&only));
    assert_eq!(
        out.diagnostics.len(),
        1,
        "seeded unwrap behind a store pub API: {:?}",
        out.diagnostics
    );
    assert_eq!(out.diagnostics[0].file, "crates/math/src/debug_unwrap.rs");

    let mut ws = Workspace::discover(&root).expect("discover real workspace");
    ws.push_file(
        "crates/core/src/debug_order.rs",
        "use std::collections::HashMap;\n\
         pub fn jumble(counts: &[u64]) -> u64 {\n\
             let mut m = HashMap::new();\n\
             for (i, &c) in counts.iter().enumerate() { m.insert(i, c); }\n\
             m.values().sum()\n\
         }\n",
    );
    ws.push_file(
        "crates/protocols/src/debug_release.rs",
        "use mdrr_core::debug_order::jumble;\n\
         pub fn release_from_counts(counts: &[u64]) -> u64 { jumble(counts) }\n",
    );
    let only = ["determinism".to_string()];
    let out = run_filtered(&ws, &rules, Some(&only));
    assert_eq!(
        out.diagnostics.len(),
        1,
        "seeded HashMap behind a release root: {:?}",
        out.diagnostics
    );
    assert_eq!(out.diagnostics[0].file, "crates/core/src/debug_order.rs");
}
