//! Rustc-style diagnostics: structured findings, terminal rendering, and a
//! machine-readable JSON report for CI artifacts.

use std::fmt::Write as _;

/// How severe a finding is.  Rule findings are warnings promoted to a
/// failing exit by `--deny-warnings`; malformed lint directives (an
/// `allow` without a reason, an unbalanced region) are always errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A contract violation; fails the run under `--deny-warnings`.
    Warning,
    /// A hard error; always fails the run.
    Error,
}

impl Severity {
    /// The lowercase label rustc would print.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a file position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that produced this finding (its suppressible id).
    pub rule: String,
    /// Warning (deniable) or error (always fatal).
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column in characters.
    pub col: u32,
    /// The one-line statement of what is wrong.
    pub message: String,
    /// The source line the finding sits on, if available.
    pub snippet: Option<String>,
    /// How many characters of the snippet to underline (minimum 1).
    pub span_chars: usize,
    /// An optional `= help:` trailer (how to fix or suppress).
    pub help: Option<String>,
}

impl Diagnostic {
    /// A finding with no snippet context (file-level or cross-file rules).
    pub fn file_level(rule: &str, file: &str, message: String) -> Self {
        Diagnostic {
            rule: rule.to_string(),
            severity: Severity::Warning,
            file: file.to_string(),
            line: 1,
            col: 1,
            message,
            snippet: None,
            span_chars: 1,
            help: None,
        }
    }

    /// Attaches a `= help:` trailer.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Renders the finding in the familiar rustc layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}[{}]: {}",
            self.severity.label(),
            self.rule,
            self.message
        );
        let _ = writeln!(out, "  --> {}:{}:{}", self.file, self.line, self.col);
        if let Some(snippet) = &self.snippet {
            let gutter = format!("{}", self.line);
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(out, "{pad} |");
            let _ = writeln!(out, "{gutter} | {}", snippet.trim_end());
            let underline_at = (self.col as usize).saturating_sub(1);
            let _ = writeln!(
                out,
                "{pad} | {}{}",
                " ".repeat(underline_at),
                "^".repeat(self.span_chars.max(1))
            );
        }
        if let Some(help) = &self.help {
            let _ = writeln!(out, "  = help: {help}");
        }
        out
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The report format version: bump when the JSON shape changes, so CI
/// consumers can diff reports across runs meaningfully.
pub const REPORT_VERSION: u32 = 1;

/// Serializes a run as the JSON report uploaded from CI.  Hand-rolled:
/// the linter is deliberately dependency-free.  The report is
/// deterministic given identical findings and timings: findings arrive
/// pre-sorted by (file, line, col, rule) from the engine, and rule
/// times are emitted in registry order.
pub fn report_json(outcome: &crate::engine::Outcome) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"report_version\": {REPORT_VERSION},");
    let _ = writeln!(out, "  \"files_scanned\": {},", outcome.files_scanned);
    let _ = writeln!(out, "  \"suppressed\": {},", outcome.suppressed);
    let _ = writeln!(out, "  \"total_nanos\": {},", outcome.total_nanos);
    let _ = writeln!(out, "  \"rule_times\": [");
    for (i, (rule, nanos)) in outcome.rule_times.iter().enumerate() {
        let comma = if i + 1 == outcome.rule_times.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"nanos\": {nanos}}}{comma}",
            json_escape(rule),
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"findings\": [");
    let diagnostics = &outcome.diagnostics;
    for (i, d) in diagnostics.iter().enumerate() {
        let comma = if i + 1 == diagnostics.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"col\": {}, \"message\": \"{}\"}}{comma}",
            json_escape(&d.rule),
            d.severity.label(),
            json_escape(&d.file),
            d.line,
            d.col,
            json_escape(&d.message),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_the_rustc_shape() {
        let d = Diagnostic {
            rule: "no-panic-paths".into(),
            severity: Severity::Warning,
            file: "crates/store/src/format.rs".into(),
            line: 12,
            col: 9,
            message: "`.unwrap()` on the decode path".into(),
            snippet: Some("        x.unwrap();".into()),
            span_chars: 6,
            help: Some("propagate a typed error".into()),
        };
        let text = d.render();
        assert!(text.starts_with("warning[no-panic-paths]:"));
        assert!(text.contains("--> crates/store/src/format.rs:12:9"));
        assert!(text.contains("^^^^^^"));
        assert!(text.contains("= help:"));
    }

    #[test]
    fn report_json_is_versioned_timed_and_round_trips_quotes() {
        let d = Diagnostic::file_level("spec-sync", "docs/FORMAT.md", "magic \"drift\"".into());
        let outcome = crate::engine::Outcome {
            diagnostics: vec![d],
            suppressed: 1,
            files_scanned: 3,
            rule_times: vec![("spec-sync".into(), 1234)],
            total_nanos: 5678,
        };
        let json = report_json(&outcome);
        assert!(json.contains("\"report_version\": 1"));
        assert!(json.contains("\\\"drift\\\""));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("{\"rule\": \"spec-sync\", \"nanos\": 1234}"));
        assert!(json.contains("\"total_nanos\": 5678"));
    }

    #[test]
    fn report_json_is_deterministic_for_identical_outcomes() {
        let make = || crate::engine::Outcome {
            diagnostics: vec![Diagnostic::file_level("a-rule", "b.rs", "msg".into())],
            suppressed: 0,
            files_scanned: 1,
            rule_times: vec![("a-rule".into(), 7)],
            total_nanos: 9,
        };
        assert_eq!(report_json(&make()), report_json(&make()));
    }
}
