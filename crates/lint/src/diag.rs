//! Rustc-style diagnostics: structured findings, terminal rendering, and a
//! machine-readable JSON report for CI artifacts.

use std::fmt::Write as _;

/// How severe a finding is.  Rule findings are warnings promoted to a
/// failing exit by `--deny-warnings`; malformed lint directives (an
/// `allow` without a reason, an unbalanced region) are always errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A contract violation; fails the run under `--deny-warnings`.
    Warning,
    /// A hard error; always fails the run.
    Error,
}

impl Severity {
    /// The lowercase label rustc would print.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a file position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that produced this finding (its suppressible id).
    pub rule: String,
    /// Warning (deniable) or error (always fatal).
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column in characters.
    pub col: u32,
    /// The one-line statement of what is wrong.
    pub message: String,
    /// The source line the finding sits on, if available.
    pub snippet: Option<String>,
    /// How many characters of the snippet to underline (minimum 1).
    pub span_chars: usize,
    /// An optional `= help:` trailer (how to fix or suppress).
    pub help: Option<String>,
}

impl Diagnostic {
    /// A finding with no snippet context (file-level or cross-file rules).
    pub fn file_level(rule: &str, file: &str, message: String) -> Self {
        Diagnostic {
            rule: rule.to_string(),
            severity: Severity::Warning,
            file: file.to_string(),
            line: 1,
            col: 1,
            message,
            snippet: None,
            span_chars: 1,
            help: None,
        }
    }

    /// Attaches a `= help:` trailer.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Renders the finding in the familiar rustc layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}[{}]: {}",
            self.severity.label(),
            self.rule,
            self.message
        );
        let _ = writeln!(out, "  --> {}:{}:{}", self.file, self.line, self.col);
        if let Some(snippet) = &self.snippet {
            let gutter = format!("{}", self.line);
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(out, "{pad} |");
            let _ = writeln!(out, "{gutter} | {}", snippet.trim_end());
            let underline_at = (self.col as usize).saturating_sub(1);
            let _ = writeln!(
                out,
                "{pad} | {}{}",
                " ".repeat(underline_at),
                "^".repeat(self.span_chars.max(1))
            );
        }
        if let Some(help) = &self.help {
            let _ = writeln!(out, "  = help: {help}");
        }
        out
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes findings as the JSON report uploaded from CI.  Hand-rolled:
/// the linter is deliberately dependency-free.
pub fn report_json(diagnostics: &[Diagnostic], files_scanned: usize, suppressed: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"suppressed\": {suppressed},");
    let _ = writeln!(out, "  \"findings\": [");
    for (i, d) in diagnostics.iter().enumerate() {
        let comma = if i + 1 == diagnostics.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"col\": {}, \"message\": \"{}\"}}{comma}",
            json_escape(&d.rule),
            d.severity.label(),
            json_escape(&d.file),
            d.line,
            d.col,
            json_escape(&d.message),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_the_rustc_shape() {
        let d = Diagnostic {
            rule: "no-panic-paths".into(),
            severity: Severity::Warning,
            file: "crates/store/src/format.rs".into(),
            line: 12,
            col: 9,
            message: "`.unwrap()` on the decode path".into(),
            snippet: Some("        x.unwrap();".into()),
            span_chars: 6,
            help: Some("propagate a typed error".into()),
        };
        let text = d.render();
        assert!(text.starts_with("warning[no-panic-paths]:"));
        assert!(text.contains("--> crates/store/src/format.rs:12:9"));
        assert!(text.contains("^^^^^^"));
        assert!(text.contains("= help:"));
    }

    #[test]
    fn report_json_is_valid_enough_to_round_trip_quotes() {
        let d = Diagnostic::file_level("spec-sync", "docs/FORMAT.md", "magic \"drift\"".into());
        let json = report_json(&[d], 3, 1);
        assert!(json.contains("\\\"drift\\\""));
        assert!(json.contains("\"files_scanned\": 3"));
    }
}
