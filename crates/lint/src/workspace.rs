//! Workspace discovery: find the root, enumerate member crates from the
//! root `Cargo.toml`, and load every Rust source file (plus the auxiliary
//! documents cross-checked by spec-sync) into lexed [`SourceFile`]s.

use crate::sem::SemModel;
use crate::source::{FileKind, SourceFile};
use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// One member crate of the workspace.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from the member's `Cargo.toml` (`mdrr-store`, …).
    pub name: String,
    /// Workspace-relative directory (`crates/store`, or `.` for the root
    /// package).
    pub rel_dir: String,
    /// Whether the member lives under `vendor/` (vendored dependency
    /// shims are exempt from repo contracts).
    pub is_vendor: bool,
}

/// Everything the rules see: the member crates, their lexed sources, and
/// auxiliary (non-Rust) documents like `docs/FORMAT.md`.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute path of the workspace root.
    pub root: PathBuf,
    /// Member crates, including the root package.
    pub crates: Vec<CrateInfo>,
    /// Every lexed Rust source file of every non-vendor member.
    pub files: Vec<SourceFile>,
    /// Auxiliary text documents by workspace-relative path.
    pub aux: BTreeMap<String, String>,
    /// Lazily built semantic model (symbol table + call graph), shared
    /// by the interprocedural rules so the tree is parsed once.
    sem: OnceCell<SemModel>,
}

impl Workspace {
    /// Walks up from `start` to the first directory whose `Cargo.toml`
    /// declares `[workspace]`.
    pub fn find_root(start: &Path) -> Option<PathBuf> {
        let mut dir = start.to_path_buf();
        loop {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
            if !dir.pop() {
                return None;
            }
        }
    }

    /// Discovers and loads the workspace rooted at `root`.
    pub fn discover(root: &Path) -> Result<Workspace, String> {
        let manifest_path = root.join("Cargo.toml");
        let manifest = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let mut crates = Vec::new();
        // The root package, if the root manifest declares one.
        if let Some(name) = package_name(&manifest) {
            crates.push(CrateInfo {
                name,
                rel_dir: ".".to_string(),
                is_vendor: false,
            });
        }
        for member in parse_members(&manifest) {
            let member_manifest = root.join(&member).join("Cargo.toml");
            let is_vendor = member.starts_with("vendor/");
            let name = fs::read_to_string(&member_manifest)
                .ok()
                .and_then(|t| package_name(&t))
                .unwrap_or_else(|| member.clone());
            crates.push(CrateInfo {
                name,
                rel_dir: member,
                is_vendor,
            });
        }
        let mut ws = Workspace {
            root: root.to_path_buf(),
            crates,
            files: Vec::new(),
            aux: BTreeMap::new(),
            sem: OnceCell::new(),
        };
        let crate_list = ws.crates.clone();
        for info in &crate_list {
            if info.is_vendor {
                continue;
            }
            let base = if info.rel_dir == "." {
                root.to_path_buf()
            } else {
                root.join(&info.rel_dir)
            };
            for (sub, kind) in [
                ("src", FileKind::LibSrc),
                ("tests", FileKind::Test),
                ("benches", FileKind::Bench),
                ("examples", FileKind::Example),
            ] {
                ws.load_tree(&base.join(sub), info, kind)?;
            }
        }
        // Stable order: path-sorted, so diagnostics are deterministic.
        ws.files.sort_by(|a, b| a.rel.cmp(&b.rel));
        for doc in ["docs/FORMAT.md", "docs/LINTS.md"] {
            if let Ok(text) = fs::read_to_string(root.join(doc)) {
                ws.aux.insert(doc.to_string(), text);
            }
        }
        Ok(ws)
    }

    /// A test constructor: an in-memory workspace from `(rel_path, text)`
    /// pairs plus auxiliary documents — the mutation fixtures run rules
    /// against synthetic trees without touching the filesystem.
    pub fn in_memory(sources: Vec<(&str, &str)>, aux: Vec<(&str, &str)>) -> Workspace {
        let mut crates: Vec<CrateInfo> = Vec::new();
        let mut files = Vec::new();
        for (rel, text) in sources {
            let (crate_name, rel_dir) = infer_crate(rel);
            if !crates.iter().any(|c| c.name == crate_name) {
                crates.push(CrateInfo {
                    name: crate_name.clone(),
                    rel_dir,
                    is_vendor: false,
                });
            }
            files.push(SourceFile::parse(
                rel,
                &crate_name,
                infer_kind(rel),
                text.to_string(),
            ));
        }
        Workspace {
            root: PathBuf::from("."),
            crates,
            files,
            aux: aux
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            sem: OnceCell::new(),
        }
    }

    /// The semantic model, built on first use and cached.
    pub fn sem(&self) -> &SemModel {
        self.sem.get_or_init(|| SemModel::build(self))
    }

    /// Appends a synthetic in-memory file to an already-built workspace
    /// and drops the cached semantic model — the seeded-violation tests
    /// use this to inject a leaking call chain into the real tree.
    pub fn push_file(&mut self, rel: &str, text: &str) {
        let (crate_name, _) = infer_crate(rel);
        self.files.push(SourceFile::parse(
            rel,
            &crate_name,
            infer_kind(rel),
            text.to_string(),
        ));
        self.files.sort_by(|a, b| a.rel.cmp(&b.rel));
        self.sem = OnceCell::new();
    }

    /// Recursively loads `.rs` files under `dir` as `kind` files of
    /// `info`, skipping `fixtures/` corpora and `target/`.
    fn load_tree(&mut self, dir: &Path, info: &CrateInfo, kind: FileKind) -> Result<(), String> {
        let entries = match fs::read_dir(dir) {
            Ok(e) => e,
            Err(_) => return Ok(()), // missing subtree: nothing to lint
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if name == "fixtures" || name == "target" {
                    continue;
                }
                let child_kind = if kind == FileKind::LibSrc && name == "bin" {
                    FileKind::BinSrc
                } else {
                    kind
                };
                self.load_tree(&path, info, child_kind)?;
            } else if name.ends_with(".rs") {
                let text = fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                let rel = path
                    .strip_prefix(&self.root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let file_kind = if kind == FileKind::LibSrc && name == "main.rs" {
                    FileKind::BinSrc
                } else {
                    kind
                };
                self.files
                    .push(SourceFile::parse(&rel, &info.name, file_kind, text));
            }
        }
        Ok(())
    }

    /// The lexed file at workspace-relative path `rel`, if loaded.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// All files belonging to the crate named `name`.
    pub fn crate_files<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SourceFile> + 'a {
        self.files.iter().filter(move |f| f.crate_name == name)
    }
}

/// Extracts `name = "…"` from a `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Extracts the `members = [ … ]` list from the workspace manifest.
fn parse_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('#') || line.starts_with("##") {
            continue;
        }
        if !in_members {
            if line.starts_with("members") && line.contains('[') {
                in_members = true;
            }
            continue;
        }
        if line.starts_with(']') {
            break;
        }
        let entry = line.trim_matches(|c: char| c == '"' || c == ',' || c.is_whitespace());
        if !entry.is_empty() && !members.contains(&entry.to_string()) {
            members.push(entry.to_string());
        }
    }
    members
}

/// Guesses `(crate name, crate dir)` from a workspace-relative path, for
/// in-memory test workspaces (`crates/store/src/x.rs` → `mdrr-store`).
fn infer_crate(rel: &str) -> (String, String) {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.first() == Some(&"crates") && parts.len() > 1 {
        (format!("mdrr-{}", parts[1]), format!("crates/{}", parts[1]))
    } else {
        ("mdrr".to_string(), ".".to_string())
    }
}

/// Guesses the [`FileKind`] from a workspace-relative path.
fn infer_kind(rel: &str) -> FileKind {
    if rel.contains("/src/bin/") || rel.ends_with("/main.rs") {
        FileKind::BinSrc
    } else if rel.contains("/tests/") || rel.starts_with("tests/") {
        FileKind::Test
    } else if rel.contains("/benches/") {
        FileKind::Bench
    } else if rel.contains("/examples/") || rel.starts_with("examples/") {
        FileKind::Example
    } else {
        FileKind::LibSrc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_and_package_parsing() {
        let manifest = r#"
[workspace]
members = [
    "crates/math",
    "crates/store",
    "vendor/rand",
]

[package]
name = "mdrr"
"#;
        assert_eq!(
            parse_members(manifest),
            vec!["crates/math", "crates/store", "vendor/rand"]
        );
        assert_eq!(package_name(manifest).as_deref(), Some("mdrr"));
    }

    #[test]
    fn in_memory_workspaces_infer_crates_and_kinds() {
        let ws = Workspace::in_memory(
            vec![
                ("crates/store/src/format.rs", "fn a() {}"),
                ("crates/store/tests/t.rs", "fn b() {}"),
            ],
            vec![("docs/FORMAT.md", "# spec")],
        );
        let f = ws.file("crates/store/src/format.rs").unwrap();
        assert_eq!(f.crate_name, "mdrr-store");
        assert_eq!(f.kind, FileKind::LibSrc);
        assert_eq!(
            ws.file("crates/store/tests/t.rs").unwrap().kind,
            FileKind::Test
        );
        assert!(ws.aux.contains_key("docs/FORMAT.md"));
    }
}
