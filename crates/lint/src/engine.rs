//! The engine: run every (selected) rule over a workspace, apply
//! `lint:allow` suppressions, surface malformed directives and stale
//! suppressions, and produce a deterministic, sorted finding list.

use crate::diag::{Diagnostic, Severity};
use crate::rules::{all_rules, Rule};
use crate::workspace::Workspace;

/// The result of one lint run.
#[derive(Debug)]
pub struct Outcome {
    /// Surviving findings, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// How many findings `lint:allow` directives suppressed.
    pub suppressed: usize,
    /// How many source files were scanned.
    pub files_scanned: usize,
    /// Wall-time per rule that ran, in nanos, in registry order.  All
    /// zeros unless the caller passed a real clock to [`run_timed`].
    pub rule_times: Vec<(String, u64)>,
    /// Total wall-time of the run in nanos (same caveat).
    pub total_nanos: u64,
}

impl Outcome {
    /// Findings of exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether the run should fail CI: any hard error, or any warning
    /// under `--deny-warnings`.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.count(Severity::Error) > 0 || (deny_warnings && self.count(Severity::Warning) > 0)
    }
}

/// Runs all rules over `ws`.
pub fn run(ws: &Workspace) -> Outcome {
    run_filtered(ws, &all_rules(), None)
}

/// Runs `rules` over `ws`, optionally restricted to the rule ids in
/// `only`.  Malformed-directive errors always surface; suppressions only
/// apply to the rule they name; a suppression that suppresses nothing is
/// itself reported so stale allows cannot accumulate.
pub fn run_filtered(ws: &Workspace, rules: &[Box<dyn Rule>], only: Option<&[String]>) -> Outcome {
    run_timed(ws, rules, only, &|| 0)
}

/// [`run_filtered`] with a caller-supplied monotonic-nanos clock, so the
/// report can carry per-rule wall-times.  The clock is injected (only
/// `main.rs` constructs one from `Instant`) to honour the
/// `no-ambient-clock-in-lib` contract this crate itself enforces.
pub fn run_timed(
    ws: &Workspace,
    rules: &[Box<dyn Rule>],
    only: Option<&[String]>,
    now: &dyn Fn() -> u64,
) -> Outcome {
    let run_start = now();
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut rule_times: Vec<(String, u64)> = Vec::new();
    for rule in rules {
        if let Some(only) = only {
            if !only.iter().any(|id| id == rule.id()) {
                continue;
            }
        }
        let start = now();
        rule.check(ws, &mut raw);
        rule_times.push((rule.id().to_string(), now().saturating_sub(start)));
    }

    // Apply suppressions: a finding is suppressed when its file carries a
    // `lint:allow(rule, …)` whose covered line is the finding's line.
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut suppressed = 0usize;
    for diag in raw {
        let matched = ws.file(&diag.file).and_then(|f| {
            f.suppressions
                .iter()
                .find(|s| s.rule == diag.rule && s.covers_line == diag.line)
        });
        match matched {
            Some(sup) if diag.severity == Severity::Warning => {
                sup.used.set(true);
                suppressed += 1;
            }
            _ => diagnostics.push(diag),
        }
    }

    // Malformed directives are hard errors; stale suppressions are
    // warnings (they fail under --deny-warnings like any other finding).
    for file in &ws.files {
        diagnostics.extend(file.directive_errors.iter().cloned());
        for sup in file.suppressions.iter().filter(|s| !s.used.get()) {
            // An allow naming a rule absent from the registry is a hard
            // error regardless of any `--rule` filter — the directive
            // can never suppress anything, so a filtered run must not
            // hide the typo (it used to, when this check sat behind the
            // rule-ran gate below).
            let known = rules.iter().any(|r| r.id() == sup.rule);
            if !known {
                diagnostics.push(Diagnostic {
                    rule: "lint-directive".to_string(),
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: sup.line,
                    col: 1,
                    message: format!(
                        "`lint:allow({})` names an unknown rule (see `mdrr-lint --list-rules`)",
                        sup.rule
                    ),
                    snippet: file.line_text(sup.line).map(str::to_string),
                    span_chars: 1,
                    help: Some(
                        "delete the directive; suppressions must not outlive their rule".into(),
                    ),
                });
                continue;
            }
            // Known rules: only flag suppressions naming rules that
            // actually ran, so a single-rule run doesn't call every
            // other allow stale.
            let rule_ran = match only {
                Some(only) => only.contains(&sup.rule),
                None => true,
            };
            if !rule_ran {
                continue;
            }
            diagnostics.push(Diagnostic {
                rule: "lint-directive".to_string(),
                severity: Severity::Warning,
                file: file.rel.clone(),
                line: sup.line,
                col: 1,
                message: format!(
                    "stale `lint:allow({})` — it suppresses nothing on line {}",
                    sup.rule, sup.covers_line
                ),
                snippet: file.line_text(sup.line).map(str::to_string),
                span_chars: 1,
                help: Some(
                    "delete the directive; suppressions must not outlive their finding".into(),
                ),
            });
        }
    }

    diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    Outcome {
        diagnostics,
        suppressed,
        files_scanned: ws.files.len(),
        rule_times,
        total_nanos: now().saturating_sub(run_start),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_with_reason_suppresses_and_is_counted() {
        let ws = Workspace::in_memory(
            vec![(
                "crates/store/src/x.rs",
                "/// Doc.\npub fn f(v: &[u8]) -> u8 {\n    \
                 v[0] // lint:allow(no-panic-paths, reason = \"caller checks len\")\n}\n",
            )],
            vec![],
        );
        let out = run_filtered(&ws, &all_rules(), Some(&["no-panic-paths".to_string()]));
        assert_eq!(out.suppressed, 1);
        assert!(
            out.diagnostics.is_empty(),
            "unexpected: {:?}",
            out.diagnostics
        );
    }

    #[test]
    fn stale_allows_are_reported() {
        let ws = Workspace::in_memory(
            vec![(
                "crates/store/src/x.rs",
                "// lint:allow(no-panic-paths, reason = \"nothing here panics\")\n\
                 pub fn f() -> u8 { 0 }\n",
            )],
            vec![],
        );
        let out = run_filtered(&ws, &all_rules(), Some(&["no-panic-paths".to_string()]));
        assert_eq!(out.suppressed, 0);
        assert_eq!(out.diagnostics.len(), 1);
        assert!(out.diagnostics[0].message.contains("stale"));
    }

    #[test]
    fn unknown_rule_in_allow_is_a_hard_error() {
        let ws = Workspace::in_memory(
            vec![(
                "crates/store/src/x.rs",
                "// lint:allow(no-such-rule, reason = \"typo\")\npub fn f() {}\n",
            )],
            vec![],
        );
        let out = run_filtered(&ws, &all_rules(), None);
        assert!(out
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("unknown rule")));
    }

    #[test]
    fn unknown_rule_in_allow_fires_even_under_a_rule_filter() {
        // Regression: the unknown-rule escalation used to sit behind the
        // "did this rule run" gate, so `--rule spec-sync` runs silently
        // skipped allows naming rules that don't exist at all.
        let ws = Workspace::in_memory(
            vec![(
                "crates/store/src/x.rs",
                "// lint:allow(no-such-rule, reason = \"typo\")\npub fn f() {}\n",
            )],
            vec![],
        );
        let out = run_filtered(&ws, &all_rules(), Some(&["spec-sync".to_string()]));
        assert!(
            out.diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error && d.message.contains("unknown rule")),
            "filtered run must still surface unknown-rule allows: {:?}",
            out.diagnostics
        );
    }

    #[test]
    fn run_timed_records_per_rule_and_total_wall_time() {
        let ws = Workspace::in_memory(vec![("crates/store/src/x.rs", "pub fn f() {}\n")], vec![]);
        // A deterministic fake clock: advances 5 ns per reading.
        let ticks = std::cell::Cell::new(0u64);
        let clock = move || {
            let t = ticks.get();
            ticks.set(t + 5);
            t
        };
        let out = run_timed(&ws, &all_rules(), None, &clock);
        assert_eq!(out.rule_times.len(), all_rules().len());
        assert!(out.rule_times.iter().all(|(_, ns)| *ns == 5));
        assert!(out.total_nanos >= 5 * all_rules().len() as u64);
    }
}
