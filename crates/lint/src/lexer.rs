//! A lightweight, loss-free Rust lexer.
//!
//! The scanner understands exactly as much Rust as the lint rules need to
//! be sound: it never confuses code with the inside of a comment, a string
//! (plain, raw with any number of hashes, byte, raw byte), a char or byte
//! literal, or a lifetime (`'a` vs `'a'`).  It is deliberately *not* a
//! parser — rules work on token patterns — and it is total: any byte
//! sequence that is valid UTF-8 lexes without panicking, and the produced
//! tokens tile the input exactly (every byte belongs to exactly one token,
//! in order), which is what the span-round-trip property test pins.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `fn`, `unsafe`, `f64`, …).
    Ident,
    /// A raw identifier (`r#match`).
    RawIdent,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A numeric literal, including any type suffix (`1_000`, `0x_FF`,
    /// `2.5e-3f64`).
    Number,
    /// A plain string literal (`"…"`).
    Str,
    /// A raw string literal (`r"…"`, `r#"…"#`, any hash depth).
    RawStr,
    /// A byte string literal (`b"…"`).
    ByteStr,
    /// A raw byte string literal (`br#"…"#`).
    RawByteStr,
    /// A char literal (`'a'`, `'\n'`, `'\u{1F600}'`).
    Char,
    /// A byte literal (`b'x'`).
    ByteChar,
    /// A `// …` comment (doc or plain), excluding the newline.
    LineComment,
    /// A `/* … */` comment, with nesting.
    BlockComment,
    /// A single punctuation or operator character.
    Punct,
    /// A maximal run of whitespace.
    Whitespace,
    /// Anything the scanner could not classify (kept so tokens still tile
    /// the input — e.g. a stray `'`).
    Unknown,
}

impl TokenKind {
    /// Whether this token is source *code* rather than trivia — rules scan
    /// only significant tokens and treat comments/whitespace separately.
    pub fn is_significant(self) -> bool {
        !matches!(
            self,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// One lexed token: its kind, byte span, and 1-based start position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the first byte (inclusive), always a char boundary.
    pub start: usize,
    /// Byte offset one past the last byte (exclusive), always a char
    /// boundary.
    pub end: usize,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters, not bytes) of the first character.
    pub col: u32,
}

impl Token {
    /// The token's text inside the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Lexes `src` completely.  Total: never panics, and the returned tokens
/// tile the whole input in order (`tokens[0].start == 0`, each token's
/// `end` equals the next token's `start`, the last `end == src.len()`).
pub fn lex(src: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    while pos < src.len() {
        let start = pos;
        let kind = scan_token(src, &mut pos);
        // Defensive: a scanner bug that fails to advance would loop
        // forever; skip one char instead (as Unknown) and keep going.
        if pos <= start {
            pos = next_boundary(src, start);
        }
        tokens.push(Token {
            kind: if pos > start {
                kind
            } else {
                TokenKind::Unknown
            },
            start,
            end: pos,
            line,
            col,
        });
        for ch in src.get(start..pos).unwrap_or("").chars() {
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
    }
    tokens
}

/// The char starting at byte `pos`, if `pos` is in range (callers keep
/// `pos` on char boundaries).
fn char_at(src: &str, pos: usize) -> Option<char> {
    src.get(pos..).and_then(|s| s.chars().next())
}

/// The smallest char boundary strictly greater than `pos`.
fn next_boundary(src: &str, pos: usize) -> usize {
    let mut p = pos + 1;
    while p < src.len() && !src.is_char_boundary(p) {
        p += 1;
    }
    p.min(src.len())
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Scans one token starting at `*pos`, advancing `*pos` past it.
fn scan_token(src: &str, pos: &mut usize) -> TokenKind {
    let c = match char_at(src, *pos) {
        Some(c) => c,
        None => {
            *pos = src.len();
            return TokenKind::Unknown;
        }
    };
    match c {
        c if c.is_whitespace() => {
            while let Some(w) = char_at(src, *pos) {
                if !w.is_whitespace() {
                    break;
                }
                *pos += w.len_utf8();
            }
            TokenKind::Whitespace
        }
        '/' => match char_at(src, *pos + 1) {
            Some('/') => {
                *pos += 2;
                while let Some(ch) = char_at(src, *pos) {
                    if ch == '\n' {
                        break;
                    }
                    *pos += ch.len_utf8();
                }
                TokenKind::LineComment
            }
            Some('*') => {
                *pos += 2;
                scan_block_comment(src, pos);
                TokenKind::BlockComment
            }
            _ => {
                *pos += 1;
                TokenKind::Punct
            }
        },
        '"' => {
            scan_quoted(src, pos, '"');
            TokenKind::Str
        }
        'r' => scan_r_prefixed(src, pos),
        'b' => scan_b_prefixed(src, pos),
        '\'' => scan_quote(src, pos),
        c if c.is_ascii_digit() => {
            scan_number(src, pos);
            TokenKind::Number
        }
        c if is_ident_start(c) => {
            scan_ident(src, pos);
            TokenKind::Ident
        }
        c => {
            *pos += c.len_utf8();
            TokenKind::Punct
        }
    }
}

/// Consumes a nested block comment body; `*pos` sits just past the opening
/// `/*`.  Unterminated comments run to end of input.
fn scan_block_comment(src: &str, pos: &mut usize) {
    let mut depth = 1usize;
    while depth > 0 {
        match char_at(src, *pos) {
            None => break,
            Some('/') if char_at(src, *pos + 1) == Some('*') => {
                depth += 1;
                *pos += 2;
            }
            Some('*') if char_at(src, *pos + 1) == Some('/') => {
                depth -= 1;
                *pos += 2;
            }
            Some(ch) => *pos += ch.len_utf8(),
        }
    }
}

/// Consumes a quoted literal (string or char body) starting at its opening
/// quote, honoring backslash escapes.  Unterminated literals run to end of
/// input.
fn scan_quoted(src: &str, pos: &mut usize, close: char) {
    *pos += close.len_utf8(); // opening quote
    while let Some(ch) = char_at(src, *pos) {
        *pos += ch.len_utf8();
        if ch == '\\' {
            if let Some(esc) = char_at(src, *pos) {
                *pos += esc.len_utf8();
            }
        } else if ch == close {
            break;
        }
    }
}

/// Consumes an identifier starting at `*pos`.
fn scan_ident(src: &str, pos: &mut usize) {
    while let Some(ch) = char_at(src, *pos) {
        if !is_ident_continue(ch) {
            break;
        }
        *pos += ch.len_utf8();
    }
}

/// Number of consecutive `#` chars at `pos`.
fn hash_run(src: &str, pos: usize) -> usize {
    let mut n = 0;
    while char_at(src, pos + n) == Some('#') {
        n += 1;
    }
    n
}

/// Consumes a raw string body: `*pos` sits at the opening `"`, `hashes` is
/// the hash depth.  Ends after `"` followed by `hashes` `#`s (or at EOF).
fn scan_raw_string(src: &str, pos: &mut usize, hashes: usize) {
    *pos += 1; // opening quote
    while let Some(ch) = char_at(src, *pos) {
        *pos += ch.len_utf8();
        if ch == '"' && hash_run(src, *pos) >= hashes {
            *pos += hashes;
            break;
        }
    }
}

/// Dispatches tokens starting with `r`: raw string, raw identifier, or a
/// plain identifier that merely starts with `r`.
fn scan_r_prefixed(src: &str, pos: &mut usize) -> TokenKind {
    let hashes = hash_run(src, *pos + 1);
    match char_at(src, *pos + 1 + hashes) {
        Some('"') => {
            *pos += 1 + hashes;
            scan_raw_string(src, pos, hashes);
            TokenKind::RawStr
        }
        Some(c) if hashes == 1 && is_ident_start(c) => {
            *pos += 2; // r#
            scan_ident(src, pos);
            TokenKind::RawIdent
        }
        _ => {
            scan_ident(src, pos);
            TokenKind::Ident
        }
    }
}

/// Dispatches tokens starting with `b`: byte string, raw byte string, byte
/// char, or a plain identifier that merely starts with `b`.
fn scan_b_prefixed(src: &str, pos: &mut usize) -> TokenKind {
    match char_at(src, *pos + 1) {
        Some('"') => {
            *pos += 1;
            scan_quoted(src, pos, '"');
            TokenKind::ByteStr
        }
        Some('\'') => {
            *pos += 1;
            scan_quoted(src, pos, '\'');
            TokenKind::ByteChar
        }
        Some('r') => {
            let hashes = hash_run(src, *pos + 2);
            if char_at(src, *pos + 2 + hashes) == Some('"') {
                *pos += 2 + hashes;
                scan_raw_string(src, pos, hashes);
                TokenKind::RawByteStr
            } else {
                scan_ident(src, pos);
                TokenKind::Ident
            }
        }
        _ => {
            scan_ident(src, pos);
            TokenKind::Ident
        }
    }
}

/// Disambiguates a leading `'`: char literal (`'a'`, `'\n'`) versus
/// lifetime (`'a`, `'static`) versus a stray quote.
fn scan_quote(src: &str, pos: &mut usize) -> TokenKind {
    match char_at(src, *pos + 1) {
        // `'\…'` — always a char literal.
        Some('\\') => {
            scan_quoted(src, pos, '\'');
            TokenKind::Char
        }
        Some(c2) => {
            let after = char_at(src, *pos + 1 + c2.len_utf8());
            if after == Some('\'') {
                // `'x'` for any single char x (including `'''`).
                *pos += 1 + c2.len_utf8() + 1;
                TokenKind::Char
            } else if is_ident_start(c2) || c2.is_ascii_digit() {
                // `'name` — a lifetime… unless the identifier run closes
                // with another quote (`'abc'`, invalid Rust but must not
                // derail the scanner: treat it as one Char token).
                *pos += 1;
                scan_ident(src, pos);
                if char_at(src, *pos) == Some('\'') {
                    *pos += 1;
                    TokenKind::Char
                } else {
                    TokenKind::Lifetime
                }
            } else {
                *pos += 1;
                TokenKind::Unknown
            }
        }
        None => {
            *pos += 1;
            TokenKind::Unknown
        }
    }
}

/// Consumes a numeric literal: integer (decimal/hex/octal/binary with `_`
/// separators), optional fraction, optional exponent, optional type suffix
/// (`u32`, `f64`, …).  A `.` is only part of the number when a digit
/// follows (`0..n` and `1.method()` stay three tokens).
fn scan_number(src: &str, pos: &mut usize) {
    let radix_prefix = matches!(
        (char_at(src, *pos), char_at(src, *pos + 1)),
        (Some('0'), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'))
    );
    if radix_prefix {
        *pos += 2;
        while let Some(ch) = char_at(src, *pos) {
            if ch.is_ascii_alphanumeric() || ch == '_' {
                *pos += 1;
            } else {
                break;
            }
        }
        return;
    }
    let digits = |pos: &mut usize| {
        while let Some(ch) = char_at(src, *pos) {
            if ch.is_ascii_digit() || ch == '_' {
                *pos += 1;
            } else {
                break;
            }
        }
    };
    digits(pos);
    if char_at(src, *pos) == Some('.') && char_at(src, *pos + 1).is_some_and(|c| c.is_ascii_digit())
    {
        *pos += 1;
        digits(pos);
    }
    if let Some(e) = char_at(src, *pos) {
        if e == 'e' || e == 'E' {
            let (skip, digit_at) = match char_at(src, *pos + 1) {
                Some('+' | '-') => (2, char_at(src, *pos + 2)),
                other => (1, other),
            };
            if digit_at.is_some_and(|c| c.is_ascii_digit()) {
                *pos += skip;
                digits(pos);
            }
        }
    }
    // Type suffix (also absorbs a trailing `f64` etc.).
    while let Some(ch) = char_at(src, *pos) {
        if is_ident_continue(ch) {
            *pos += ch.len_utf8();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn tokens_tile_the_input() {
        let src = "fn main() { let s = \"hi\"; /* c /* nested */ */ }";
        let tokens = lex(src);
        assert_eq!(tokens.first().map(|t| t.start), Some(0));
        assert_eq!(tokens.last().map(|t| t.end), Some(src.len()));
        for pair in tokens.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "a /* x /* y /* z */ */ */ b";
        let k = kinds(src);
        assert_eq!(k[1], (TokenKind::BlockComment, "/* x /* y /* z */ */ */"));
        assert_eq!(k[2], (TokenKind::Ident, "b"));
    }

    #[test]
    fn raw_strings_with_hashes_swallow_quotes_and_comment_markers() {
        let src = r####"let s = r##"inner "quote" // not a comment "# still"##;"####;
        let k = kinds(src);
        assert!(k.iter().any(|(kind, text)| *kind == TokenKind::RawStr
            && text.contains("not a comment")
            && text.ends_with("\"##")));
        // Nothing after the raw string was mistaken for a comment.
        assert!(k.iter().all(|(kind, _)| *kind != TokenKind::LineComment));
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let k = kinds(src);
        let lifetimes: Vec<_> = k
            .iter()
            .filter(|(kd, _)| *kd == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = k.iter().filter(|(kd, _)| *kd == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{k:?}");
        assert_eq!(chars, vec![&(TokenKind::Char, "'a'")]);
    }

    #[test]
    fn char_escapes_and_byte_literals() {
        let src = r"let a = '\''; let b = '\u{1F600}'; let c = b'x';";
        let k = kinds(src);
        assert!(k.contains(&(TokenKind::Char, r"'\''")));
        assert!(k.contains(&(TokenKind::Char, r"'\u{1F600}'")));
        assert!(k.contains(&(TokenKind::ByteChar, "b'x'")));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r###"let m = b"MDRRSNAP"; let r = br#"raw "bytes""#;"###;
        let k = kinds(src);
        assert!(k.contains(&(TokenKind::ByteStr, "b\"MDRRSNAP\"")));
        assert!(k
            .iter()
            .any(|(kd, text)| *kd == TokenKind::RawByteStr && text.starts_with("br#")));
    }

    #[test]
    fn numbers_keep_suffixes_and_release_range_dots() {
        let k = kinds("1_000u64 + 2.5e-3f64 + 0xFF_u8; for i in 0..53 {} x.0");
        assert!(k.contains(&(TokenKind::Number, "1_000u64")));
        assert!(k.contains(&(TokenKind::Number, "2.5e-3f64")));
        assert!(k.contains(&(TokenKind::Number, "0xFF_u8")));
        assert!(k.contains(&(TokenKind::Number, "0")));
        assert!(k.contains(&(TokenKind::Number, "53")));
    }

    #[test]
    fn raw_identifiers() {
        let k = kinds("let r#match = r#fn;");
        assert_eq!(
            k.iter()
                .filter(|(kd, _)| *kd == TokenKind::RawIdent)
                .count(),
            2
        );
    }

    #[test]
    fn strings_hide_comment_markers_and_comments_hide_quotes() {
        let k = kinds("let s = \"// not a comment\"; // real \" comment");
        assert_eq!(k[3], (TokenKind::Str, "\"// not a comment\""));
        assert!(matches!(k.last(), Some((TokenKind::LineComment, _))));
    }

    #[test]
    fn unterminated_everything_lexes_to_eof() {
        for src in [
            "\"unterminated",
            "/* unterminated /* nested",
            "r#\"unterminated raw",
            "'\\'",
            "b\"unterminated",
        ] {
            let tokens = lex(src);
            assert_eq!(tokens.last().map(|t| t.end), Some(src.len()), "{src}");
        }
    }
}
