//! The `mdrr-lint` CLI.  See `--help`, or `docs/LINTS.md` for the rule
//! catalog.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use mdrr_lint::diag::{report_json, Severity};
use mdrr_lint::rules::all_rules;
use mdrr_lint::{engine, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
mdrr-lint — static analysis for the mdrr workspace's own contracts

USAGE:
    cargo run -p mdrr-lint -- [OPTIONS]

OPTIONS:
    --root <DIR>        Workspace root (default: walk up from the cwd)
    --rule <ID>         Run only this rule (repeatable)
    --deny-warnings     Exit nonzero on warnings, not just directive errors
    --report <FILE>     Also write a JSON report (for CI artifacts)
    --list-rules        Print the rule catalog and exit
    -h, --help          Print this help

EXIT CODES:
    0  clean (or warnings without --deny-warnings)
    1  findings failed the run
    2  usage or I/O error";

struct Options {
    root: Option<PathBuf>,
    rules: Vec<String>,
    deny_warnings: bool,
    report: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        rules: Vec::new(),
        deny_warnings: false,
        report: None,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--rule" => {
                let id = it.next().ok_or("--rule needs a rule id")?;
                if !all_rules().iter().any(|r| r.id() == id) {
                    return Err(format!("unknown rule `{id}` (try --list-rules)"));
                }
                opts.rules.push(id.clone());
            }
            "--deny-warnings" => opts.deny_warnings = true,
            "--report" => {
                opts.report = Some(PathBuf::from(it.next().ok_or("--report needs a path")?));
            }
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(why) => {
            eprintln!("error: {why}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in all_rules() {
            println!("{:<22} {}", rule.id(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match Workspace::find_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!("error: no workspace Cargo.toml above the current directory");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let ws = match Workspace::discover(&root) {
        Ok(ws) => ws,
        Err(why) => {
            eprintln!("error: {why}");
            return ExitCode::from(2);
        }
    };

    let rules = all_rules();
    let only = if opts.rules.is_empty() {
        None
    } else {
        Some(opts.rules.as_slice())
    };
    // The ambient clock lives here, in the binary — library code takes
    // an injected nanos closure (`no-ambient-clock-in-lib` applies to
    // the linter too).
    let epoch = std::time::Instant::now();
    let now = move || epoch.elapsed().as_nanos() as u64;
    let outcome = engine::run_timed(&ws, &rules, only, &now);

    for diag in &outcome.diagnostics {
        eprintln!("{}", diag.render());
    }
    let errors = outcome.count(Severity::Error);
    let warnings = outcome.count(Severity::Warning);
    eprintln!(
        "mdrr-lint: {} files scanned, {} error{}, {} warning{}, {} suppressed",
        outcome.files_scanned,
        errors,
        if errors == 1 { "" } else { "s" },
        warnings,
        if warnings == 1 { "" } else { "s" },
        outcome.suppressed,
    );

    if let Some(path) = &opts.report {
        let json = report_json(&outcome);
        if let Err(why) = std::fs::write(path, json) {
            eprintln!("error: cannot write {}: {why}", path.display());
            return ExitCode::from(2);
        }
    }

    if outcome.fails(opts.deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
