//! Call-site extraction and the workspace call graph.
//!
//! Each function body is scanned for the three call shapes the token
//! stream can exhibit — `name(…)`, `path::name(…)`, `recv.name(…)` —
//! and every site is resolved through the [`SymbolTable`] into zero or
//! more candidate targets.  Unresolvable sites (std, vendored shims,
//! constructors) contribute no edges; over-approximation is confined to
//! method calls on untypeable receivers, where candidates are limited
//! to crates the calling file imports.  On top of the edge sets the
//! graph offers predecessor-tracking BFS so analyses can print the full
//! call chain behind every finding.

use super::items::match_paren;
use super::symbols::{Callee, FnId, SymbolTable};
use crate::workspace::Workspace;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One resolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The function whose body contains the call.
    pub caller: FnId,
    /// The callee name as written.
    pub name: String,
    /// How the call names its target.
    pub callee: Callee,
    /// Candidate target definitions (empty when external).
    pub targets: Vec<FnId>,
    /// Significant-token index of the callee name.
    pub tok: usize,
    /// Significant-token indices of the argument `(` and matching `)`.
    pub args: (usize, usize),
}

/// The workspace call graph: every call site, plus forward and reverse
/// edge sets over resolved targets.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every call site, in (file, token) order.
    pub sites: Vec<CallSite>,
    /// caller → resolved callees.
    pub edges: BTreeMap<FnId, BTreeSet<FnId>>,
    /// callee → callers.
    pub redges: BTreeMap<FnId, BTreeSet<FnId>>,
    /// caller → indices into `sites`.
    pub sites_by_fn: BTreeMap<FnId, Vec<usize>>,
}

/// Keywords that can directly precede a parenthesis without being calls.
const NON_CALL_WORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "as", "in", "move", "else", "fn", "let",
    "mut", "ref", "await", "yield", "break", "continue", "true", "false", "where", "impl", "use",
    "pub", "unsafe", "dyn",
];

impl CallGraph {
    /// Builds the graph over every function in `st`.
    pub fn build(ws: &Workspace, st: &SymbolTable) -> CallGraph {
        let mut g = CallGraph::default();
        for caller in 0..st.fns.len() {
            let Some((b0, b1)) = st.def(caller).body else {
                continue;
            };
            let mut i = b0 + 1;
            while i < b1 {
                let Some(site) = site_at(ws, st, caller, i) else {
                    i += 1;
                    continue;
                };
                for &t in &site.targets {
                    g.edges.entry(caller).or_default().insert(t);
                    g.redges.entry(t).or_default().insert(caller);
                }
                g.sites_by_fn.entry(caller).or_default().push(g.sites.len());
                g.sites.push(site);
                i += 1;
            }
        }
        g
    }

    /// Call sites inside `caller`'s body.
    pub fn sites_of(&self, caller: FnId) -> impl Iterator<Item = &CallSite> + '_ {
        self.sites_by_fn
            .get(&caller)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&s| &self.sites[s])
    }

    /// BFS over forward edges from `roots`; the map sends every reached
    /// function to its BFS predecessor (roots map to themselves), which
    /// [`CallGraph::chain`] unwinds into a root→target call chain.
    pub fn reach(&self, roots: impl IntoIterator<Item = FnId>) -> BTreeMap<FnId, FnId> {
        let mut preds = BTreeMap::new();
        let mut queue = VecDeque::new();
        for r in roots {
            if let Entry::Vacant(e) = preds.entry(r) {
                e.insert(r);
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            if let Some(nexts) = self.edges.get(&f) {
                for &n in nexts {
                    if let Entry::Vacant(e) = preds.entry(n) {
                        e.insert(f);
                        queue.push_back(n);
                    }
                }
            }
        }
        preds
    }

    /// Unwinds `reach` predecessors into the root→…→target chain.
    pub fn chain(&self, preds: &BTreeMap<FnId, FnId>, target: FnId) -> Vec<FnId> {
        let mut chain = vec![target];
        let mut cur = target;
        while let Some(&p) = preds.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// Formats a chain as `a → b → c` with qualified names.
    pub fn chain_text(&self, st: &SymbolTable, chain: &[FnId]) -> String {
        chain
            .iter()
            .map(|&f| st.def(f).qualified())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Recognizes the call site whose callee *name* sits at significant
/// token `i` of `caller`'s file, if any.
fn site_at(ws: &Workspace, st: &SymbolTable, caller: FnId, i: usize) -> Option<CallSite> {
    let def = st.def(caller);
    let file = &ws.files[def.file];
    if file.sig_text(i + 1) != "(" {
        return None;
    }
    let name = file.sig_text(i).to_string();
    let tok = file.sig_token(i)?;
    if !matches!(
        tok.kind,
        crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::RawIdent
    ) || NON_CALL_WORDS.contains(&name.as_str())
    {
        return None;
    }
    // Uppercase-initial callees are tuple-struct / enum-variant
    // constructors, never functions in this workspace's naming scheme.
    if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        return None;
    }
    let close = match_paren(file, i + 1);
    let args = (i + 1, close);

    // Method call: `.name(` — unless the dot ends a path (impossible)
    // or the "receiver" is a float literal's fraction (lexer emits
    // floats as single tokens, so no).
    if i >= 2 && file.sig_text(i - 1) == "." {
        let recv_type = infer_receiver(ws, st, caller, i);
        let callee = Callee::Method {
            name: name.clone(),
            recv_type,
        };
        let targets = st.resolve(caller, &callee);
        return Some(CallSite {
            caller,
            name,
            callee,
            targets,
            tok: i,
            args,
        });
    }

    // Qualified call: `seg :: seg :: name(` — collect the leading path.
    if i >= 3 && file.sig_text(i - 1) == ":" && file.sig_text(i - 2) == ":" {
        let mut segs: Vec<String> = Vec::new();
        let mut j = i;
        while j >= 3 && file.sig_text(j - 1) == ":" && file.sig_text(j - 2) == ":" {
            let seg = file.sig_text(j - 3).to_string();
            let is_seg = file
                .sig_token(j - 3)
                .is_some_and(|t| matches!(t.kind, crate::lexer::TokenKind::Ident))
                || seg == "crate";
            if !is_seg {
                break;
            }
            segs.push(seg);
            j -= 3;
        }
        segs.reverse();
        if segs.is_empty() {
            return None;
        }
        // `Self::helper(…)` names the surrounding impl type.
        for s in segs.iter_mut() {
            if s == "Self" {
                *s = def.self_type.clone().unwrap_or_else(|| "Self".to_string());
            }
        }
        let callee = Callee::Qualified(segs, name.clone());
        let targets = st.resolve(caller, &callee);
        return Some(CallSite {
            caller,
            name,
            callee,
            targets,
            tok: i,
            args,
        });
    }

    // Plain call — but not a definition (`fn name(`).
    if i >= 1 && file.sig_text(i - 1) == "fn" {
        return None;
    }
    let callee = Callee::Plain(name.clone());
    let targets = st.resolve(caller, &callee);
    Some(CallSite {
        caller,
        name,
        callee,
        targets,
        tok: i,
        args,
    })
}

/// Infers the receiver type of the method call at `i` (`recv.name(`):
/// a simple identifier receiver goes through
/// [`SymbolTable::receiver_type`]; chained calls and field accesses
/// stay untyped.
fn infer_receiver(ws: &Workspace, st: &SymbolTable, caller: FnId, i: usize) -> Option<String> {
    let def = st.def(caller);
    let file = &ws.files[def.file];
    let recv = file.sig_text(i - 2);
    let recv_tok = file.sig_token(i - 2)?;
    if !matches!(recv_tok.kind, crate::lexer::TokenKind::Ident) {
        return None;
    }
    // `a.b.name(` — the receiver is a field, not the identifier `b`.
    if i >= 4 && file.sig_text(i - 3) == "." {
        return None;
    }
    st.receiver_type(caller, file, recv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: Vec<(&str, &str)>) -> (SymbolTable, CallGraph) {
        let ws = Workspace::in_memory(files, vec![]);
        let st = SymbolTable::build(&ws);
        let g = CallGraph::build(&ws, &st);
        (st, g)
    }

    fn id(st: &SymbolTable, name: &str) -> FnId {
        st.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn three_call_shapes_produce_edges() {
        let (st, g) = graph(vec![(
            "crates/a/src/lib.rs",
            "pub struct T;\nimpl T { pub fn m(&self) {} }\n\
                 pub fn free() {}\n\
                 pub fn caller(t: &T) { free(); crate::free(); t.m(); }\n",
        )]);
        let caller = id(&st, "caller");
        let callees = g.edges.get(&caller).unwrap();
        assert!(callees.contains(&id(&st, "free")));
        assert!(callees.contains(&id(&st, "m")));
        // `free` is reached by two sites but is one edge.
        assert_eq!(g.sites_of(caller).count(), 3);
    }

    #[test]
    fn self_calls_resolve_to_the_impl_type() {
        let (st, g) = graph(vec![(
            "crates/a/src/lib.rs",
            "pub struct T;\nimpl T {\n\
             fn helper(&self) {}\n\
             fn assoc() {}\n\
             pub fn go(&self) { self.helper(); Self::assoc(); }\n}\n",
        )]);
        let go = id(&st, "go");
        let callees = g.edges.get(&go).unwrap();
        assert!(callees.contains(&id(&st, "helper")));
        assert!(callees.contains(&id(&st, "assoc")));
    }

    #[test]
    fn constructors_and_externals_make_no_edges() {
        let (st, g) = graph(vec![(
            "crates/a/src/lib.rs",
            "pub fn f() -> Option<u32> { Some(std::mem::take(&mut 0)); Vec::new(); None }\n",
        )]);
        let f = id(&st, "f");
        assert!(!g.edges.contains_key(&f));
    }

    #[test]
    fn reach_reports_predecessor_chains_through_diamonds_and_cycles() {
        let (st, g) = graph(vec![(
            "crates/a/src/lib.rs",
            "pub fn root() { left(); right(); }\n\
             fn left() { join() }\n\
             fn right() { join() }\n\
             fn join() { looper() }\n\
             fn looper() { looper() }\n",
        )]);
        let root = id(&st, "root");
        let join = id(&st, "join");
        let looper = id(&st, "looper");
        let preds = g.reach([root]);
        assert!(preds.contains_key(&join));
        assert!(preds.contains_key(&looper), "cycle does not diverge");
        let chain = g.chain(&preds, looper);
        assert_eq!(chain.first(), Some(&root));
        assert_eq!(chain.last(), Some(&looper));
        assert_eq!(chain.len(), 4, "root -> left|right -> join -> looper");
        let text = g.chain_text(&st, &chain);
        assert!(text.starts_with("mdrr_a::root -> "));
        assert!(text.ends_with(" -> mdrr_a::join -> mdrr_a::looper"));
    }
}
