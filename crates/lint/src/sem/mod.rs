//! The semantic analysis layer: item parsing, symbol resolution and the
//! workspace call graph the interprocedural rules run on.
//!
//! The layer is built once per [`Workspace`]
//! and cached (see `Workspace::sem`), so the three interprocedural rules
//! share one parse of the tree.  Everything here stays within the
//! significant-token world of the hand-rolled lexer — no `syn`, no
//! dependencies — which bounds precision: resolution is name- and
//! path-based with receiver-type inference for simple cases, and the
//! rules are written to tolerate the resulting over-approximation
//! (method calls on untypeable receivers) without drowning in false
//! positives (candidates are limited to imported crates, constructors
//! and std calls resolve to nothing).

pub mod callgraph;
pub mod items;
pub mod symbols;

use crate::workspace::Workspace;
use callgraph::CallGraph;
use symbols::SymbolTable;

/// The built semantic model: symbols plus call graph.
#[derive(Debug)]
pub struct SemModel {
    /// Every analyzable function, with resolution indices.
    pub symbols: SymbolTable,
    /// Call sites and edges over `symbols`.
    pub graph: CallGraph,
}

impl SemModel {
    /// Builds the model for `ws`.
    pub fn build(ws: &Workspace) -> SemModel {
        let symbols = SymbolTable::build(ws);
        let graph = CallGraph::build(ws, &symbols);
        SemModel { symbols, graph }
    }
}
