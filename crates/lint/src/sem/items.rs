//! A lightweight item parser on top of the lexer: enough structure for
//! interprocedural analysis without a full grammar.
//!
//! One linear pass over a file's significant tokens recovers `fn`
//! signatures (name, visibility, parameters with their type text, body
//! token range), the `mod`/`impl`/`trait` nesting that scopes them, the
//! file's `use` declarations (alias → full path), and `impl Trait for
//! Type` pairs.  Everything downstream — the symbol table, the call
//! graph, the taint/panic/determinism analyses — is built from these
//! items.  The parser is total: any token soup produces *some* item
//! list without panicking; unrecognized constructs are simply skipped.

use crate::source::SourceFile;

/// One parsed function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// The binding name (`ds`, `records`, …); empty for tuple patterns.
    pub name: String,
    /// The parameter's type, as written in the source (whitespace kept).
    pub ty: String,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// In-file module path from inline `mod` blocks (file-level path is
    /// added by the symbol table from the file's location).
    pub module: Vec<String>,
    /// The surrounding `impl`/`trait` type name, if any.
    pub self_type: Option<String>,
    /// Whether the item carries a `pub` (including `pub(crate)` etc.).
    pub is_pub: bool,
    /// Whether the signature takes `self` in any form.
    pub has_self: bool,
    /// The non-self parameters.
    pub params: Vec<Param>,
    /// Significant-token indices of the body's `{` and matching `}`,
    /// if the item has a body (trait method declarations do not).
    pub body: Option<(usize, usize)>,
    /// Byte offset of the `fn` keyword (for test-range checks).
    pub byte_start: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
}

/// One leaf of a `use` declaration: `alias` names `segments` locally.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Full path segments as written (`mdrr_store`, `io`, `atomic_write`).
    pub segments: Vec<String>,
    /// The local name (the last segment, or the `as` rename).
    pub alias: String,
}

/// One `impl Trait for Type` pair (inherent impls are not recorded here).
#[derive(Debug, Clone)]
pub struct TraitImpl {
    /// The trait's final path segment (`Display`, `Protocol`).
    pub trait_name: String,
    /// The implementing type's name (`StoreError`, `RRJoint`).
    pub type_name: String,
}

/// Everything the item parser recovers from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every `use` leaf, in source order.
    pub uses: Vec<UseDecl>,
    /// Every `impl Trait for Type` pair.
    pub trait_impls: Vec<TraitImpl>,
}

/// What an open brace belongs to, for scope tracking.
#[derive(Debug, Clone)]
enum ScopeKind {
    /// An inline `mod name { … }`.
    Mod(String),
    /// An `impl`/`trait` block for the named type.
    Type(String),
    /// Any other brace (fn bodies, blocks, struct literals, …).
    Other,
}

/// Parses `file` into items.  See the module docs for what is (and is
/// deliberately not) recovered.
pub fn parse_items(file: &SourceFile) -> FileItems {
    let n = file.sig.len();
    let mut out = FileItems::default();
    let mut scopes: Vec<ScopeKind> = Vec::new();
    let mut pending: Option<ScopeKind> = None;
    // Functions whose body brace is open: (index into out.fns, scope
    // depth just *before* the body brace pushed).
    let mut open_fns: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < n {
        match file.sig_text(i) {
            "{" => {
                scopes.push(pending.take().unwrap_or(ScopeKind::Other));
                i += 1;
            }
            "}" => {
                scopes.pop();
                let depth = scopes.len();
                open_fns.retain(|&(fn_idx, d)| {
                    if d == depth {
                        if let Some(f) = out.fns.get_mut(fn_idx) {
                            if let Some((open, _)) = f.body {
                                f.body = Some((open, i));
                            }
                        }
                        false
                    } else {
                        true
                    }
                });
                i += 1;
            }
            "use" => i = parse_use(file, i, &mut out.uses),
            "mod" => {
                let name = file.sig_text(i + 1).to_string();
                if file.sig_text(i + 2) == "{" {
                    pending = Some(ScopeKind::Mod(name));
                }
                // `mod x;` declarations carry no in-file scope.
                i += 2;
            }
            "impl" => i = parse_impl_or_trait_header(file, i, &mut pending, &mut out.trait_impls),
            "trait" => {
                let name = file.sig_text(i + 1).to_string();
                pending = Some(ScopeKind::Type(name));
                i = skip_to_body_brace(file, i + 1);
            }
            "fn" => i = parse_fn(file, i, &scopes, &mut out.fns, &mut open_fns),
            _ => i += 1,
        }
    }
    out
}

/// Advances from `i` to the index of the next `{` at the current nesting
/// (used to skip trait/impl headers with bounds and where clauses).
fn skip_to_body_brace(file: &SourceFile, mut i: usize) -> usize {
    let n = file.sig.len();
    while i < n && file.sig_text(i) != "{" && file.sig_text(i) != ";" {
        i += 1;
    }
    i
}

/// Parses an `impl … {` header starting at the `impl` token: records the
/// trait/type pair (for trait impls) and stages the scope.  Returns the
/// index of the body `{`.
fn parse_impl_or_trait_header(
    file: &SourceFile,
    i: usize,
    pending: &mut Option<ScopeKind>,
    trait_impls: &mut Vec<TraitImpl>,
) -> usize {
    let n = file.sig.len();
    let mut j = i + 1;
    // Skip `impl<…>` generics.
    if file.sig_text(j) == "<" {
        j = skip_angles(file, j);
    }
    // Collect tokens to the body `{` (or `;` for weird cases), noting a
    // top-level `for` that splits `impl Trait for Type`.
    let header_start = j;
    let mut for_at: Option<usize> = None;
    let mut angle = 0i32;
    while j < n {
        let t = file.sig_text(j);
        match t {
            "{" | ";" if angle <= 0 => break,
            "<" => angle += 1,
            ">" if file.sig_text(j.wrapping_sub(1)) != "-" => angle -= 1,
            "for" if angle <= 0 && for_at.is_none() => for_at = Some(j),
            _ => {}
        }
        j += 1;
    }
    let (trait_range, type_range) = match for_at {
        Some(f) => (Some((header_start, f)), (f + 1, j)),
        None => (None, (header_start, j)),
    };
    let type_name = first_type_ident(file, type_range.0, type_range.1);
    if let (Some((ts, te)), Some(ty)) = (trait_range, type_name.clone()) {
        if let Some(tr) = last_path_ident(file, ts, te) {
            trait_impls.push(TraitImpl {
                trait_name: tr,
                type_name: ty,
            });
        }
    }
    *pending = Some(ScopeKind::Type(type_name.unwrap_or_default()));
    j
}

/// The first plain identifier in `[a, b)` that looks like a type name
/// (skips `&`, `mut`, `dyn`, lifetimes and punctuation).
fn first_type_ident(file: &SourceFile, a: usize, b: usize) -> Option<String> {
    (a..b).find_map(|k| {
        let t = file.sig_text(k);
        let starts_upper = t.chars().next().is_some_and(|c| c.is_ascii_uppercase());
        let is_ident = t.chars().all(|c| c.is_alphanumeric() || c == '_');
        if starts_upper && is_ident {
            Some(t.to_string())
        } else {
            None
        }
    })
}

/// The final path segment in `[a, b)` (`fmt::Display` → `Display`).
fn last_path_ident(file: &SourceFile, a: usize, b: usize) -> Option<String> {
    (a..b)
        .rev()
        .map(|k| file.sig_text(k))
        .find(|t| {
            t.chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || *t == "_")
                && t.chars().all(|c| c.is_alphanumeric() || c == '_')
        })
        .map(str::to_string)
}

/// Skips a balanced `<…>` group starting at the `<` at index `i`,
/// guarding against `->` closers.  Returns the index after the group.
fn skip_angles(file: &SourceFile, i: usize) -> usize {
    let n = file.sig.len();
    let mut depth = 0i32;
    let mut j = i;
    while j < n {
        match file.sig_text(j) {
            "<" => depth += 1,
            ">" if j > 0 && file.sig_text(j - 1) != "-" => {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Finds the index of the `)` matching the `(` at index `open`.
pub(crate) fn match_paren(file: &SourceFile, open: usize) -> usize {
    let n = file.sig.len();
    let mut depth = 0i32;
    let mut j = open;
    while j < n {
        match file.sig_text(j) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth <= 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    n.saturating_sub(1)
}

/// Whether any sig token in the lookback window before `fn` is `pub`
/// (stopping at item boundaries).
fn is_pub_before(file: &SourceFile, fn_idx: usize) -> bool {
    let mut k = fn_idx;
    for _ in 0..8 {
        if k == 0 {
            return false;
        }
        k -= 1;
        match file.sig_text(k) {
            "pub" => return true,
            // Visibility qualifiers and harmless modifiers keep looking.
            "(" | ")" | "crate" | "super" | "self" | "in" | "const" | "unsafe" | "async"
            | "extern" | "]" => continue,
            _ => return false,
        }
    }
    false
}

/// Parses one `fn` item starting at the `fn` token.  Appends to `fns`
/// and registers an open body (if any) in `open_fns`.  Returns the index
/// to resume the main scan from (the body `{`, so the scope stack sees
/// it).
fn parse_fn(
    file: &SourceFile,
    i: usize,
    scopes: &[ScopeKind],
    fns: &mut Vec<FnItem>,
    open_fns: &mut Vec<(usize, usize)>,
) -> usize {
    let n = file.sig.len();
    let name = file.sig_text(i + 1).to_string();
    if name.is_empty()
        || !name
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
    {
        return i + 1; // `fn` inside a type like `fn(u32) -> u32`
    }
    let mut j = i + 2;
    if file.sig_text(j) == "<" {
        j = skip_angles(file, j);
    }
    if file.sig_text(j) != "(" {
        return i + 1;
    }
    let close = match_paren(file, j);
    let (params, has_self) = parse_params(file, j, close);
    // Skip return type / where clause to the body `{` or a `;`.
    let mut k = close + 1;
    let mut angle = 0i32;
    while k < n {
        let t = file.sig_text(k);
        match t {
            "<" => angle += 1,
            ">" if file.sig_text(k - 1) != "-" => angle -= 1,
            "{" | ";" if angle <= 0 => break,
            _ => {}
        }
        k += 1;
    }
    let module: Vec<String> = scopes
        .iter()
        .filter_map(|s| match s {
            ScopeKind::Mod(m) => Some(m.clone()),
            _ => None,
        })
        .collect();
    let self_type = scopes.iter().rev().find_map(|s| match s {
        ScopeKind::Type(t) if !t.is_empty() => Some(t.clone()),
        _ => None,
    });
    let tok = file.sig_token(i).copied();
    let body = (k < n && file.sig_text(k) == "{").then_some((k, n.saturating_sub(1)));
    fns.push(FnItem {
        name,
        module,
        self_type,
        is_pub: is_pub_before(file, i),
        has_self,
        params,
        body,
        byte_start: tok.map(|t| t.start).unwrap_or(0),
        line: tok.map(|t| t.line).unwrap_or(1),
        col: tok.map(|t| t.col).unwrap_or(1),
    });
    if body.is_some() {
        open_fns.push((fns.len() - 1, scopes.len()));
        k // resume at the `{` so the scope stack tracks the body
    } else {
        k + 1
    }
}

/// Parses the parameter list between `(` at `open` and `)` at `close`.
fn parse_params(file: &SourceFile, open: usize, close: usize) -> (Vec<Param>, bool) {
    let mut params = Vec::new();
    let mut has_self = false;
    let mut start = open + 1;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    let mut k = open + 1;
    while k <= close {
        let t = file.sig_text(k);
        let at_end = k == close;
        let top_comma = t == "," && paren == 0 && bracket == 0 && angle <= 0;
        if top_comma || at_end {
            if k > start {
                match parse_one_param(file, start, k) {
                    Some(p) => params.push(p),
                    None => has_self = true,
                }
            }
            start = k + 1;
        } else {
            match t {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "<" => angle += 1,
                ">" if file.sig_text(k - 1) != "-" => angle -= 1,
                _ => {}
            }
        }
        k += 1;
    }
    (params, has_self)
}

/// Parses one parameter in `[a, b)`.  Returns `None` for a `self`
/// receiver (in any of its forms).
fn parse_one_param(file: &SourceFile, a: usize, b: usize) -> Option<Param> {
    // A receiver: `self`, `&self`, `&mut self`, `&'a self`, `mut self`,
    // `self: Arc<Self>` — `self` appears in the leading tokens before any
    // `:` that isn't `self:` itself.
    let colon = (a..b).find(|&k| file.sig_text(k) == ":");
    let head_end = colon.unwrap_or(b);
    if (a..head_end).any(|k| file.sig_text(k) == "self") {
        return None;
    }
    let name = (a..head_end)
        .rev()
        .map(|k| file.sig_text(k))
        .find(|t| {
            t.chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
                && *t != "mut"
        })
        .unwrap_or("")
        .to_string();
    let ty = match colon {
        Some(c) if c + 1 < b => {
            let first = file.sig_token(c + 1)?;
            let last = file.sig_token(b - 1)?;
            file.text
                .get(first.start..last.end)
                .unwrap_or("")
                .to_string()
        }
        _ => String::new(),
    };
    Some(Param { name, ty })
}

/// Parses one `use` declaration starting at the `use` token, appending a
/// leaf per imported name.  Returns the index after the closing `;`.
fn parse_use(file: &SourceFile, i: usize, out: &mut Vec<UseDecl>) -> usize {
    let n = file.sig.len();
    // Find the terminating `;` at brace depth 0 (groups nest with `{}`).
    let mut end = i + 1;
    let mut depth = 0i32;
    while end < n {
        match file.sig_text(end) {
            "{" => depth += 1,
            "}" => depth -= 1,
            ";" if depth <= 0 => break,
            _ => {}
        }
        end += 1;
    }
    let mut prefix: Vec<String> = Vec::new();
    parse_use_tree(file, i + 1, end, &mut prefix, out);
    end + 1
}

/// Recursively parses a use tree in `[a, b)` with the accumulated
/// `prefix`, appending leaves to `out`.
fn parse_use_tree(
    file: &SourceFile,
    a: usize,
    b: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseDecl>,
) {
    let pushed = prefix.len();
    let mut k = a;
    let mut last_seg: Option<String> = None;
    while k < b {
        let t = file.sig_text(k);
        match t {
            ":" => {
                // `::` — the pending segment joins the prefix.
                if let Some(seg) = last_seg.take() {
                    prefix.push(seg);
                }
                k += 1; // skip the second `:` via the outer increment
            }
            "{" => {
                // A group: split members at top-level commas.
                let close = match_brace(file, k);
                let mut item_start = k + 1;
                let mut depth = 0i32;
                for m in k + 1..close {
                    match file.sig_text(m) {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        "," if depth == 0 => {
                            parse_use_tree(file, item_start, m, prefix, out);
                            item_start = m + 1;
                        }
                        _ => {}
                    }
                }
                if close > item_start {
                    parse_use_tree(file, item_start, close, prefix, out);
                }
                prefix.truncate(pushed);
                return;
            }
            "as" => {
                // `… as alias` — emit with the rename and stop.
                let alias = file.sig_text(k + 1).to_string();
                if let Some(seg) = last_seg.take() {
                    if alias != "_" {
                        let mut segments = prefix.clone();
                        segments.push(seg);
                        out.push(UseDecl { segments, alias });
                    }
                }
                prefix.truncate(pushed);
                return;
            }
            "*" => {
                // Glob imports are not tracked (rare outside tests).
                prefix.truncate(pushed);
                return;
            }
            _ if t
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_') =>
            {
                last_seg = Some(t.to_string());
            }
            _ => {}
        }
        k += 1;
    }
    if let Some(seg) = last_seg {
        let mut segments = prefix.clone();
        segments.push(seg.clone());
        out.push(UseDecl {
            segments,
            alias: seg,
        });
    }
    prefix.truncate(pushed);
}

/// Finds the index of the `}` matching the `{` at index `open`.
fn match_brace(file: &SourceFile, open: usize) -> usize {
    let n = file.sig.len();
    let mut depth = 0i32;
    let mut j = open;
    while j < n {
        match file.sig_text(j) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth <= 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    n.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn parse(text: &str) -> FileItems {
        parse_items(&SourceFile::parse(
            "crates/x/src/lib.rs",
            "mdrr-x",
            FileKind::LibSrc,
            text.to_string(),
        ))
    }

    #[test]
    fn fn_signatures_params_and_bodies() {
        let items = parse(
            "pub fn alpha(ds: &Dataset, n: usize) -> Result<Vec<u32>, E> { beta(ds) }\n\
             fn beta(records: &[u32]) {}\n",
        );
        assert_eq!(items.fns.len(), 2);
        let a = &items.fns[0];
        assert!(a.is_pub && !a.has_self);
        assert_eq!(a.name, "alpha");
        assert_eq!(a.params.len(), 2);
        assert_eq!(a.params[0].name, "ds");
        assert_eq!(a.params[0].ty, "&Dataset");
        assert!(a.body.is_some());
        let b = &items.fns[1];
        assert!(!b.is_pub);
        assert_eq!(b.params[0].ty, "&[u32]");
    }

    #[test]
    fn impl_and_trait_scopes_attach_self_types() {
        let items = parse(
            "impl Snapshot { pub fn to_bytes(&self) -> Vec<u8> { vec![] } }\n\
             impl fmt::Display for StoreError { fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) } }\n\
             trait Protocol { fn encode(&self) -> u32 { 0 } }\n",
        );
        let names: Vec<(Option<&str>, &str, bool)> = items
            .fns
            .iter()
            .map(|f| (f.self_type.as_deref(), f.name.as_str(), f.has_self))
            .collect();
        assert_eq!(
            names,
            vec![
                (Some("Snapshot"), "to_bytes", true),
                (Some("StoreError"), "fmt", true),
                (Some("Protocol"), "encode", true),
            ]
        );
        assert_eq!(items.trait_impls.len(), 1);
        assert_eq!(items.trait_impls[0].trait_name, "Display");
        assert_eq!(items.trait_impls[0].type_name, "StoreError");
    }

    #[test]
    fn inline_mods_contribute_module_paths() {
        let items = parse("mod inner { pub fn deep() {} }\nfn shallow() {}\n");
        assert_eq!(items.fns[0].module, vec!["inner".to_string()]);
        assert!(items.fns[1].module.is_empty());
    }

    #[test]
    fn use_trees_flatten_with_groups_and_renames() {
        let items = parse(
            "use mdrr_store::{Snapshot, io::atomic_write};\n\
             use crate::report::Report as Rep;\n\
             use mdrr_data::Dataset;\n",
        );
        let got: Vec<(String, Vec<String>)> = items
            .uses
            .iter()
            .map(|u| (u.alias.clone(), u.segments.clone()))
            .collect();
        assert!(got.contains(&(
            "Snapshot".into(),
            vec!["mdrr_store".into(), "Snapshot".into()]
        )));
        assert!(got.contains(&(
            "atomic_write".into(),
            vec!["mdrr_store".into(), "io".into(), "atomic_write".into()]
        )));
        assert!(got.contains(&(
            "Rep".into(),
            vec!["crate".into(), "report".into(), "Report".into()]
        )));
        assert!(got.contains(&("Dataset".into(), vec!["mdrr_data".into(), "Dataset".into()])));
    }

    #[test]
    fn generics_where_clauses_and_fn_types_do_not_derail() {
        let items = parse(
            "pub fn generic<F: Fn(u32) -> u32, T>(f: F, xs: Vec<(u32, T)>) -> u32\n\
             where T: Clone { f(0) }\n\
             fn takes_fn_ptr(cb: fn(u32) -> u32) -> u32 { cb(1) }\n",
        );
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].name, "generic");
        assert_eq!(items.fns[0].params.len(), 2);
        assert_eq!(items.fns[1].name, "takes_fn_ptr");
        assert_eq!(items.fns[1].params.len(), 1);
    }

    #[test]
    fn bodies_close_at_the_matching_brace() {
        let src = "fn outer() { if x { y(); } }\nfn after() {}\n";
        let items = parse(src);
        assert_eq!(items.fns.len(), 2);
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "mdrr-x",
            FileKind::LibSrc,
            src.into(),
        );
        let (open, close) = items.fns[0].body.unwrap();
        assert_eq!(f.sig_text(open), "{");
        assert_eq!(f.sig_text(close), "}");
        // The close brace is the one before `fn after`, not the inner one.
        let close_tok = f.sig_token(close).unwrap();
        assert!(close_tok.start < src.find("fn after").unwrap());
        assert!(close_tok.start > src.find("y()").unwrap());
    }
}
