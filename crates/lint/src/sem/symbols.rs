//! The workspace symbol table: every analyzable function, indexed for
//! path-, `use`- and receiver-aware call resolution.
//!
//! Resolution is deliberately *tiered*: a call is matched against the
//! caller's own module first, then its file's `use` imports, then the
//! caller's crate, and only then by bare name across the workspace —
//! and the bare-name tier is restricted to crates the file actually
//! imports, so common names (`merge`, `write`, `record`) cannot create
//! edges into crates the caller never touches.  Qualified calls that do
//! not resolve inside the workspace (std, vendored shims) resolve to
//! nothing rather than to a same-named stranger.

use super::items::{self, Param};
use crate::source::{FileKind, SourceFile};
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet};

/// Index of a function in [`SymbolTable::fns`].
pub type FnId = usize;

/// One analyzable function: an [`items::FnItem`] placed at its
/// workspace-level location.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index of the owning file in `Workspace::files`.
    pub file: usize,
    /// Workspace-relative path of the owning file.
    pub rel: String,
    /// The owning crate's package name (`mdrr-store`).
    pub crate_name: String,
    /// The crate's identifier form (`mdrr_store`).
    pub crate_ident: String,
    /// Full module path: file location plus inline `mod` nesting.
    pub module: Vec<String>,
    /// The `impl`/`trait` type the fn belongs to, if any.
    pub self_type: Option<String>,
    /// The function's name.
    pub name: String,
    /// Whether the fn is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Whether the signature takes `self`.
    pub has_self: bool,
    /// The non-self parameters.
    pub params: Vec<Param>,
    /// Body token range (`{`, `}`) in significant-token indices.
    pub body: Option<(usize, usize)>,
    /// The owning file's kind (lib, bin, …).
    pub kind: FileKind,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
}

impl FnDef {
    /// The human-readable qualified name used in diagnostics:
    /// `mdrr_store::io::SnapshotWriter::write`.
    pub fn qualified(&self) -> String {
        let mut out = self.crate_ident.clone();
        for m in &self.module {
            out.push_str("::");
            out.push_str(m);
        }
        if let Some(t) = &self.self_type {
            out.push_str("::");
            out.push_str(t);
        }
        out.push_str("::");
        out.push_str(&self.name);
        out
    }
}

/// How a call site names its callee.
#[derive(Debug, Clone)]
pub enum Callee {
    /// `name(…)` — an unqualified call.
    Plain(String),
    /// `a::b::name(…)` — the segments before the final name.
    Qualified(Vec<String>, String),
    /// `recv.name(…)` — with the receiver's type when inferable.
    Method {
        /// The method name.
        name: String,
        /// The receiver's type name, when inference succeeded.
        recv_type: Option<String>,
    },
}

/// The workspace-wide function index.  Only non-test functions from
/// library and binary sources are analyzable: test, bench and example
/// code is never a resolution target, so it cannot fabricate call-graph
/// edges into the contract-bearing tree.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every analyzable function.
    pub fns: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<FnId>>,
    by_type_method: BTreeMap<(String, String), Vec<FnId>>,
    by_module: BTreeMap<(String, String, String), Vec<FnId>>,
    /// Per file index: alias → full path segments from `use` decls.
    uses: BTreeMap<usize, BTreeMap<String, Vec<String>>>,
    /// Per file index: crate idents the file names in `use` decls
    /// (plus its own crate) — the bare-name fallback search space.
    visible_crates: BTreeMap<usize, BTreeSet<String>>,
    /// type name → traits it implements (for trait-method resolution).
    trait_impls: BTreeMap<String, BTreeSet<String>>,
    /// Every crate ident in the workspace.
    crate_idents: BTreeSet<String>,
    /// Every type name that owns at least one method.
    known_types: BTreeSet<String>,
}

/// The module path a file's location contributes: `crates/x/src/a/b.rs`
/// → `["a", "b"]`; `lib.rs`, `main.rs`, `mod.rs` terminate the path;
/// bin/test/bench/example files are their own crate roots.
pub fn file_module_path(rel: &str, kind: FileKind) -> Vec<String> {
    if kind != FileKind::LibSrc {
        return Vec::new();
    }
    let after_src = rel
        .split_once("/src/")
        .map(|(_, rest)| rest)
        .or_else(|| rel.strip_prefix("src/"))
        .unwrap_or(rel);
    let mut path: Vec<String> = after_src
        .trim_end_matches(".rs")
        .split('/')
        .map(str::to_string)
        .collect();
    if matches!(
        path.last().map(String::as_str),
        Some("lib") | Some("main") | Some("mod")
    ) {
        path.pop();
    }
    path
}

impl SymbolTable {
    /// Builds the table over every analyzable file of `ws`.
    pub fn build(ws: &Workspace) -> SymbolTable {
        let mut st = SymbolTable::default();
        for (file_idx, file) in ws.files.iter().enumerate() {
            if !matches!(file.kind, FileKind::LibSrc | FileKind::BinSrc) {
                continue;
            }
            let crate_ident = file.crate_name.replace('-', "_");
            st.crate_idents.insert(crate_ident.clone());
            let items = items::parse_items(file);
            let mut aliases = BTreeMap::new();
            let mut visible = BTreeSet::new();
            visible.insert(crate_ident.clone());
            for u in &items.uses {
                if let Some(first) = u.segments.first() {
                    visible.insert(first.clone());
                }
                aliases.insert(u.alias.clone(), u.segments.clone());
            }
            st.uses.insert(file_idx, aliases);
            st.visible_crates.insert(file_idx, visible);
            for ti in &items.trait_impls {
                st.trait_impls
                    .entry(ti.type_name.clone())
                    .or_default()
                    .insert(ti.trait_name.clone());
            }
            let base_module = file_module_path(&file.rel, file.kind);
            for f in items.fns {
                if file.in_test_code(f.byte_start) {
                    continue;
                }
                let mut module = base_module.clone();
                module.extend(f.module.iter().cloned());
                let id = st.fns.len();
                let def = FnDef {
                    file: file_idx,
                    rel: file.rel.clone(),
                    crate_name: file.crate_name.clone(),
                    crate_ident: crate_ident.clone(),
                    module,
                    self_type: f.self_type,
                    name: f.name,
                    is_pub: f.is_pub,
                    has_self: f.has_self,
                    params: f.params,
                    body: f.body,
                    kind: file.kind,
                    line: f.line,
                    col: f.col,
                };
                st.by_name.entry(def.name.clone()).or_default().push(id);
                if let Some(t) = &def.self_type {
                    st.known_types.insert(t.clone());
                    st.by_type_method
                        .entry((t.clone(), def.name.clone()))
                        .or_default()
                        .push(id);
                } else {
                    st.by_module
                        .entry((
                            def.crate_ident.clone(),
                            def.module.join("::"),
                            def.name.clone(),
                        ))
                        .or_default()
                        .push(id);
                }
                st.fns.push(def);
            }
        }
        st
    }

    /// The function at `id`.
    pub fn def(&self, id: FnId) -> &FnDef {
        &self.fns[id]
    }

    /// Whether `name` is a type that owns methods in the workspace.
    pub fn is_known_type(&self, name: &str) -> bool {
        self.known_types.contains(name)
    }

    /// The first workspace type name mentioned in a type text
    /// (`&mut RecordsView<'a>` → `RecordsView`), if any.
    pub fn type_in_text(&self, ty: &str) -> Option<String> {
        split_words(ty)
            .into_iter()
            .find(|w| self.known_types.contains(w))
    }

    /// Resolves one call site in `caller` to its candidate definitions.
    /// Unresolvable calls (std, vendored shims) return an empty set.
    pub fn resolve(&self, caller: FnId, callee: &Callee) -> Vec<FnId> {
        let def = &self.fns[caller];
        match callee {
            Callee::Plain(name) => self.resolve_plain(def, name),
            Callee::Qualified(segs, name) => self.resolve_qualified(def, segs, name),
            Callee::Method { name, recv_type } => {
                self.resolve_method(def, name, recv_type.as_deref())
            }
        }
    }

    fn resolve_plain(&self, caller: &FnDef, name: &str) -> Vec<FnId> {
        // Tier 1: the caller's own module.
        if let Some(ids) = self.by_module.get(&(
            caller.crate_ident.clone(),
            caller.module.join("::"),
            name.to_string(),
        )) {
            return ids.clone();
        }
        // Tier 2: a `use` import of exactly this name.
        if let Some(segs) = self.uses.get(&caller.file).and_then(|m| m.get(name)) {
            if segs.len() > 1 {
                let found =
                    self.resolve_qualified(caller, &segs[..segs.len() - 1], &segs[segs.len() - 1]);
                if !found.is_empty() {
                    return found;
                }
            }
        }
        // Tier 3: anywhere in the caller's crate (free functions only).
        let in_crate: Vec<FnId> = self
            .named_free(name)
            .filter(|&id| self.fns[id].crate_ident == caller.crate_ident)
            .collect();
        if !in_crate.is_empty() {
            return in_crate;
        }
        // Tier 4: any crate the file imports.
        let visible = self.visible_crates.get(&caller.file);
        self.named_free(name)
            .filter(|&id| visible.is_some_and(|v| v.contains(&self.fns[id].crate_ident)))
            .collect()
    }

    /// Free (non-associated) functions named `name`.
    fn named_free<'a>(&'a self, name: &str) -> impl Iterator<Item = FnId> + 'a {
        self.by_name
            .get(name)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
            .filter(|&id| self.fns[id].self_type.is_none())
    }

    fn resolve_qualified(&self, caller: &FnDef, segs: &[impl AsRef<str>], name: &str) -> Vec<FnId> {
        let mut segs: Vec<String> = segs.iter().map(|s| s.as_ref().to_string()).collect();
        // Expand a leading `use` alias (`Snapshot::…`, `io::…`).
        if let Some(first) = segs.first().cloned() {
            if let Some(full) = self.uses.get(&caller.file).and_then(|m| m.get(&first)) {
                let mut expanded = full.clone();
                expanded.extend(segs.drain(1..));
                segs = expanded;
            }
        }
        // Normalize crate-relative heads.
        let (crate_ident, rest): (String, Vec<String>) = match segs.first().map(String::as_str) {
            Some("crate") => (caller.crate_ident.clone(), segs[1..].to_vec()),
            Some("self") => {
                let mut m = caller.module.clone();
                m.extend(segs[1..].iter().cloned());
                (caller.crate_ident.clone(), m)
            }
            Some("super") => {
                let mut m = caller.module.clone();
                m.pop();
                m.extend(segs[1..].iter().cloned());
                (caller.crate_ident.clone(), m)
            }
            Some(first) if self.crate_idents.contains(first) => {
                (first.to_string(), segs[1..].to_vec())
            }
            _ => (caller.crate_ident.clone(), segs.clone()),
        };
        // A trailing type segment means an associated call.
        if let Some(last) = rest.last() {
            if self.known_types.contains(last) {
                return self.methods_of(last, name);
            }
            // Unknown capitalized tail: a std/vendored type or an enum
            // variant constructor — resolve to nothing.
            if last.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                return Vec::new();
            }
        }
        self.by_module
            .get(&(crate_ident, rest.join("::"), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    fn resolve_method(&self, caller: &FnDef, name: &str, recv_type: Option<&str>) -> Vec<FnId> {
        if let Some(t) = recv_type {
            if self.known_types.contains(t) {
                return self.methods_of(t, name);
            }
        }
        // Unknown receiver: every method of this name in any crate the
        // file imports (or the caller's own).
        let visible = self.visible_crates.get(&caller.file);
        self.by_name
            .get(name)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
            .filter(|&id| {
                self.fns[id].self_type.is_some()
                    && visible.is_some_and(|v| v.contains(&self.fns[id].crate_ident))
            })
            .collect()
    }

    /// Inherent methods of `ty` named `name`, plus same-named methods of
    /// every trait `ty` implements (default trait bodies count).
    fn methods_of(&self, ty: &str, name: &str) -> Vec<FnId> {
        let mut out = self
            .by_type_method
            .get(&(ty.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default();
        if let Some(traits) = self.trait_impls.get(ty) {
            for tr in traits {
                if let Some(ids) = self.by_type_method.get(&(tr.clone(), name.to_string())) {
                    out.extend(ids.iter().copied());
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Infers the type of a simple receiver identifier inside `caller`:
    /// `self` → the impl type; a parameter → the first workspace type in
    /// its type text; a local → from `let x: T` or `let x = T::…`.
    pub fn receiver_type(&self, caller: FnId, file: &SourceFile, recv: &str) -> Option<String> {
        let def = &self.fns[caller];
        if recv == "self" {
            return def.self_type.clone();
        }
        if let Some(p) = def.params.iter().find(|p| p.name == recv) {
            return self.type_in_text(&p.ty);
        }
        let (b0, b1) = def.body?;
        let mut k = b0;
        while k + 2 < b1 {
            if file.sig_text(k) == "let" {
                let mut j = k + 1;
                if file.sig_text(j) == "mut" {
                    j += 1;
                }
                if file.sig_text(j) == recv {
                    // `let recv: Type` or `let recv = Type::…`.
                    if file.sig_text(j + 1) == ":" {
                        for m in j + 2..(j + 8).min(b1) {
                            let t = file.sig_text(m);
                            if self.known_types.contains(t) {
                                return Some(t.to_string());
                            }
                            if t == "=" || t == ";" {
                                break;
                            }
                        }
                    } else if file.sig_text(j + 1) == "="
                        && self.known_types.contains(file.sig_text(j + 2))
                        && file.sig_text(j + 3) == ":"
                    {
                        return Some(file.sig_text(j + 2).to_string());
                    }
                }
            }
            k += 1;
        }
        None
    }
}

/// Splits a type text into identifier words.
fn split_words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(files: Vec<(&str, &str)>) -> (Workspace, SymbolTable) {
        let ws = Workspace::in_memory(files, vec![]);
        let st = SymbolTable::build(&ws);
        (ws, st)
    }

    fn find(st: &SymbolTable, name: &str) -> FnId {
        st.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn file_paths_map_to_module_paths() {
        assert!(file_module_path("crates/store/src/lib.rs", FileKind::LibSrc).is_empty());
        assert_eq!(
            file_module_path("crates/store/src/format.rs", FileKind::LibSrc),
            vec!["format"]
        );
        assert_eq!(
            file_module_path("crates/eval/src/experiments/runner.rs", FileKind::LibSrc),
            vec!["experiments", "runner"]
        );
        assert_eq!(
            file_module_path("crates/eval/src/experiments/mod.rs", FileKind::LibSrc),
            vec!["experiments"]
        );
        assert!(file_module_path("crates/bench/src/bin/sim.rs", FileKind::BinSrc).is_empty());
    }

    #[test]
    fn cross_crate_use_import_resolves_to_the_exact_target() {
        let (_ws, st) = table(vec![
            (
                "crates/store/src/io.rs",
                "pub fn atomic_write(b: &[u8]) {}\n",
            ),
            (
                "crates/stream/src/lib.rs",
                "use mdrr_store::io::atomic_write;\npub fn save() { atomic_write(&[]) }\n",
            ),
        ]);
        let caller = find(&st, "save");
        let target = find(&st, "atomic_write");
        assert_eq!(
            st.resolve(caller, &Callee::Plain("atomic_write".into())),
            vec![target]
        );
    }

    #[test]
    fn qualified_and_crate_relative_paths_resolve() {
        let (_ws, st) = table(vec![
            ("crates/a/src/util.rs", "pub fn helper() {}\n"),
            (
                "crates/a/src/lib.rs",
                "pub fn via_crate() { crate::util::helper() }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn via_full() { mdrr_a::util::helper() }\n",
            ),
        ]);
        let target = find(&st, "helper");
        let a = find(&st, "via_crate");
        let b = find(&st, "via_full");
        assert_eq!(
            st.resolve(
                a,
                &Callee::Qualified(vec!["crate".into(), "util".into()], "helper".into())
            ),
            vec![target]
        );
        assert_eq!(
            st.resolve(
                b,
                &Callee::Qualified(vec!["mdrr_a".into(), "util".into()], "helper".into())
            ),
            vec![target]
        );
    }

    #[test]
    fn method_resolution_uses_receiver_types_and_trait_defaults() {
        let (ws, st) = table(vec![
            (
                "crates/data/src/lib.rs",
                "pub struct Dataset;\nimpl Dataset { pub fn records(&self) {} }\n",
            ),
            (
                "crates/proto/src/lib.rs",
                "pub trait Protocol { fn encode(&self) {} }\n\
                 pub struct RR;\nimpl Protocol for RR {}\n",
            ),
            (
                "crates/user/src/lib.rs",
                "use mdrr_data::Dataset;\n\
                 pub fn f(ds: &Dataset) { ds.records() }\n",
            ),
        ]);
        let caller = find(&st, "f");
        let records = find(&st, "records");
        let file = &ws.files[st.def(caller).file];
        let recv = st.receiver_type(caller, file, "ds");
        assert_eq!(recv.as_deref(), Some("Dataset"));
        assert_eq!(
            st.resolve(
                caller,
                &Callee::Method {
                    name: "records".into(),
                    recv_type: recv
                }
            ),
            vec![records]
        );
        // Trait default bodies resolve through the implementing type.
        let encode = find(&st, "encode");
        assert_eq!(st.methods_of("RR", "encode"), vec![encode]);
    }

    #[test]
    fn unresolvable_externals_resolve_to_nothing() {
        let (_ws, st) = table(vec![(
            "crates/a/src/lib.rs",
            "pub fn f() { std::fs::read(\"x\"); serde_json::to_string(&1); }\n",
        )]);
        let caller = find(&st, "f");
        assert!(st
            .resolve(
                caller,
                &Callee::Qualified(vec!["std".into(), "fs".into()], "read".into())
            )
            .is_empty());
        assert!(st
            .resolve(
                caller,
                &Callee::Qualified(vec!["serde_json".into()], "to_string".into())
            )
            .is_empty());
    }

    #[test]
    fn bare_name_fallback_is_limited_to_imported_crates() {
        let (_ws, st) = table(vec![
            ("crates/far/src/lib.rs", "pub fn shared_name() {}\n"),
            (
                "crates/near/src/lib.rs",
                "pub fn caller_without_import() { shared_name() }\n",
            ),
            (
                "crates/linked/src/lib.rs",
                "use mdrr_far::shared_name;\npub fn caller_with_import() { shared_name() }\n",
            ),
        ]);
        let target = find(&st, "shared_name");
        let without = find(&st, "caller_without_import");
        let with = find(&st, "caller_with_import");
        assert!(
            st.resolve(without, &Callee::Plain("shared_name".into()))
                .is_empty(),
            "no import, no edge"
        );
        assert_eq!(
            st.resolve(with, &Callee::Plain("shared_name".into())),
            vec![target]
        );
    }

    #[test]
    fn test_code_is_never_a_resolution_target() {
        let (_ws, st) = table(vec![(
            "crates/a/src/lib.rs",
            "pub fn lib_fn() {}\n#[cfg(test)]\nmod tests { fn test_helper() {} }\n",
        )]);
        assert!(st.fns.iter().all(|f| f.name != "test_helper"));
    }
}
