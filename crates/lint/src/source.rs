//! A lexed source file plus the lint-directive structure extracted from
//! its comments: named `lint:region(…)` spans, `lint:allow(…)`
//! suppressions, and the `#[cfg(test)]` / `#[test]` ranges most rules
//! exclude.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, Token, TokenKind};
use std::cell::Cell;

/// Where in a crate a file lives — rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under `src/` (excluding `src/bin/`).
    LibSrc,
    /// Binary source (`src/bin/*` or `src/main.rs`).
    BinSrc,
    /// Integration test under `tests/`.
    Test,
    /// Criterion bench under `benches/`.
    Bench,
    /// Example under `examples/`.
    Example,
}

/// One named `// lint:region(name)` … `// lint:endregion(name)` byte span.
#[derive(Debug, Clone)]
pub struct Region {
    /// The region's name (e.g. `no_alloc`).
    pub name: String,
    /// First byte covered (just past the opening marker comment).
    pub start: usize,
    /// One past the last byte covered (start of the closing marker).
    pub end: usize,
}

/// One `// lint:allow(rule, reason = "…")` suppression.
#[derive(Debug)]
pub struct Suppression {
    /// The rule id being suppressed.
    pub rule: String,
    /// The mandatory human reason (absence is a hard error).
    pub reason: String,
    /// Line of the comment itself.
    pub line: u32,
    /// The line of code the suppression covers (the comment's own line for
    /// a trailing comment, otherwise the next line holding code).
    pub covers_line: u32,
    /// Set when a finding was actually suppressed — unused suppressions
    /// are reported so stale allows cannot linger.
    pub used: Cell<bool>,
}

/// A lexed file with its directive structure, ready for rules.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The owning crate's package name (`mdrr-store`, …), if any.
    pub crate_name: String,
    /// Which tree the file sits in (lib/bin/test/bench/example).
    pub kind: FileKind,
    /// The full file contents.
    pub text: String,
    /// Every token, tiling `text` (includes comments and whitespace).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// All named regions, in order of opening.
    pub regions: Vec<Region>,
    /// All suppressions found in comments.
    pub suppressions: Vec<Suppression>,
    /// Byte ranges of `#[cfg(test)]` items and `#[test]` functions.
    pub test_ranges: Vec<(usize, usize)>,
    /// Malformed-directive errors found while parsing this file.
    pub directive_errors: Vec<Diagnostic>,
}

impl SourceFile {
    /// Lexes `text` and extracts the directive structure.
    pub fn parse(rel: &str, crate_name: &str, kind: FileKind, text: String) -> SourceFile {
        let tokens = lex(&text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind.is_significant())
            .map(|(i, _)| i)
            .collect();
        let mut file = SourceFile {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            text,
            tokens,
            sig,
            regions: Vec::new(),
            suppressions: Vec::new(),
            test_ranges: Vec::new(),
            directive_errors: Vec::new(),
        };
        file.extract_directives();
        file.extract_test_ranges();
        file
    }

    /// The significant token at significant-index `i`, if any.
    pub fn sig_token(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).and_then(|&ti| self.tokens.get(ti))
    }

    /// The text of the significant token at significant-index `i`.
    pub fn sig_text(&self, i: usize) -> &str {
        self.sig_token(i).map(|t| t.text(&self.text)).unwrap_or("")
    }

    /// Whether byte offset `at` falls inside `#[cfg(test)]` / `#[test]`
    /// code.
    pub fn in_test_code(&self, at: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| at >= s && at < e)
    }

    /// Whether byte offset `at` falls inside a region named `name`.
    pub fn in_region(&self, name: &str, at: usize) -> bool {
        self.regions
            .iter()
            .any(|r| r.name == name && at >= r.start && at < r.end)
    }

    /// The 1-based source line `line`, if present.
    pub fn line_text(&self, line: u32) -> Option<&str> {
        self.text.lines().nth(line.saturating_sub(1) as usize)
    }

    /// Builds a snippet-carrying diagnostic anchored at token `tok`.
    pub fn diag_at(&self, rule: &str, tok: &Token, message: String) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            severity: Severity::Warning,
            file: self.rel.clone(),
            line: tok.line,
            col: tok.col,
            message,
            snippet: self.line_text(tok.line).map(str::to_string),
            span_chars: tok.text(&self.text).chars().count().max(1),
            help: None,
        }
    }

    /// Walks comment tokens for `lint:` directives: regions, endregions
    /// and allows.  Malformed directives become hard errors.
    fn extract_directives(&mut self) {
        // name -> stack of opening byte offsets.
        let mut open: Vec<(String, usize, u32)> = Vec::new();
        let comments: Vec<Token> = self
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .copied()
            .collect();
        for tok in comments {
            let body = comment_body(tok.text(&self.text)).to_string();
            let Some(directive) = body.trim().strip_prefix("lint:") else {
                continue;
            };
            let directive = directive.trim();
            if let Some(args) = parse_call(directive, "region") {
                for name in args.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    open.push((name.to_string(), tok.end, tok.line));
                }
            } else if let Some(args) = parse_call(directive, "endregion") {
                for name in args.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    match open.iter().rposition(|(n, _, _)| n == name) {
                        Some(i) => {
                            let (name, start, _) = open.remove(i);
                            self.regions.push(Region {
                                name,
                                start,
                                end: tok.start,
                            });
                        }
                        None => self.directive_error(
                            &tok,
                            format!("`lint:endregion({name})` closes a region that is not open"),
                        ),
                    }
                }
            } else if let Some(args) = parse_call(directive, "allow") {
                match parse_allow(args) {
                    Ok((rule, reason)) => {
                        let covers_line = self.line_covered_by_comment(&tok);
                        self.suppressions.push(Suppression {
                            rule,
                            reason,
                            line: tok.line,
                            covers_line,
                            used: Cell::new(false),
                        });
                    }
                    Err(why) => self.directive_error(&tok, why),
                }
            } else {
                self.directive_error(
                    &tok,
                    format!(
                        "unknown lint directive `{}` (expected `region(…)`, \
                         `endregion(…)` or `allow(rule, reason = \"…\")`)",
                        directive.chars().take(40).collect::<String>()
                    ),
                );
            }
        }
        // Regions left open at EOF are a directive error; close them at
        // EOF so scoped rules still see the code.
        for (name, start, line) in open {
            self.directive_errors.push(Diagnostic {
                rule: "lint-directive".into(),
                severity: Severity::Error,
                file: self.rel.clone(),
                line,
                col: 1,
                message: format!("`lint:region({name})` is never closed"),
                snippet: self.line_text(line).map(str::to_string),
                span_chars: 1,
                help: Some(format!("add `// lint:endregion({name})` after the region")),
            });
            self.regions.push(Region {
                name,
                start,
                end: self.text.len(),
            });
        }
    }

    /// The line a suppression comment covers: the comment's own line if
    /// code precedes it there (trailing comment), otherwise the line of
    /// the next significant token.
    fn line_covered_by_comment(&self, comment: &Token) -> u32 {
        let code_before_on_line = self
            .sig
            .iter()
            .filter_map(|&i| self.tokens.get(i))
            .any(|t| t.line == comment.line && t.start < comment.start);
        if code_before_on_line {
            return comment.line;
        }
        self.sig
            .iter()
            .filter_map(|&i| self.tokens.get(i))
            .find(|t| t.start > comment.end)
            .map(|t| t.line)
            .unwrap_or(comment.line)
    }

    fn directive_error(&mut self, tok: &Token, message: String) {
        self.directive_errors.push(Diagnostic {
            rule: "lint-directive".into(),
            severity: Severity::Error,
            file: self.rel.clone(),
            line: tok.line,
            col: tok.col,
            message,
            snippet: self.line_text(tok.line).map(str::to_string),
            span_chars: tok.text(&self.text).chars().count().max(1),
            help: None,
        });
    }

    /// Finds `#[cfg(test)]`-gated items and `#[test]` functions, recording
    /// their byte ranges so rules can exempt test code.
    fn extract_test_ranges(&mut self) {
        let n = self.sig.len();
        let mut i = 0;
        while i < n {
            if self.sig_text(i) != "#" || self.sig_text(i + 1) != "[" {
                i += 1;
                continue;
            }
            // Scan the attribute's bracket group for `cfg … test` or a
            // bare `test`.
            let attr_start = match self.sig_token(i) {
                Some(t) => t.start,
                None => break,
            };
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut saw_cfg = false;
            let mut saw_test = false;
            let mut first = true;
            while j < n && depth > 0 {
                match self.sig_text(j) {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "cfg" => saw_cfg = true,
                    "test" => {
                        saw_test = true;
                        if first {
                            // `#[test]` exactly.
                            saw_cfg = saw_cfg || self.sig_text(j + 1) == "]";
                        }
                    }
                    _ => {}
                }
                first = false;
                j += 1;
            }
            if !(saw_cfg && saw_test) {
                i += 1;
                continue;
            }
            // Skip any further attributes, then span the gated item: to
            // the matching `}` of its first brace, or to the `;` of a
            // braceless item.
            let mut k = j;
            while self.sig_text(k) == "#" && self.sig_text(k + 1) == "[" {
                let mut d = 1usize;
                k += 2;
                while k < n && d > 0 {
                    match self.sig_text(k) {
                        "[" => d += 1,
                        "]" => d -= 1,
                        _ => {}
                    }
                    k += 1;
                }
            }
            let mut end_byte = self.text.len();
            let mut d = 0usize;
            let mut m = k;
            while m < n {
                match self.sig_text(m) {
                    "{" => d += 1,
                    "}" => {
                        d = d.saturating_sub(1);
                        if d == 0 {
                            end_byte = self.sig_token(m).map(|t| t.end).unwrap_or(end_byte);
                            break;
                        }
                    }
                    ";" if d == 0 => {
                        end_byte = self.sig_token(m).map(|t| t.end).unwrap_or(end_byte);
                        break;
                    }
                    _ => {}
                }
                m += 1;
            }
            self.test_ranges.push((attr_start, end_byte));
            i = m.max(i + 1);
        }
    }
}

/// Strips comment markers, leaving the body text.
fn comment_body(text: &str) -> &str {
    let text = text
        .strip_prefix("///")
        .or_else(|| text.strip_prefix("//!"))
        .or_else(|| text.strip_prefix("//"))
        .unwrap_or(text);
    let text = text.strip_prefix("/*").unwrap_or(text);
    text.strip_suffix("*/").unwrap_or(text)
}

/// If `directive` is `name(args)`, returns `args`.
fn parse_call<'a>(directive: &'a str, name: &str) -> Option<&'a str> {
    let rest = directive.strip_prefix(name)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    rest.get(..close)
}

/// Parses `rule, reason = "…"`, enforcing that the reason is present and
/// non-empty.
fn parse_allow(args: &str) -> Result<(String, String), String> {
    let (rule, rest) = match args.split_once(',') {
        Some((r, rest)) => (r.trim(), rest.trim()),
        None => (args.trim(), ""),
    };
    if rule.is_empty() {
        return Err("`lint:allow` names no rule".to_string());
    }
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err(format!(
            "`lint:allow({rule})` carries no reason — every suppression must \
             explain itself: `// lint:allow({rule}, reason = \"…\")`"
        ));
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", "x", FileKind::LibSrc, text.into())
    }

    #[test]
    fn regions_open_and_close_by_name() {
        let f = file(
            "fn a() {\n// lint:region(no_alloc)\nlet x = 1;\n// lint:endregion(no_alloc)\nlet y = 2;\n}",
        );
        assert_eq!(f.regions.len(), 1);
        let x_at = f.text.find("let x").unwrap();
        let y_at = f.text.find("let y").unwrap();
        assert!(f.in_region("no_alloc", x_at));
        assert!(!f.in_region("no_alloc", y_at));
        assert!(f.directive_errors.is_empty());
    }

    #[test]
    fn comma_lists_open_multiple_regions() {
        let f = file(
            "// lint:region(no_alloc, no_float)\nlet x = 1;\n// lint:endregion(no_alloc, no_float)\n",
        );
        assert_eq!(f.regions.len(), 2);
        let at = f.text.find("let x").unwrap();
        assert!(f.in_region("no_alloc", at) && f.in_region("no_float", at));
    }

    #[test]
    fn unbalanced_regions_are_hard_errors() {
        let f = file("// lint:region(no_alloc)\nlet x = 1;\n");
        assert_eq!(f.directive_errors.len(), 1);
        assert!(f.directive_errors[0].message.contains("never closed"));
        let g = file("// lint:endregion(no_alloc)\n");
        assert!(g.directive_errors[0].message.contains("not open"));
    }

    #[test]
    fn allow_requires_a_reason() {
        let f = file("// lint:allow(no-panic-paths)\nx.unwrap();\n");
        assert_eq!(f.suppressions.len(), 0);
        assert!(f.directive_errors[0].message.contains("carries no reason"));

        let g =
            file("// lint:allow(no-panic-paths, reason = \"bounds checked above\")\nx.unwrap();\n");
        assert!(g.directive_errors.is_empty());
        assert_eq!(g.suppressions.len(), 1);
        assert_eq!(g.suppressions[0].rule, "no-panic-paths");
        assert_eq!(g.suppressions[0].covers_line, 2);
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let g = file("x.unwrap(); // lint:allow(no-panic-paths, reason = \"test fixture only\")\n");
        assert_eq!(g.suppressions[0].covers_line, 1);
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_ranged() {
        let f = file(
            "pub fn lib() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n\
             pub fn lib2() {}\n",
        );
        assert_eq!(f.test_ranges.len(), 1);
        assert!(f.in_test_code(f.text.find("helper").unwrap()));
        assert!(!f.in_test_code(f.text.find("lib2").unwrap()));

        let g = file("#[test]\nfn unit() { assert!(true); }\nfn not_test() {}\n");
        assert!(g.in_test_code(g.text.find("unit").unwrap()));
        assert!(!g.in_test_code(g.text.find("not_test").unwrap()));
    }
}
