//! **seeded-rng-only** — byte-identical crash-resume (the CI `cmp`s a
//! killed+resumed run against an uninterrupted one) only holds if *every*
//! draw on the deterministic-resume path flows from an explicit seed:
//! shard RNGs derive from `offset_base_seed`, the generator RNG persists
//! its xoshiro state in `app_state`.  One ambient-entropy source anywhere
//! in `mdrr-core`, `mdrr-protocols`, `mdrr-store`, `mdrr-stream` or
//! `mdrr-serve` library code breaks the contract invisibly (the daemon
//! sits on the same path: its collector state must be reproducible from
//! the batches it ingests).  This rule forbids
//! `thread_rng`, `from_entropy` and `random` there (tests excluded).
//! Ambient *clock* reads are the workspace-wide concern of the companion
//! rule `no-ambient-clock-in-lib`.

use super::{suppress_help, Rule};
use crate::diag::Diagnostic;
use crate::source::FileKind;
use crate::workspace::Workspace;

/// Crates whose library code sits on the deterministic-resume path.
const SCOPED_CRATES: [&str; 5] = [
    "mdrr-core",
    "mdrr-protocols",
    "mdrr-store",
    "mdrr-stream",
    "mdrr-serve",
];

/// Identifiers that smuggle in ambient entropy.
const FORBIDDEN: [(&str, &str); 3] = [
    ("thread_rng", "draws from ambient OS entropy"),
    ("from_entropy", "seeds from ambient OS entropy"),
    ("random", "draws from the ambient thread-local RNG"),
];

/// See the module docs.
pub struct SeededRngOnly;

impl Rule for SeededRngOnly {
    fn id(&self) -> &'static str {
        "seeded-rng-only"
    }

    fn description(&self) -> &'static str {
        "deterministic-resume crates must seed all randomness explicitly (no ambient entropy)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in ws.files.iter().filter(|f| {
            SCOPED_CRATES.contains(&f.crate_name.as_str()) && f.kind == FileKind::LibSrc
        }) {
            for &ti in &file.sig {
                let Some(tok) = file.tokens.get(ti) else {
                    continue;
                };
                if file.in_test_code(tok.start) {
                    continue;
                }
                let text = tok.text(&file.text);
                if let Some((name, why)) = FORBIDDEN.iter().find(|(n, _)| *n == text) {
                    out.push(
                        file.diag_at(
                            self.id(),
                            tok,
                            format!(
                                "`{name}` {why} — non-reproducible on the \
                                 deterministic-resume path"
                            ),
                        )
                        .with_help(format!(
                            "derive the value from an explicit seed or pass it in from the \
                             caller, {}",
                            suppress_help(self.id())
                        )),
                    );
                }
            }
        }
    }
}
