//! **Contract:** `mdrr-store` promises "no panic on any malformed
//! input" and the `ShardedCollector` checkpoint/restore path inherits
//! it.  The file-scoped `no-panic-paths` rule polices the promising
//! crates' own bodies; this rule extends the promise *transitively* —
//! no public API of `mdrr-store`, and nothing in
//! `crates/stream/src/checkpoint.rs`, may reach an explicit panic
//! anywhere in the workspace through any call chain.
//!
//! The interprocedural vocabulary is the explicit-panic subset
//! (`unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`);
//! slice indexing and `assert!` are deliberately *not* propagated across
//! calls — the validated numeric kernels index slices pervasively under
//! proven bounds, and flagging them transitively would drown the signal
//! (inside the promising files themselves, `no-panic-paths` still flags
//! indexing).  Panic sites inside the file-scoped rule's own
//! jurisdiction are skipped here so one defect is one finding.

use super::Rule;
use crate::diag::Diagnostic;
use crate::sem::symbols::{FnDef, FnId};
use crate::source::FileKind;
use crate::workspace::Workspace;

/// See the module docs.
pub struct PanicReachability;

/// Macros that abort.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Methods that abort on the unhappy path.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Whether `def` is a reachability root: a public `mdrr-store` library
/// function, or anything on the checkpoint/restore path.
fn is_root(def: &FnDef) -> bool {
    (def.crate_name == "mdrr-store" && def.kind == FileKind::LibSrc && def.is_pub)
        || def.rel == "crates/stream/src/checkpoint.rs"
}

/// Whether `def`'s panic sites belong to the file-scoped
/// `no-panic-paths` rule instead of this one.
fn in_file_rule_scope(def: &FnDef) -> bool {
    (def.crate_name == "mdrr-store" && def.kind == FileKind::LibSrc)
        || def.rel == "crates/stream/src/checkpoint.rs"
}

impl Rule for PanicReachability {
    fn id(&self) -> &'static str {
        "panic-reachability"
    }

    fn description(&self) -> &'static str {
        "no public mdrr-store API or checkpoint/restore path may transitively reach a panic"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let sem = ws.sem();
        let st = &sem.symbols;
        let g = &sem.graph;

        let roots: Vec<FnId> = (0..st.fns.len()).filter(|&f| is_root(st.def(f))).collect();
        let preds = g.reach(roots);

        for &f in preds.keys() {
            let def = st.def(f);
            if in_file_rule_scope(def) {
                continue;
            }
            let Some((b0, b1)) = def.body else { continue };
            let file = &ws.files[def.file];
            let chain = g.chain(&preds, f);
            let chain_text = g.chain_text(st, &chain);
            for i in (b0 + 1)..b1 {
                let op = if super::is_method_call(file, i, PANIC_METHODS) {
                    Some(format!(".{}(…)", file.sig_text(i)))
                } else if super::is_macro_call(file, i, PANIC_MACROS) {
                    Some(format!("{}!", file.sig_text(i)))
                } else {
                    None
                };
                let Some(op) = op else { continue };
                let Some(tok) = file.sig_token(i).copied() else {
                    continue;
                };
                if file.in_test_code(tok.start) {
                    continue;
                }
                let mut d = file.diag_at(
                    self.id(),
                    &tok,
                    format!("`{op}` is reachable from the no-panic boundary: {chain_text}",),
                );
                d.help = Some(format!(
                    "map the failure into a typed error and propagate with `?`, {}",
                    super::suppress_help(self.id())
                ));
                out.push(d);
            }
        }
    }
}
