//! **no-float-in-kernel** — the PR-4 batch kernels
//! (`PreparedRandomizer::randomize_strided_into` /
//! `randomize_strided_tally` and the shared keep/redraw kernel in
//! `mdrr-core`) are bit-identical to the per-record reference path
//! precisely because the hot loop is pure integer arithmetic: one integer
//! keep-threshold compare and one 64.64 fixed-point multiply per draw.  A
//! float sneaking in would silently re-introduce rounding divergence and
//! platform-dependent results.  This rule forbids `f32`/`f64` type tokens
//! and float-typed literals inside `// lint:region(no_float)` spans.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::workspace::Workspace;

/// Region name this rule scans.
pub const REGION: &str = "no_float";

/// See the module docs.
pub struct NoFloatInKernel;

impl Rule for NoFloatInKernel {
    fn id(&self) -> &'static str {
        "no-float-in-kernel"
    }

    fn description(&self) -> &'static str {
        "the strided randomize/tally kernels must stay float-free integer arithmetic"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if !file.regions.iter().any(|r| r.name == REGION) {
                continue;
            }
            for &ti in &file.sig {
                let Some(tok) = file.tokens.get(ti) else {
                    continue;
                };
                if !file.in_region(REGION, tok.start) {
                    continue;
                }
                let text = tok.text(&file.text);
                let message = match tok.kind {
                    TokenKind::Ident if text == "f32" || text == "f64" => {
                        Some(format!("`{text}` inside a float-free kernel region"))
                    }
                    TokenKind::Number
                        if text.ends_with("f32")
                            || text.ends_with("f64")
                            || (!text.starts_with("0x")
                                && !text.starts_with("0b")
                                && !text.starts_with("0o")
                                && text.contains('.')) =>
                    {
                        Some(format!(
                            "float literal `{text}` inside a float-free kernel region"
                        ))
                    }
                    _ => None,
                };
                if let Some(message) = message {
                    out.push(file.diag_at(self.id(), tok, message).with_help(
                        "keep the kernel integer-only (threshold compare + fixed-point \
                         multiply); floats belong in the per-matrix setup outside the region",
                    ));
                }
            }
        }
    }
}
