//! **no-deprecated-ingest** — PR-4 replaced the row-materialising
//! `records()` / `record_chunks(…)` accessors with the zero-copy
//! `record(i)` / `view()` / strided-batch path, leaving the old accessors
//! `#[deprecated]` for one transition cycle.  Deprecation warnings don't
//! fail CI, so stragglers linger; this rule turns any remaining call site
//! (outside `crates/data`, where the accessors are defined and unit-tested)
//! into a lint error so the transition actually completes.

use super::{is_method_call, suppress_help, Rule};
use crate::diag::Diagnostic;
use crate::workspace::Workspace;

/// The deprecated dataset accessors.
const DEPRECATED: [&str; 2] = ["records", "record_chunks"];

/// See the module docs.
pub struct NoDeprecatedIngest;

impl Rule for NoDeprecatedIngest {
    fn id(&self) -> &'static str {
        "no-deprecated-ingest"
    }

    fn description(&self) -> &'static str {
        "the deprecated records()/record_chunks() accessors must not gain new call sites"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            // The definition site (and its own unit tests) is exempt.
            if file.crate_name == "mdrr-data" {
                continue;
            }
            for i in 0..file.sig.len() {
                if !is_method_call(file, i, &DEPRECATED) {
                    continue;
                }
                let Some(tok) = file.sig_token(i) else {
                    continue;
                };
                out.push(
                    file.diag_at(
                        self.id(),
                        tok,
                        format!(
                            "`.{}(…)` is a deprecated row-materialising accessor",
                            file.sig_text(i)
                        ),
                    )
                    .with_help(format!(
                        "read rows via `record(i)` / `view().read_record(i, &mut buf)` or the \
                         strided batch path, {}",
                        suppress_help(self.id())
                    )),
                );
            }
        }
    }
}
