//! **safety-comments** — every `unsafe` block, `unsafe impl` and
//! `unsafe trait` discharges a proof obligation that lives only in the
//! author's head unless written down.  This rule requires an adjacent
//! `// SAFETY:` comment (on the same line or within the three preceding
//! lines) for each such site, mirroring clippy's
//! `undocumented_unsafe_blocks` without needing clippy at lint time.
//! `unsafe fn` *declarations* are exempt: they create an obligation for
//! the caller, they don't discharge one.

use super::Rule;
use crate::diag::Diagnostic;
use crate::workspace::Workspace;

/// See the module docs.
pub struct SafetyComments;

/// How many preceding lines may carry the `SAFETY:` comment.
const LOOKBACK_LINES: u32 = 3;

impl Rule for SafetyComments {
    fn id(&self) -> &'static str {
        "safety-comments"
    }

    fn description(&self) -> &'static str {
        "every unsafe block/impl/trait needs an adjacent `// SAFETY:` comment"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            for i in 0..file.sig.len() {
                if file.sig_text(i) != "unsafe" {
                    continue;
                }
                // Only sites that *discharge* an obligation: `unsafe {`,
                // `unsafe impl`, `unsafe trait`.  `unsafe fn`/`unsafe extern`
                // merely declare one.
                let next = file.sig_text(i + 1);
                if !(next == "{" || next == "impl" || next == "trait") {
                    continue;
                }
                let Some(tok) = file.sig_token(i) else {
                    continue;
                };
                if has_safety_comment(file, tok.line) {
                    continue;
                }
                let site = if next == "{" {
                    "unsafe block".to_string()
                } else {
                    format!("`unsafe {next}`")
                };
                out.push(
                    file.diag_at(
                        self.id(),
                        tok,
                        format!("{site} without an adjacent `// SAFETY:` comment"),
                    )
                    .with_help(
                        "state the invariant that makes this sound in a `// SAFETY:` comment \
                         on the line above (within 3 lines)",
                    ),
                );
            }
        }
    }
}

/// True if `line` or one of the [`LOOKBACK_LINES`] lines above it carries
/// a `SAFETY:` marker inside a comment.
fn has_safety_comment(file: &crate::source::SourceFile, line: u32) -> bool {
    let lo = line.saturating_sub(LOOKBACK_LINES);
    (lo..=line).any(|l| {
        file.line_text(l)
            .map(|t| (t.contains("//") || t.contains("/*")) && t.contains("SAFETY:"))
            .unwrap_or(false)
    })
}
