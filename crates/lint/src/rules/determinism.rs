//! **Contract:** everything that feeds a release is deterministic.
//! Snapshot bytes are CRC-checked and `cmp`-ed across crash-resume runs
//! in CI; release estimates are asserted bit-identical between the
//! batch and streamed paths; exporter output is diffed between runs.
//! All of that only holds if no function reachable from snapshot
//! encoding, release computation, or exporter output iterates a
//! randomly-seeded `HashMap`/`HashSet` or draws from an unseeded RNG.
//!
//! `seeded-rng-only` polices ambient entropy file-by-file in the four
//! resume-critical crates; this rule follows the *call graph* from the
//! deterministic roots, so a `HashMap` introduced three crates away
//! from the snapshot encoder is still caught — with the chain that
//! connects them.

use super::Rule;
use crate::diag::Diagnostic;
use crate::sem::symbols::{FnDef, FnId};
use crate::workspace::Workspace;

/// See the module docs.
pub struct Determinism;

/// Unordered collection types with seeded (per-process random) hashing.
const UNORDERED: &[&str] = &["HashMap", "HashSet"];

/// Ambient-entropy RNG constructors.
const UNSEEDED_RNG: &[&str] = &["thread_rng", "from_entropy"];

/// Whether `def` is a determinism root: snapshot encoding, release
/// computation, or exporter output.
fn is_root(def: &FnDef) -> bool {
    matches!(
        (
            def.crate_name.as_str(),
            def.self_type.as_deref(),
            def.name.as_str(),
        ),
        ("mdrr-store", Some("Snapshot"), "to_bytes" | "release")
            | (
                "mdrr-store",
                Some("SnapshotWriter"),
                "write" | "write_observed"
            )
            | ("mdrr-obs", None, "to_json" | "to_prometheus")
            | ("mdrr-obs", Some("Registry"), "snapshot")
            | (_, _, "release_from_counts" | "release_from_randomized")
    )
}

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "no unordered-hash iteration or unseeded RNG reachable from snapshot encoding, release computation, or exporters"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let sem = ws.sem();
        let st = &sem.symbols;
        let g = &sem.graph;

        let roots: Vec<FnId> = (0..st.fns.len()).filter(|&f| is_root(st.def(f))).collect();
        let preds = g.reach(roots);

        for &f in preds.keys() {
            let def = st.def(f);
            let Some((b0, b1)) = def.body else { continue };
            let file = &ws.files[def.file];
            let chain = g.chain(&preds, f);
            let chain_text = g.chain_text(st, &chain);
            for i in (b0 + 1)..b1 {
                let text = file.sig_text(i);
                let flagged = if UNORDERED.contains(&text) && file.sig_text(i - 1) != "." {
                    Some(format!("`{text}` has per-process random iteration order"))
                } else if UNSEEDED_RNG.contains(&text) {
                    Some(format!("`{text}` draws ambient entropy"))
                } else {
                    None
                };
                let Some(what) = flagged else { continue };
                let Some(tok) = file.sig_token(i).copied() else {
                    continue;
                };
                if file.in_test_code(tok.start) {
                    continue;
                }
                let mut d = file.diag_at(
                    self.id(),
                    &tok,
                    format!("{what} but is reachable from a deterministic root: {chain_text}"),
                );
                d.help = Some(format!(
                    "use `BTreeMap`/`BTreeSet` or a manifest-seeded RNG, {}",
                    super::suppress_help(self.id())
                ));
                out.push(d);
            }
        }
    }
}
