//! **no-alloc-in-hot-loop** — BENCH_stream.json's 0.0012
//! allocations/report is a measured contract: the batch pipeline's inner
//! loops (strided randomize/tally in `mdrr-core`, the counting loop of
//! `Accumulator::ingest_batch` in `mdrr-stream`) must not allocate per
//! value.  This rule forbids the allocating vocabulary — `Vec::new`,
//! `String::new`, `Box::new`, `.to_vec()`, `.to_string()`, `.to_owned()`,
//! `.clone()`, `.collect()`, `format!`, `vec!` — inside
//! `// lint:region(no_alloc)` spans.

use super::{is_macro_call, is_method_call, is_path_call, Rule};
use crate::diag::Diagnostic;
use crate::workspace::Workspace;

/// Region name this rule scans.
pub const REGION: &str = "no_alloc";

/// Allocating method calls forbidden inside the region.
const ALLOC_METHODS: [&str; 5] = ["to_vec", "to_string", "to_owned", "clone", "collect"];

/// Allocating macros forbidden inside the region.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// `Type::new` constructors forbidden inside the region.
const ALLOC_CTORS: [(&str, &str); 3] = [("Vec", "new"), ("Box", "new"), ("String", "new")];

/// See the module docs.
pub struct NoAllocInHotLoop;

impl Rule for NoAllocInHotLoop {
    fn id(&self) -> &'static str {
        "no-alloc-in-hot-loop"
    }

    fn description(&self) -> &'static str {
        "kernel bodies marked lint:region(no_alloc) must not allocate per value"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if !file.regions.iter().any(|r| r.name == REGION) {
                continue;
            }
            for i in 0..file.sig.len() {
                let Some(tok) = file.sig_token(i) else {
                    continue;
                };
                if !file.in_region(REGION, tok.start) {
                    continue;
                }
                let message = if is_method_call(file, i, &ALLOC_METHODS) {
                    Some(format!(
                        "`.{}()` allocates inside a no-alloc hot loop",
                        file.sig_text(i)
                    ))
                } else if is_macro_call(file, i, &ALLOC_MACROS) {
                    Some(format!(
                        "`{}!` allocates inside a no-alloc hot loop",
                        file.sig_text(i)
                    ))
                } else if ALLOC_CTORS.iter().any(|(h, t)| is_path_call(file, i, h, t)) {
                    Some(format!(
                        "`{}::new()` allocates inside a no-alloc hot loop",
                        file.sig_text(i)
                    ))
                } else {
                    None
                };
                if let Some(message) = message {
                    out.push(file.diag_at(self.id(), tok, message).with_help(
                        "hoist the allocation out of the region (reuse a buffer sized once \
                         per batch) — the 0.0012 allocs/report budget in BENCH_stream.json \
                         is a measured contract",
                    ));
                }
            }
        }
    }
}
