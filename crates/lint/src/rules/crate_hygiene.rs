//! **crate-hygiene** — two structural conventions every library crate in
//! the workspace follows: (1) `src/lib.rs` opens with
//! `#![deny(missing_docs)]` so public API grows documented-by-default,
//! and (2) every public error enum (a `pub enum` whose name ends in
//! `Error`) implements both `Display` and `std::error::Error`, so
//! callers can `?`-propagate and `eprintln!("{e}")` any failure without
//! matching on variants.

use super::Rule;
use crate::diag::Diagnostic;
use crate::source::{FileKind, SourceFile};
use crate::workspace::Workspace;

/// See the module docs.
pub struct CrateHygiene;

impl Rule for CrateHygiene {
    fn id(&self) -> &'static str {
        "crate-hygiene"
    }

    fn description(&self) -> &'static str {
        "lib crates must deny(missing_docs); public error enums must impl Display + Error"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for krate in ws.crates.iter().filter(|c| !c.is_vendor) {
            let lib_rel = if krate.rel_dir == "." {
                "src/lib.rs".to_string()
            } else {
                format!("{}/src/lib.rs", krate.rel_dir)
            };
            if let Some(lib) = ws.file(&lib_rel) {
                if !denies_missing_docs(lib) {
                    out.push(
                        Diagnostic::file_level(
                            self.id(),
                            &lib_rel,
                            format!(
                                "crate `{}` does not open with `#![deny(missing_docs)]`",
                                krate.name
                            ),
                        )
                        .with_help(
                            "add `#![deny(missing_docs)]` under the crate docs so new public \
                             items fail the build until documented",
                        ),
                    );
                }
            }

            // Collect public error enums and the trait impls present
            // anywhere in the crate's library code.
            let files: Vec<&SourceFile> = ws
                .crate_files(&krate.name)
                .filter(|f| f.kind == FileKind::LibSrc)
                .collect();
            let mut error_enums: Vec<(&SourceFile, usize)> = Vec::new();
            let mut impls: Vec<(String, String)> = Vec::new();
            for file in &files {
                for i in 0..file.sig.len() {
                    if file.sig_text(i) == "pub"
                        && file.sig_text(i + 1) == "enum"
                        && file.sig_text(i + 2).ends_with("Error")
                    {
                        error_enums.push((file, i + 2));
                    }
                    // `impl [std::[fmt::]]Trait for Name` — record the last
                    // path segment before `for` plus the target name.
                    if file.sig_text(i) == "for" && i >= 1 {
                        let trait_seg = file.sig_text(i - 1);
                        let target = file.sig_text(i + 1);
                        if !trait_seg.is_empty() && !target.is_empty() {
                            impls.push((trait_seg.to_string(), target.to_string()));
                        }
                    }
                }
            }
            for (file, ti) in error_enums {
                let name = file.sig_text(ti).to_string();
                let has = |trait_seg: &str| impls.iter().any(|(t, n)| t == trait_seg && *n == name);
                let mut missing = Vec::new();
                if !has("Display") {
                    missing.push("`Display`");
                }
                if !has("Error") {
                    missing.push("`std::error::Error`");
                }
                if missing.is_empty() {
                    continue;
                }
                let Some(tok) = file.sig_token(ti) else {
                    continue;
                };
                out.push(
                    file.diag_at(
                        self.id(),
                        tok,
                        format!(
                            "public error enum `{name}` does not implement {}",
                            missing.join(" or ")
                        ),
                    )
                    .with_help(
                        "impl Display (human-readable message per variant) and \
                         `impl std::error::Error` so the type composes with `?` and `Box<dyn Error>`",
                    ),
                );
            }
        }
    }
}

/// True if the file carries a `#![deny(missing_docs)]` inner attribute.
fn denies_missing_docs(file: &SourceFile) -> bool {
    for i in 0..file.sig.len() {
        if file.sig_text(i) == "#"
            && file.sig_text(i + 1) == "!"
            && file.sig_text(i + 2) == "["
            && file.sig_text(i + 3) == "deny"
            && file.sig_text(i + 4) == "("
            && file.sig_text(i + 5) == "missing_docs"
        {
            return true;
        }
    }
    false
}
