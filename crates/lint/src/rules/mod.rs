//! The rule registry and the token-pattern helpers rules share.
//!
//! Every rule checks one *contract* the compiler cannot see — the rule's
//! doc comment names the contract and the code that promises it.  Rules
//! work on the significant-token stream of [`SourceFile`]s (comments and
//! strings can never produce false positives) and emit [`Diagnostic`]s;
//! the engine applies `lint:allow` suppressions afterwards.

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::workspace::Workspace;

pub mod crate_hygiene;
pub mod determinism;
pub mod no_alloc_in_hot_loop;
pub mod no_ambient_clock;
pub mod no_deprecated_ingest;
pub mod no_float_in_kernel;
pub mod no_panic_paths;
pub mod panic_reachability;
pub mod privacy_taint;
pub mod safety_comments;
pub mod seeded_rng_only;
pub mod spec_sync;

/// One static-analysis rule.
pub trait Rule {
    /// The stable id used in diagnostics and `lint:allow(id, …)`.
    fn id(&self) -> &'static str;
    /// One line: the contract this rule enforces.
    fn description(&self) -> &'static str;
    /// Scans the workspace, appending findings to `out`.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// Every rule, in catalog order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_panic_paths::NoPanicPaths),
        Box::new(no_float_in_kernel::NoFloatInKernel),
        Box::new(no_alloc_in_hot_loop::NoAllocInHotLoop),
        Box::new(seeded_rng_only::SeededRngOnly),
        Box::new(no_ambient_clock::NoAmbientClockInLib),
        Box::new(spec_sync::SpecSync),
        Box::new(safety_comments::SafetyComments),
        Box::new(crate_hygiene::CrateHygiene),
        Box::new(no_deprecated_ingest::NoDeprecatedIngest),
        Box::new(privacy_taint::PrivacyTaint),
        Box::new(panic_reachability::PanicReachability),
        Box::new(determinism::Determinism),
    ]
}

/// Whether significant-token `i` is a method call named one of `names`:
/// `.name(` with the receiver before the dot.
pub(crate) fn is_method_call(file: &SourceFile, i: usize, names: &[&str]) -> bool {
    i > 0
        && names.contains(&file.sig_text(i))
        && file.sig_text(i - 1) == "."
        && file.sig_text(i + 1) == "("
}

/// Whether significant-token `i` invokes a macro named one of `names`
/// (`name!`).
pub(crate) fn is_macro_call(file: &SourceFile, i: usize, names: &[&str]) -> bool {
    names.contains(&file.sig_text(i)) && file.sig_text(i + 1) == "!"
}

/// Whether significant-token `i` is a path call `A::b(` for path segment
/// pair (`a`, `b`).
pub(crate) fn is_path_call(file: &SourceFile, i: usize, head: &str, tail: &str) -> bool {
    file.sig_text(i) == head
        && file.sig_text(i + 1) == ":"
        && file.sig_text(i + 2) == ":"
        && file.sig_text(i + 3) == tail
        && file.sig_text(i + 4) == "("
}

/// Whether significant-token `i` is an *index expression* opener: a `[`
/// whose preceding token is an expression tail (identifier, `]`, `)` or
/// `?`), which distinguishes `xs[i]` / `&xs[a..b]` from array literals
/// (`[0u8; 4]`), slice types (`&[u8]`), attributes (`#[…]`) and macro
/// bracket calls (`vec![…]`).
pub(crate) fn is_index_expr(file: &SourceFile, i: usize) -> bool {
    if file.sig_text(i) != "[" || i == 0 {
        return false;
    }
    let prev = file.sig_token(i - 1);
    let prev_text = file.sig_text(i - 1);
    matches!(prev_text, "]" | ")" | "?")
        || (prev.is_some_and(|t| {
            matches!(
                t.kind,
                crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::RawIdent
            )
        }) && !matches!(
            prev_text,
            "as" | "in"
                | "return"
                | "for"
                | "if"
                | "else"
                | "match"
                | "let"
                | "mut"
                | "dyn"
                | "impl"
                | "ref"
                | "move"
                | "break"
                | "while"
                | "loop"
                | "unsafe"
        ))
}

/// The standard help trailer telling the reader how to suppress a rule.
pub(crate) fn suppress_help(rule: &str) -> String {
    format!("or suppress with `// lint:allow({rule}, reason = \"…\")` if the site is provably safe")
}
