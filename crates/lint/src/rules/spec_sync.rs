//! **spec-sync** — `docs/FORMAT.md` is the external byte-level contract
//! of the snapshot format and `crates/store/src/format.rs` is its
//! reference implementation; nothing but convention keeps the two from
//! drifting.  This rule parses the magic bytes, format version, CRC-64/XZ
//! polynomial + check vector, and the header-offset table out of *both*
//! documents and fails on any disagreement.  It also recomputes the check
//! vector from the documented polynomial, so a doc that is merely
//! self-consistent but cryptographically wrong is caught too.

use super::Rule;
use crate::diag::Diagnostic;
use crate::workspace::Workspace;

/// Workspace-relative path of the spec document.
pub const SPEC_DOC: &str = "docs/FORMAT.md";

/// Workspace-relative path of the reference implementation.
pub const SPEC_IMPL: &str = "crates/store/src/format.rs";

/// See the module docs.
pub struct SpecSync;

/// The constants both documents declare, as parsed from one of them.
#[derive(Debug, Default, PartialEq)]
pub struct SpecModel {
    /// The ASCII magic (`MDRRSNAP`).
    pub magic: Option<String>,
    /// The magic spelled as hex bytes (doc only).
    pub magic_hex: Option<Vec<u8>>,
    /// The format version.
    pub version: Option<u64>,
    /// The reflected CRC-64 polynomial.
    pub poly: Option<u64>,
    /// The documented check vector `crc64(b"123456789")`.
    pub check_vector: Option<u64>,
    /// The fixed-offset header table rows as `(offset, size)` — magic,
    /// version, record count, channel count, header length.
    pub offsets: Vec<(u64, u64)>,
}

/// Parses a hex number that may carry `0x`, `_` separators, or trailing
/// punctuation.
fn parse_hex(s: &str) -> Option<u64> {
    let s = s.trim().trim_start_matches("0x").replace('_', "");
    let end = s.find(|c: char| !c.is_ascii_hexdigit()).unwrap_or(s.len());
    if end == 0 {
        return None;
    }
    u64::from_str_radix(s.get(..end)?, 16).ok()
}

/// The first backtick-quoted span in `line` after `after`.
fn backticked_after<'a>(line: &'a str, after: &str) -> Option<&'a str> {
    let at = line.find(after)? + after.len();
    let rest = line.get(at..)?;
    let open = rest.find('`')? + 1;
    let close = rest.get(open..)?.find('`')? + open;
    rest.get(open..close)
}

/// Reference CRC-64 (reflected, init `!0`, xor-out `!0`) over `bytes`
/// under `poly` — used to verify the documented check vector actually
/// follows from the documented polynomial.
pub fn crc64_with(poly: u64, bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc ^= b as u64;
        for _ in 0..8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ poly
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// Parses the spec constants out of `docs/FORMAT.md`.
pub fn parse_doc(md: &str) -> SpecModel {
    let mut model = SpecModel::default();
    for line in md.lines() {
        let trimmed = line.trim();
        if trimmed.contains("**magic**") {
            model.magic = backticked_after(trimmed, "ASCII bytes").map(str::to_string);
            if let Some(hex) = backticked_after(trimmed, "(") {
                let bytes: Vec<u8> = hex
                    .split_whitespace()
                    .filter_map(|b| u8::from_str_radix(b, 16).ok())
                    .collect();
                if !bytes.is_empty() {
                    model.magic_hex = Some(bytes);
                }
            }
        }
        if trimmed.contains("**format version**") {
            model.version = backticked_after(trimmed, "currently").and_then(|v| v.parse().ok());
        }
        if trimmed.contains("polynomial (reflected)") {
            model.poly = backticked_after(trimmed, "polynomial").and_then(parse_hex);
        }
        if trimmed.contains("check vector") {
            // `crc64(b"123456789") = 0x995DC9BBDF1939FA`
            if let Some(span) = backticked_after(trimmed, "check vector") {
                if let Some((_, value)) = span.split_once('=') {
                    model.check_vector = parse_hex(value);
                }
            }
        }
        // Layout-table rows: `| 0 | 8 | **magic**: … |` — keep the rows
        // whose offset *and* size are plain numbers (the fixed prefix of
        // the format, which is what can drift against constants).
        if trimmed.starts_with('|') {
            let cells: Vec<&str> = trimmed.trim_matches('|').split('|').collect();
            if cells.len() >= 3 {
                let offset = cells[0].trim().parse::<u64>();
                let size = cells[1].trim().trim_matches('`').parse::<u64>();
                if let (Ok(offset), Ok(size)) = (offset, size) {
                    model.offsets.push((offset, size));
                }
            }
        }
    }
    model
}

/// Parses the same constants out of `crates/store/src/format.rs`: the
/// `MAGIC` / `FORMAT_VERSION` / `CRC64_POLY` constants, the doctest check
/// vector, and the module-doc offset table.
pub fn parse_impl(rs: &str) -> SpecModel {
    let mut model = SpecModel::default();
    for (i, line) in rs.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.contains("const MAGIC") {
            // … = *b"MDRRSNAP";
            if let Some(at) = trimmed.find("b\"") {
                if let Some(rest) = trimmed.get(at + 2..) {
                    if let Some(close) = rest.find('"') {
                        model.magic = rest.get(..close).map(str::to_string);
                    }
                }
            }
        }
        if trimmed.contains("const FORMAT_VERSION") {
            model.version = trimmed
                .split('=')
                .nth(1)
                .and_then(|v| v.trim().trim_end_matches(';').parse().ok());
        }
        if trimmed.contains("const CRC64_POLY") {
            model.poly = trimmed.split('=').nth(1).and_then(parse_hex);
        }
        if model.check_vector.is_none() && trimmed.contains("crc64(b\"123456789\")") {
            // doctest: assert_eq!(mdrr_store::crc64(b"123456789"), 0x…);
            if let Some(at) = trimmed.find("0x") {
                model.check_vector = trimmed.get(at..).and_then(parse_hex);
            }
        }
        // Module-doc offset table: `//! 12      8     record count (u64)`.
        let _ = i;
        if let Some(doc) = trimmed.strip_prefix("//!") {
            let mut parts = doc.split_whitespace();
            let offset = parts.next().and_then(|p| p.parse::<u64>().ok());
            let size = parts.next().and_then(|p| p.parse::<u64>().ok());
            if let (Some(offset), Some(size)) = (offset, size) {
                model.offsets.push((offset, size));
            }
        }
    }
    model
}

/// Diffs the two models field by field; every drift names the exact field
/// and both values.  Exposed (with [`parse_doc`]/[`parse_impl`]) so the
/// mutation tests can flip one constant in-memory and assert the precise
/// report.
pub fn diff(doc: &SpecModel, imp: &SpecModel, out: &mut Vec<Diagnostic>) {
    let drift = |out: &mut Vec<Diagnostic>, field: &str, doc_v: String, impl_v: String| {
        out.push(
            Diagnostic::file_level(
                "spec-sync",
                SPEC_DOC,
                format!(
                    "{field} drift: `{SPEC_DOC}` declares {doc_v} but `{SPEC_IMPL}` \
                     defines {impl_v}"
                ),
            )
            .with_help(
                "docs/FORMAT.md and format.rs are one contract — change both together \
                 (and bump the format version if the bytes moved)",
            ),
        );
    };
    let missing = |out: &mut Vec<Diagnostic>, what: &str, file: &str| {
        out.push(Diagnostic::file_level(
            "spec-sync",
            file,
            format!("cannot find {what} in `{file}` — the spec-sync anchors were moved or deleted"),
        ));
    };

    match (&doc.magic, &imp.magic) {
        (Some(d), Some(i)) if d != i => {
            drift(out, "magic bytes", format!("`{d}`"), format!("`{i}`"))
        }
        (None, _) => missing(out, "the ASCII magic", SPEC_DOC),
        (_, None) => missing(out, "the `MAGIC` constant", SPEC_IMPL),
        _ => {}
    }
    if let (Some(magic), Some(hex)) = (&doc.magic, &doc.magic_hex) {
        if magic.as_bytes() != hex.as_slice() {
            drift(
                out,
                "magic hex spelling",
                format!("bytes {hex:02x?}"),
                format!("ASCII `{magic}` ({:02x?})", magic.as_bytes()),
            );
        }
    }
    match (doc.version, imp.version) {
        (Some(d), Some(i)) if d != i => {
            drift(out, "format version", format!("{d}"), format!("{i}"))
        }
        (None, _) => missing(out, "the format version", SPEC_DOC),
        (_, None) => missing(out, "the `FORMAT_VERSION` constant", SPEC_IMPL),
        _ => {}
    }
    match (doc.poly, imp.poly) {
        (Some(d), Some(i)) if d != i => drift(
            out,
            "CRC-64 polynomial",
            format!("{d:#018x}"),
            format!("{i:#018x}"),
        ),
        (None, _) => missing(out, "the CRC-64 polynomial", SPEC_DOC),
        (_, None) => missing(out, "the `CRC64_POLY` constant", SPEC_IMPL),
        _ => {}
    }
    match (doc.check_vector, imp.check_vector) {
        (Some(d), Some(i)) if d != i => drift(
            out,
            "CRC-64 check vector",
            format!("{d:#018x}"),
            format!("{i:#018x}"),
        ),
        (None, _) => missing(out, "the CRC-64 check vector", SPEC_DOC),
        (_, None) => missing(out, "the doctest check vector", SPEC_IMPL),
        _ => {}
    }
    // The check vector must actually follow from the documented
    // polynomial — self-consistent drift of both is still drift.
    if let (Some(poly), Some(vector)) = (doc.poly, doc.check_vector) {
        let computed = crc64_with(poly, b"123456789");
        if computed != vector {
            drift(
                out,
                "CRC-64 check vector (recomputed)",
                format!("{vector:#018x}"),
                format!("{computed:#018x} as computed from the documented polynomial"),
            );
        }
    }
    if doc.offsets.is_empty() {
        missing(out, "the layout offset table", SPEC_DOC);
    }
    if imp.offsets.is_empty() {
        missing(out, "the module-doc offset table", SPEC_IMPL);
    }
    if !doc.offsets.is_empty() && !imp.offsets.is_empty() && doc.offsets != imp.offsets {
        drift(
            out,
            "header-offset table",
            format!("rows {:?}", doc.offsets),
            format!("rows {:?}", imp.offsets),
        );
    }
    // Offsets must be self-consistent: each fixed row starts where the
    // previous ended.
    let mut expected = 0u64;
    for &(offset, size) in &doc.offsets {
        if offset != expected {
            out.push(Diagnostic::file_level(
                "spec-sync",
                SPEC_DOC,
                format!(
                    "header-offset table is not self-consistent: a field at offset {offset} \
                     should start at {expected} (previous field sizes sum there)"
                ),
            ));
            break;
        }
        expected = offset.saturating_add(size);
    }
}

/// Runs the full spec-sync check over in-memory document texts — the
/// entry point both the rule and the mutation tests use.
pub fn check_texts(doc_md: &str, impl_rs: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    diff(&parse_doc(doc_md), &parse_impl(impl_rs), &mut out);
    out
}

impl Rule for SpecSync {
    fn id(&self) -> &'static str {
        "spec-sync"
    }

    fn description(&self) -> &'static str {
        "docs/FORMAT.md and crates/store/src/format.rs must declare identical format constants"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let doc = ws.aux.get(SPEC_DOC);
        let imp = ws.file(SPEC_IMPL).map(|f| f.text.as_str());
        match (doc, imp) {
            (Some(doc), Some(imp)) => out.extend(check_texts(doc, imp)),
            (None, _) => out.push(Diagnostic::file_level(
                self.id(),
                SPEC_DOC,
                format!("`{SPEC_DOC}` is missing — the snapshot format has no spec to sync against"),
            )),
            (_, None) => out.push(Diagnostic::file_level(
                self.id(),
                SPEC_IMPL,
                format!("`{SPEC_IMPL}` is missing — the snapshot format has no reference implementation"),
            )),
        }
    }
}
