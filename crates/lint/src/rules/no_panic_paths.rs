//! **no-panic-paths** — `mdrr-store` promises "no panic on any malformed
//! input" (every failure mode maps to a typed `StoreError`), and the
//! checkpoint-restore path of `mdrr-stream` inherits that promise: a
//! corrupt snapshot, manifest or shard set must surface as a typed error,
//! never a panic.  The wire boundary makes the same promise against
//! *hostile* input: every malformed frame a network peer can send must
//! map to a typed `WireError`.  This rule forbids the panic vocabulary —
//! `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`, `todo!`,
//! `unimplemented!` and bare slice indexing (`xs[i]` instead of
//! `xs.get(i)`) — in the store's library code, the stream
//! checkpoint/collector/wire/client modules and all of `mdrr-serve`,
//! outside `#[cfg(test)]`.

use super::{is_index_expr, is_macro_call, is_method_call, suppress_help, Rule};
use crate::diag::Diagnostic;
use crate::source::{FileKind, SourceFile};
use crate::workspace::Workspace;

/// Panicking macros forbidden on the no-panic paths.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Panicking `Option`/`Result` adapters forbidden on the no-panic paths.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// See the module docs.
pub struct NoPanicPaths;

/// Whether this file carries the no-panic contract: all `mdrr-store`
/// library code (parse, merge, snapshot, I/O — including the fault
/// backends, retry loop and salvage), the `mdrr-stream`
/// checkpoint/restore module, the degraded-mode collector (a shard
/// worker's panic must be contained and typed, and the containment code
/// itself must not panic), and the network boundary: the wire codec and
/// client SDK in `mdrr-stream` plus the entire `mdrr-serve` daemon,
/// which all face attacker-controlled bytes.
fn in_scope(file: &SourceFile) -> bool {
    ((file.crate_name == "mdrr-store" || file.crate_name == "mdrr-serve")
        && file.kind == FileKind::LibSrc)
        || file.rel == "crates/stream/src/checkpoint.rs"
        || file.rel == "crates/stream/src/collector.rs"
        || file.rel == "crates/stream/src/wire.rs"
        || file.rel == "crates/stream/src/client.rs"
}

impl Rule for NoPanicPaths {
    fn id(&self) -> &'static str {
        "no-panic-paths"
    }

    fn description(&self) -> &'static str {
        "snapshot parse/merge and checkpoint-restore code must return typed errors, never panic"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in ws.files.iter().filter(|f| in_scope(f)) {
            for i in 0..file.sig.len() {
                let Some(tok) = file.sig_token(i) else {
                    continue;
                };
                if file.in_test_code(tok.start) {
                    continue;
                }
                let found = if is_method_call(file, i, &PANIC_METHODS) {
                    Some(format!(
                        "`.{}(…)` can panic on the no-panic path",
                        file.sig_text(i)
                    ))
                } else if is_macro_call(file, i, &PANIC_MACROS) {
                    Some(format!(
                        "`{}!` is a panic on the no-panic path",
                        file.sig_text(i)
                    ))
                } else if is_index_expr(file, i) {
                    Some(
                        "bare slice indexing can panic on the no-panic path; \
                         use `.get(…)` and map `None` to a typed error"
                            .to_string(),
                    )
                } else {
                    None
                };
                if let Some(message) = found {
                    out.push(file.diag_at(self.id(), tok, message).with_help(format!(
                        "map the failure to a typed `StoreError`/`MdrrError` variant, {}",
                        suppress_help(self.id())
                    )));
                }
            }
        }
    }
}
