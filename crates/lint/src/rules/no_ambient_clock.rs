//! **no-ambient-clock-in-lib** — instrumented code must stay
//! deterministic and testable: every duration the observability layer
//! records flows through the injectable `mdrr_obs::Clock` trait, so a
//! `NullClock` makes instrumentation free and a `ManualClock` makes
//! latency tests exact.  That only holds if library code never reads the
//! ambient clock itself.  This rule forbids `Instant` and `SystemTime`
//! in the library sources of every workspace crate except `mdrr-obs` —
//! the single reasoned boundary, where `MonotonicClock` performs the one
//! ambient read behind the trait (tests excluded everywhere).

use super::{suppress_help, Rule};
use crate::diag::Diagnostic;
use crate::source::FileKind;
use crate::workspace::Workspace;

/// The one crate allowed to touch `std::time`: it owns the `Clock` trait
/// and wraps the ambient monotonic source behind it.
const BOUNDARY_CRATE: &str = "mdrr-obs";

/// Ambient clock types that bypass the injected `Clock`.
const FORBIDDEN: [(&str, &str); 2] = [
    ("Instant", "reads the ambient monotonic clock"),
    ("SystemTime", "reads the ambient wall clock"),
];

/// See the module docs.
pub struct NoAmbientClockInLib;

impl Rule for NoAmbientClockInLib {
    fn id(&self) -> &'static str {
        "no-ambient-clock-in-lib"
    }

    fn description(&self) -> &'static str {
        "library code takes time from an injected mdrr_obs::Clock, never from std::time directly"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in ws
            .files
            .iter()
            .filter(|f| f.kind == FileKind::LibSrc && f.crate_name != BOUNDARY_CRATE)
        {
            for &ti in &file.sig {
                let Some(tok) = file.tokens.get(ti) else {
                    continue;
                };
                if file.in_test_code(tok.start) {
                    continue;
                }
                let text = tok.text(&file.text);
                if let Some((name, why)) = FORBIDDEN.iter().find(|(n, _)| *n == text) {
                    out.push(
                        file.diag_at(
                            self.id(),
                            tok,
                            format!(
                                "`{name}` {why} — library code must take time from an \
                                 injected `mdrr_obs::Clock`"
                            ),
                        )
                        .with_help(format!(
                            "accept an `Arc<dyn Clock>` (or `MonotonicClock` at the top-level \
                             call site) and read `now_nanos()` from it, {}",
                            suppress_help(self.id())
                        )),
                    );
                }
            }
        }
    }
}
