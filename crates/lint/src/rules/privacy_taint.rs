//! **Contract:** raw microdata never leaves the client boundary
//! unrandomized.  The paper's guarantee rests on exactly one sanctioned
//! exit — `Protocol::encode_record` / `encode_batch` / `encode_tally`
//! and the `randomize_*` kernels behind them — and everything
//! downstream (accumulators, snapshots, exports, journal events,
//! `stream_sim` terminal output) must only ever see randomized
//! sufficient statistics.  This rule walks the workspace call graph and
//! errors on any path where a raw-microdata value (`Dataset`,
//! `RecordsView`, `RecordsBuffer`, record slices) flows into a sink
//! without passing through a sanitizer, naming the full call chain.
//!
//! The catalogs (sources, sinks, sanitizers) are documented in
//! `docs/LINTS.md` § Interprocedural analyses and kept deliberately
//! explicit here rather than configurable — the privacy boundary is a
//! property of *this* codebase.

use super::Rule;
use crate::diag::Diagnostic;
use crate::sem::callgraph::CallSite;
use crate::sem::items::match_paren;
use crate::sem::symbols::{FnDef, FnId};
use crate::source::{FileKind, SourceFile};
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet};

/// See the module docs.
pub struct PrivacyTaint;

/// Types whose values are raw microdata.
const RAW_TYPES: &[&str] = &["Dataset", "RecordsView", "RecordsBuffer"];

/// Methods that, called on a raw value, yield raw data (rather than
/// benign metadata like `len()` or `schema()`).
const RAW_ACCESSORS: &[&str] = &[
    "records",
    "record",
    "view",
    "column",
    "columns",
    "read_record",
    "slice",
    "record_chunks",
    "column_chunks",
    "iter",
    "clone",
    "as_ref",
    "as_slice",
    "to_vec",
];

/// Terminal-output macros: sinks inside binary sources (`stream_sim`'s
/// stdout is an export surface).
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "writeln", "write"];

/// Whether `name` is a sanctioned randomizer — the only calls that
/// clear taint.
pub(crate) fn is_sanitizer(name: &str) -> bool {
    matches!(
        name,
        "encode_record" | "encode_records" | "encode_batch" | "encode_tally" | "randomize"
    ) || name.starts_with("randomize_")
}

/// Whether `def` is a sink: a function that persists, exports or prints
/// whatever it is given.
fn is_sink(def: &FnDef) -> bool {
    matches!(
        (
            def.crate_name.as_str(),
            def.self_type.as_deref(),
            def.name.as_str(),
        ),
        (
            "mdrr-store",
            Some("Snapshot"),
            "new" | "set_app_state" | "to_bytes"
        ) | (
            "mdrr-store",
            Some("SnapshotWriter"),
            "write" | "write_observed"
        ) | ("mdrr-store", None, "atomic_write")
            | ("mdrr-obs", None, "to_json" | "to_prometheus")
            | ("mdrr-obs", Some("Journal"), "record")
    )
}

/// Whether a parameter carries raw microdata.  `randomized*`-named
/// bindings are the protocols' own convention for post-randomization
/// datasets and are exempt.
fn is_raw_param(name: &str, ty: &str) -> bool {
    if name.starts_with("randomized") {
        return false;
    }
    let words = words_of(ty);
    RAW_TYPES.iter().any(|t| words.iter().any(|w| w == t))
        || (ty.contains("u32") && name.contains("record"))
}

fn words_of(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// The raw identifiers visible inside `f`'s body: raw params, a raw
/// `self`, and locals `let`-bound from raw values (computed to a small
/// fixpoint so chained rebindings stay tracked).
fn raw_idents(file: &SourceFile, def: &FnDef) -> BTreeSet<String> {
    let mut raws: BTreeSet<String> = def
        .params
        .iter()
        .filter(|p| is_raw_param(&p.name, &p.ty))
        .map(|p| p.name.clone())
        .collect();
    if def
        .self_type
        .as_deref()
        .is_some_and(|t| RAW_TYPES.contains(&t))
        && def.has_self
    {
        raws.insert("self".to_string());
    }
    let Some((b0, b1)) = def.body else {
        return raws;
    };
    for _pass in 0..4 {
        let before = raws.len();
        let mut i = b0 + 1;
        while i + 3 < b1 {
            if file.sig_text(i) == "let" {
                let mut j = i + 1;
                if file.sig_text(j) == "mut" {
                    j += 1;
                }
                let name = file.sig_text(j).to_string();
                // Find the initializer: `=` … up to the `;` at depth 0.
                let mut k = j + 1;
                let mut init_start = None;
                while k < b1 {
                    match file.sig_text(k) {
                        "=" if init_start.is_none() => init_start = Some(k + 1),
                        ";" => break,
                        _ => {}
                    }
                    k += 1;
                }
                if let Some(s) = init_start {
                    if raw_flow(file, s, k, &raws) {
                        raws.insert(name);
                    }
                }
                i = k;
            }
            i += 1;
        }
        if raws.len() == before {
            break;
        }
    }
    raws
}

/// Whether raw data flows through significant tokens `[start, end)`:
/// a raw identifier used bare or through a raw accessor, or a raw-type
/// constructor path (`Dataset::load(…)`), outside any nested sanitizer
/// call.
fn raw_flow(file: &SourceFile, start: usize, end: usize, raws: &BTreeSet<String>) -> bool {
    let mut k = start;
    while k < end {
        let text = file.sig_text(k);
        // A sanitizer call clears whatever it consumes: skip its args.
        if is_sanitizer(text) && file.sig_text(k + 1) == "(" {
            k = match_paren(file, k + 1) + 1;
            continue;
        }
        let is_ident = file
            .sig_token(k)
            .is_some_and(|t| matches!(t.kind, crate::lexer::TokenKind::Ident));
        if is_ident && k > 0 && file.sig_text(k - 1) == "." {
            k += 1;
            continue; // a field/method name, not a binding
        }
        // `Dataset::load(…)` — whatever a raw type's associated fn
        // yields is raw microdata.
        if is_ident && RAW_TYPES.contains(&text) && file.sig_text(k + 1) == ":" {
            return true;
        }
        if is_ident && raws.contains(text) {
            // `ds.len()` is benign metadata; `ds`, `ds.view()`,
            // `ds.clone()` are raw.
            if file.sig_text(k + 1) != "." || RAW_ACCESSORS.contains(&file.sig_text(k + 2)) {
                return true;
            }
        }
        k += 1;
    }
    false
}

/// Per-function leak summary used during the fixpoint.
struct LeakSite<'a> {
    site: &'a CallSite,
    /// The sink ultimately reached (for direct sink calls, the target
    /// itself; for forwarding calls, filled from the callee's summary).
    sink: FnId,
}

impl Rule for PrivacyTaint {
    fn id(&self) -> &'static str {
        "privacy-taint"
    }

    fn description(&self) -> &'static str {
        "raw microdata must pass a sanctioned randomizer before reaching any snapshot/export/journal/output sink"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let sem = ws.sem();
        let st = &sem.symbols;
        let g = &sem.graph;

        let sinks: BTreeSet<FnId> = (0..st.fns.len()).filter(|&f| is_sink(st.def(f))).collect();
        let raws_by_fn: Vec<BTreeSet<String>> = (0..st.fns.len())
            .map(|f| {
                let def = st.def(f);
                raw_idents(&ws.files[def.file], def)
            })
            .collect();

        // Fixpoint: `leaks[f]` holds when raw data inside `f` reaches a
        // sink — directly, or by being passed to a leaking callee that
        // forwards its raw parameters onward.
        let mut leaks: BTreeMap<FnId, FnId> = BTreeMap::new(); // fn -> sink reached
        loop {
            let mut changed = false;
            for (f, raws) in raws_by_fn.iter().enumerate() {
                if leaks.contains_key(&f) || raws.is_empty() {
                    continue;
                }
                let def = st.def(f);
                let file = &ws.files[def.file];
                for site in g.sites_of(f) {
                    if is_sanitizer(&site.name) {
                        continue;
                    }
                    let sink_hit = site.targets.iter().find(|t| sinks.contains(t)).copied();
                    let leaky_hit = site
                        .targets
                        .iter()
                        .filter_map(|t| leaks.get(t).copied())
                        .next();
                    let Some(sink) = sink_hit.or(leaky_hit) else {
                        continue;
                    };
                    if raw_flow(file, site.args.0 + 1, site.args.1, raws) {
                        leaks.insert(f, sink);
                        changed = true;
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Report once per leaking function whose flagged call reaches a
        // *sink target directly* — forwarding functions appear in the
        // chain, not as separate findings.
        for &f in leaks.keys() {
            let def = st.def(f);
            let file = &ws.files[def.file];
            let raws = &raws_by_fn[f];
            let direct: Option<LeakSite> = g.sites_of(f).find_map(|site| {
                let t = site.targets.iter().find(|t| sinks.contains(t))?;
                if !is_sanitizer(&site.name) && raw_flow(file, site.args.0 + 1, site.args.1, raws) {
                    Some(LeakSite { site, sink: *t })
                } else {
                    None
                }
            });
            let Some(leak) = direct else {
                continue; // forwarding link: reported at the sink end
            };
            let chain = leak_chain(st, g, &leaks, &raws_by_fn, ws, f);
            let chain_text = chain
                .iter()
                .map(|&x| st.def(x).qualified())
                .collect::<Vec<_>>()
                .join(" -> ");
            let Some(tok) = file.sig_token(leak.site.tok).copied() else {
                continue;
            };
            let mut d = file.diag_at(
                self.id(),
                &tok,
                format!(
                    "raw microdata reaches sink `{}` without randomization: {} -> {}",
                    st.def(leak.sink).qualified(),
                    chain_text,
                    st.def(leak.sink).qualified(),
                ),
            );
            d.help = Some(format!(
                "route the data through `encode_record`/`encode_batch`/`encode_tally`/`randomize_*` first, {}",
                super::suppress_help(self.id())
            ));
            out.push(d);
        }

        // Terminal output in binaries is a sink in itself.
        self.check_print_sinks(ws, &raws_by_fn, out);
    }
}

impl PrivacyTaint {
    /// Flags raw data flowing into print macros inside binary sources —
    /// `stream_sim`'s stdout is an export surface like any other.
    fn check_print_sinks(
        &self,
        ws: &Workspace,
        raws_by_fn: &[BTreeSet<String>],
        out: &mut Vec<Diagnostic>,
    ) {
        let st = &ws.sem().symbols;
        for (f, raws) in raws_by_fn.iter().enumerate() {
            let def = st.def(f);
            if def.kind != FileKind::BinSrc || raws.is_empty() {
                continue;
            }
            let Some((b0, b1)) = def.body else { continue };
            let file = &ws.files[def.file];
            let mut i = b0 + 1;
            while i < b1 {
                if PRINT_MACROS.contains(&file.sig_text(i))
                    && file.sig_text(i + 1) == "!"
                    && file.sig_text(i + 2) == "("
                {
                    let close = match_paren(file, i + 2);
                    if raw_flow(file, i + 3, close, raws) {
                        if let Some(tok) = file.sig_token(i).copied() {
                            let mut d = file.diag_at(
                                self.id(),
                                &tok,
                                format!(
                                    "raw microdata flows into `{}!` terminal output in `{}`",
                                    file.sig_text(i),
                                    def.qualified(),
                                ),
                            );
                            d.help = Some(format!(
                                "print randomized statistics only, {}",
                                super::suppress_help(self.id())
                            ));
                            out.push(d);
                        }
                    }
                    i = close;
                }
                i += 1;
            }
        }
    }
}

/// Reconstructs the chain of raw-forwarding callers ending at `f`: walks
/// reverse edges restricted to leaking callers that pass raw data into
/// the next link, preferring the lowest caller id for determinism.
fn leak_chain(
    st: &crate::sem::symbols::SymbolTable,
    g: &crate::sem::callgraph::CallGraph,
    leaks: &BTreeMap<FnId, FnId>,
    raws_by_fn: &[BTreeSet<String>],
    ws: &Workspace,
    f: FnId,
) -> Vec<FnId> {
    let mut chain = vec![f];
    let mut seen: BTreeSet<FnId> = chain.iter().copied().collect();
    let mut cur = f;
    while let Some(callers) = g.redges.get(&cur) {
        let next = callers.iter().copied().find(|&c| {
            if seen.contains(&c) || !leaks.contains_key(&c) {
                return false;
            }
            let def = st.def(c);
            let file = &ws.files[def.file];
            g.sites_of(c).any(|s| {
                s.targets.contains(&cur) && raw_flow(file, s.args.0 + 1, s.args.1, &raws_by_fn[c])
            })
        });
        match next {
            Some(c) => {
                chain.push(c);
                seen.insert(c);
                cur = c;
            }
            None => break,
        }
    }
    chain.reverse();
    chain
}
