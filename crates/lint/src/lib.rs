//! `mdrr-lint` — the workspace's own static-analysis pass.
//!
//! `cargo test` proves the code computes the right answers *today*;
//! nothing in the default toolchain stops tomorrow's patch from quietly
//! re-introducing a panic into the no-panic snapshot decoder, a float
//! into the integer randomization kernels, an ambient-entropy draw into
//! the deterministic-resume path, or a drift between `docs/FORMAT.md`
//! and the constants in `crates/store/src/format.rs`.  Those are
//! *contracts of this codebase*, not of the language, so the compiler
//! and clippy cannot see them — this crate checks them mechanically and
//! fails CI when they break.
//!
//! The design is deliberately dependency-free (the workspace builds
//! offline against vendored shims, so `syn` is not an option): a small
//! total lexer ([`lexer`]) that understands comments, strings, raw
//! strings, char literals and lifetimes well enough that rules only ever
//! see *significant* tokens; a directive layer ([`source`]) for
//! `// lint:region(…)` scoping and `// lint:allow(rule, reason = "…")`
//! suppressions (the reason is mandatory, and stale suppressions are
//! themselves findings); workspace discovery ([`workspace`]); a semantic
//! layer ([`sem`]) — item parser, symbol table, call graph — feeding the
//! interprocedural privacy-taint / panic-reachability / determinism
//! analyses; the rule set ([`rules`]); and the engine ([`engine`]) that
//! ties them together under rustc-style diagnostics ([`diag`]).
//!
//! Run it as CI does:
//!
//! ```text
//! cargo run -p mdrr-lint -- --deny-warnings
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod sem;
pub mod source;
pub mod workspace;

pub use diag::{Diagnostic, Severity};
pub use engine::{run, run_filtered, run_timed, Outcome};
pub use sem::SemModel;
pub use workspace::Workspace;
