//! `mdrr-serve`: the collector network daemon.
//!
//! This crate turns the in-process streaming collector
//! ([`mdrr_stream::ShardedCollector`]) into a network service: a
//! thread-per-connection TCP daemon over `std::net` (no async runtime —
//! the workspace vendors every dependency) speaking the length-framed,
//! CRC-sealed binary protocol of `docs/WIRE.md`.  Clients encode
//! randomized reports locally with the multi-dimensional randomized
//! response mechanisms of `mdrr-protocols`, ship them as columnar batch
//! frames, and get each batch acknowledged only after it is counted —
//! so the daemon can always drain to a durable checkpoint
//! (`docs/FORMAT.md`) that contains every acknowledged report.
//!
//! The pieces:
//!
//! * [`CollectorServer`] — bind/drain lifecycle, acceptor thread,
//!   [`DrainedCollector`] hand-off ([`server`]);
//! * the per-connection loop with typed error frames, the slowloris
//!   budget and the ack-after-ingest invariant (the private `session`
//!   module);
//! * [`ServeConfig`] — shards, backpressure window, payload cap, poll
//!   interval, frame budget ([`config`]);
//! * [`ServeObs`] — opt-in counters, histograms and journal events for
//!   the wire boundary ([`obs`]);
//! * [`ServeError`] — lifecycle failures ([`error`]).
//!
//! The client half — [`mdrr_stream::WireClient`] — lives in
//! `mdrr-stream` so encoders depend only on the stream layer.
//!
//! ```no_run
//! use mdrr_data::{Attribute, Schema};
//! use mdrr_obs::MonotonicClock;
//! use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
//! use mdrr_serve::{CollectorServer, ServeConfig};
//! use std::sync::Arc;
//!
//! let schema = Schema::new(vec![Attribute::indexed("color", 3)?])?;
//! let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
//! let server = CollectorServer::bind(
//!     "127.0.0.1:0",
//!     &schema,
//!     &spec,
//!     ServeConfig::default(),
//!     Arc::new(MonotonicClock::new()),
//!     None,
//! )?;
//! let addr = server.local_addr();
//! // ... clients connect to `addr` and stream batches ...
//! let (manifest, drained) = server.drain_to_checkpoint("ckpt".as_ref(), None)?;
//! assert_eq!(manifest.total_reports, drained.acked_reports);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod error;
pub mod obs;
pub mod server;
mod session;

pub use config::ServeConfig;
pub use error::ServeError;
pub use obs::{ServeObs, DEFAULT_JOURNAL_CAPACITY};
pub use server::{CollectorServer, DrainedCollector};
