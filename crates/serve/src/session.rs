//! Per-connection protocol loop.
//!
//! One session thread owns one [`TcpStream`] and runs the server half of
//! the wire protocol from `docs/WIRE.md`: expect `hello`, validate the
//! client's schema/spec against the server's, answer `hello_ack`, then
//! loop over `batch`/`stats_query`/`snapshot_query`/`goodbye` frames
//! until the peer leaves, misbehaves, stalls past the frame budget, or
//! the server drains.
//!
//! Hostile-input posture (the adversarial suite exercises all of it):
//!
//! * every malformed frame is answered with a typed `error` frame and a
//!   metered reject — never a panic;
//! * payload buffers are sized only after the declared length passes the
//!   cap check inside `wire::decode_header` (cap-before-alloc), and the
//!   session's read buffer and decode batch are reused across frames;
//! * a frame whose first byte arrived must finish within
//!   `frame_budget_nanos` or the connection is closed with a `timeout`
//!   error frame — the slowloris defence — while an *idle* connection
//!   (no partial frame) may wait indefinitely;
//! * a batch is acknowledged only after `ingest_batch` returns, so an
//!   acked report is by construction in the collector that a drain
//!   hands back.

use crate::server::Shared;
use mdrr_store::Snapshot;
use mdrr_stream::wire::{self, error_code, Hello, HelloAck, StatsReply};
use mdrr_stream::{FrameType, ReportBatch, WireError};
use serde::Serialize;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Serves one connection to completion, then settles the open-connection
/// accounting.  Never panics: every failure path closes the socket after
/// a best-effort typed error frame.
pub(crate) fn run(shared: Arc<Shared>, stream: TcpStream, conn: u64) {
    let reports = match Session::new(&shared, stream) {
        Ok(mut session) => session.serve(),
        Err(e) => {
            if let Some(obs) = &shared.obs {
                obs.reject(&e);
            }
            0
        }
    };
    let open = shared
        .open_connections
        .fetch_sub(1, Ordering::SeqCst)
        .saturating_sub(1);
    if let Some(obs) = &shared.obs {
        obs.connection_closed(conn, reports, open);
    }
}

struct Session<'a> {
    shared: &'a Shared,
    stream: TcpStream,
    /// Reusable frame buffer; grows to the largest frame seen, never
    /// beyond the payload cap plus framing.
    buf: Vec<u8>,
    /// Reusable decode target shaped for the server's protocol.
    batch: ReportBatch,
    /// Reports acknowledged over this connection.
    acked: u64,
}

impl<'a> Session<'a> {
    fn new(shared: &'a Shared, stream: TcpStream) -> Result<Session<'a>, WireError> {
        // The listener is nonblocking; make the accepted socket blocking
        // with a read timeout as the poll granularity, so shutdown flags
        // and frame deadlines are re-checked without spinning.
        stream
            .set_nonblocking(false)
            .map_err(|e| WireError::io("set blocking", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| WireError::io("set nodelay", e))?;
        stream
            .set_read_timeout(Some(Duration::from_nanos(
                shared.config.poll_interval_nanos,
            )))
            .map_err(|e| WireError::io("set read timeout", e))?;
        // A peer that stops reading our acks cannot stall the session
        // (or a drain) forever: writes give up after the frame budget.
        stream
            .set_write_timeout(Some(Duration::from_nanos(shared.config.frame_budget_nanos)))
            .map_err(|e| WireError::io("set write timeout", e))?;
        let batch = {
            let guard = shared.lock_collector();
            ReportBatch::for_protocol(guard.protocol().as_ref())
        };
        Ok(Session {
            shared,
            stream,
            buf: Vec::new(),
            batch,
            acked: 0,
        })
    }

    fn serve(&mut self) -> u64 {
        if !self.handshake() {
            return self.acked;
        }
        loop {
            // A continuously-streaming client never lets the socket go
            // idle, so the drain flag must also be checked at every frame
            // boundary — not only in the idle-wait path — for a drain to
            // finish in bounded time.
            if self.shared.draining() {
                let e = WireError::closed("server draining");
                self.reject(&e);
                self.send_error(
                    error_code::DRAINING,
                    "server draining to checkpoint; reconnect later",
                );
                return self.acked;
            }
            let frame_type = match self.read_one() {
                Ok(Some(frame_type)) => frame_type,
                Ok(None) => return self.acked,
                Err(e) => {
                    self.read_failed(e);
                    return self.acked;
                }
            };
            let keep_going = match frame_type {
                FrameType::Batch => self.handle_batch(),
                FrameType::StatsQuery => self.handle_stats(),
                FrameType::SnapshotQuery => self.handle_snapshot(),
                FrameType::Goodbye => {
                    let total = self.shared.acked_reports.load(Ordering::SeqCst);
                    self.send_payload(FrameType::GoodbyeAck, &wire::encode_goodbye_ack(total));
                    false
                }
                other => {
                    let e = WireError::unexpected("serving a session", other);
                    self.reject(&e);
                    self.send_error(error_code::UNEXPECTED, &e.to_string());
                    false
                }
            };
            if !keep_going {
                return self.acked;
            }
        }
    }

    /// Reads one frame, enforcing drain, the mid-frame stall budget, and
    /// the configured payload cap; meters valid frames.
    fn read_one(&mut self) -> Result<Option<FrameType>, WireError> {
        let shared = self.shared;
        let clock = &shared.clock;
        let budget = shared.config.frame_budget_nanos;
        let mut started: Option<u64> = None;
        let mut wait = move |bytes_so_far: usize| -> Result<(), WireError> {
            if shared.draining() {
                return Err(WireError::closed("server draining"));
            }
            if bytes_so_far == 0 {
                // Frame boundary: idle connections may wait forever.
                started = None;
                return Ok(());
            }
            let now = clock.now_nanos();
            let begun = *started.get_or_insert(now);
            if now.saturating_sub(begun) > budget {
                return Err(WireError::timeout(format!(
                    "frame stalled after {bytes_so_far} bytes"
                )));
            }
            Ok(())
        };
        let got = wire::read_frame(&mut self.stream, &mut self.buf, &mut wait)?;
        if let Some(frame_type) = got {
            // `decode_header` already enforced the global cap before any
            // allocation; this enforces the (possibly tighter) local one.
            let payload_len = self
                .buf
                .len()
                .saturating_sub(wire::WIRE_HEADER_LEN + wire::WIRE_TRAILER_LEN);
            if payload_len as u64 > shared.config.max_payload as u64 {
                return Err(WireError::Oversized {
                    declared: payload_len as u64,
                    max: shared.config.max_payload as u64,
                });
            }
            if let Some(obs) = &shared.obs {
                obs.frame_read(frame_type, self.buf.len() as u64);
            }
        }
        Ok(got)
    }

    /// Settles a failed read: meter the reject and tell the peer why —
    /// unless the peer is already gone.
    fn read_failed(&mut self, e: WireError) {
        self.reject(&e);
        match &e {
            WireError::Timeout { .. } => self.send_error(error_code::TIMEOUT, &e.to_string()),
            WireError::Closed { .. } if self.shared.draining() => self.send_error(
                error_code::DRAINING,
                "server draining to checkpoint; reconnect later",
            ),
            WireError::Closed { .. } | WireError::Io { .. } => {}
            _ => self.send_error(error_code::MALFORMED, &e.to_string()),
        }
    }

    fn handshake(&mut self) -> bool {
        match self.read_one() {
            Ok(Some(FrameType::Hello)) => {}
            Ok(Some(other)) => {
                let e = WireError::unexpected("handshake", other);
                self.reject(&e);
                self.send_error(error_code::UNEXPECTED, &e.to_string());
                return false;
            }
            Ok(None) => return false,
            Err(e) => {
                self.read_failed(e);
                return false;
            }
        }
        let hello: Hello = match wire::decode_json("hello", wire::frame_payload(&self.buf)) {
            Ok(hello) => hello,
            Err(e) => {
                self.reject(&e);
                self.send_error(error_code::MALFORMED, &e.to_string());
                return false;
            }
        };
        if hello.schema != self.shared.schema || hello.spec != self.shared.spec {
            let e = WireError::spec_mismatch(
                "client schema/spec differs from this collector's; refusing to mix mechanisms",
            );
            self.reject(&e);
            self.send_error(error_code::SPEC_MISMATCH, &e.to_string());
            return false;
        }
        let ack = HelloAck {
            n_shards: self.shared.config.n_shards,
            window: self.shared.config.window,
            max_payload: self.shared.config.max_payload,
        };
        self.send_json(FrameType::HelloAck, "hello ack", &ack)
    }

    fn handle_batch(&mut self) -> bool {
        let shared = self.shared;
        let clock = &shared.clock;
        let decode_begin = clock.now_nanos();
        let header =
            match wire::decode_batch_payload(wire::frame_payload(&self.buf), &mut self.batch) {
                Ok(header) => header,
                Err(e) => {
                    let code = match &e {
                        WireError::SpecMismatch { .. } => error_code::SPEC_MISMATCH,
                        _ => error_code::MALFORMED,
                    };
                    self.reject(&e);
                    self.send_error(code, &e.to_string());
                    return false;
                }
            };
        let ingest_begin = clock.now_nanos();
        let shard = (header.shard as usize) % shared.config.n_shards;
        let ingested = {
            let mut guard = shared.lock_collector();
            guard.ingest_batch(shard, &self.batch)
        };
        let ingest_end = clock.now_nanos();
        match ingested {
            Ok(n) => {
                // The running total in the ack is the server-wide count
                // *including* this batch.
                let total = shared
                    .acked_reports
                    .fetch_add(n, Ordering::SeqCst)
                    .saturating_add(n);
                self.acked = self.acked.saturating_add(n);
                if let Some(obs) = &shared.obs {
                    obs.batch_ingested(
                        n,
                        ingest_begin.saturating_sub(decode_begin),
                        ingest_end.saturating_sub(ingest_begin),
                    );
                }
                self.send_payload(
                    FrameType::BatchAck,
                    &wire::encode_batch_ack(header.seq, total),
                )
            }
            Err(e) => {
                let e = WireError::Protocol(e);
                self.reject(&e);
                self.send_error(error_code::MALFORMED, &e.to_string());
                false
            }
        }
    }

    fn handle_stats(&mut self) -> bool {
        let reply = {
            let guard = self.shared.lock_collector();
            StatsReply {
                total_reports: guard.total_reports(),
                n_shards: guard.n_shards(),
                shard_reports: guard.shards().iter().map(|a| a.n_reports()).collect(),
                quarantined: guard.quarantined_shards(),
            }
        };
        self.send_json(FrameType::Stats, "stats reply", &reply)
    }

    fn handle_snapshot(&mut self) -> bool {
        match self.encode_snapshot() {
            Ok(bytes) => {
                if bytes.len() as u64 > self.shared.config.max_payload as u64 {
                    let e = WireError::Oversized {
                        declared: bytes.len() as u64,
                        max: self.shared.config.max_payload as u64,
                    };
                    self.reject(&e);
                    self.send_error(
                        error_code::INTERNAL,
                        "merged snapshot exceeds the frame payload cap",
                    );
                    return false;
                }
                self.send_payload(FrameType::Snapshot, &bytes)
            }
            Err(e) => {
                self.reject(&e);
                self.send_error(error_code::INTERNAL, &e.to_string());
                false
            }
        }
    }

    /// Merges the shards and encodes the result in the durable snapshot
    /// file format (`docs/FORMAT.md`) — the same bytes a checkpoint
    /// shard file holds, so clients reuse `Snapshot::from_bytes`.
    fn encode_snapshot(&self) -> Result<Vec<u8>, WireError> {
        let shared = self.shared;
        let merged = {
            let guard = shared.lock_collector();
            guard.merged()?
        };
        let n_reports = merged.n_reports();
        let counts = merged.counts().to_vec();
        let snapshot = Snapshot::new(
            shared.schema.clone(),
            shared.spec.clone(),
            counts,
            n_reports,
        )
        .map_err(|e| WireError::malformed(format!("build merged snapshot: {e}")))?;
        snapshot
            .to_bytes()
            .map_err(|e| WireError::malformed(format!("encode merged snapshot: {e}")))
    }

    fn send_payload(&mut self, frame_type: FrameType, payload: &[u8]) -> bool {
        match wire::write_frame(&mut self.stream, frame_type, payload) {
            Ok(bytes) => {
                if let Some(obs) = &self.shared.obs {
                    obs.frame_written(bytes as u64);
                }
                true
            }
            Err(e) => {
                self.reject(&e);
                false
            }
        }
    }

    fn send_json<T: Serialize>(&mut self, frame_type: FrameType, what: &str, value: &T) -> bool {
        match wire::encode_json(what, value) {
            Ok(payload) => self.send_payload(frame_type, &payload),
            Err(e) => {
                self.reject(&e);
                self.send_error(error_code::INTERNAL, &e.to_string());
                false
            }
        }
    }

    /// Best-effort: the connection is about to close either way, so a
    /// failed error-frame write is dropped on the floor.
    fn send_error(&mut self, code: u16, message: &str) {
        let payload = wire::encode_error_payload(code, message);
        if let Ok(bytes) = wire::write_frame(&mut self.stream, FrameType::Error, &payload) {
            if let Some(obs) = &self.shared.obs {
                obs.frame_written(bytes as u64);
            }
        }
    }

    fn reject(&self, e: &WireError) {
        if let Some(obs) = &self.shared.obs {
            obs.reject(e);
        }
    }
}
