//! The collector daemon: a thread-per-connection acceptor over
//! `std::net` feeding one shared [`ShardedCollector`].
//!
//! Lifecycle: [`CollectorServer::bind`] builds the collector from a
//! [`ProtocolSpec`] + [`Schema`], binds a listener and spawns the
//! acceptor thread; every accepted connection gets its own session
//! thread (the private `session` module); [`CollectorServer::drain`]
//! flips the
//! shutdown flag, waits for the acceptor to join every session at a
//! frame boundary, and hands the collector back to the caller —
//! typically straight into
//! [`DrainedCollector::checkpoint`], which is
//! [`ShardedCollector::checkpoint`] under the hood.  Because a batch is
//! acknowledged only *after* `ingest_batch` returns, every acknowledged
//! report is in the collector the drain returns, and therefore in the
//! checkpoint — the zero-accepted-loss invariant the fault suite audits.
//!
//! The daemon never reads ambient time: accept polling, read deadlines
//! and the slowloris budget all run on the injected [`Clock`].

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::obs::ServeObs;
use crate::session;
use mdrr_data::Schema;
use mdrr_obs::Clock;
use mdrr_protocols::ProtocolSpec;
use mdrr_store::Storage;
use mdrr_stream::{CheckpointManifest, ShardedCollector};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// State shared by the acceptor, every session thread and the handle.
pub(crate) struct Shared {
    pub(crate) collector: Mutex<ShardedCollector>,
    pub(crate) schema: Schema,
    pub(crate) spec: ProtocolSpec,
    pub(crate) config: ServeConfig,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) obs: Option<Arc<ServeObs>>,
    pub(crate) shutdown: AtomicBool,
    /// Reports ingested *and therefore owed (or already sent) an ack*.
    pub(crate) acked_reports: AtomicU64,
    pub(crate) connections_total: AtomicU64,
    pub(crate) open_connections: AtomicU64,
}

impl Shared {
    /// Locks the collector, recovering from a poisoned mutex: the counts
    /// are plain sums, structurally valid even if a session thread
    /// panicked mid-ingest (and `ingest_batch` validates before it
    /// counts, so a poisoned guard holds either the old or the new
    /// totals — never a half-applied batch).
    pub(crate) fn lock_collector(&self) -> MutexGuard<'_, ShardedCollector> {
        self.collector.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub(crate) fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running collector daemon.  Dropping the handle without calling
/// [`CollectorServer::drain`] leaves the acceptor thread running
/// detached until the process exits; drain for a clean stop.
pub struct CollectorServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for CollectorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectorServer")
            .field("addr", &self.addr)
            .field("draining", &self.shared.draining())
            .finish()
    }
}

/// Everything a drained daemon hands back: the collector with every
/// acknowledged report counted, plus the spec/schema needed to persist
/// or release it.
#[derive(Debug, Clone)]
pub struct DrainedCollector {
    /// The collector, final.
    pub collector: ShardedCollector,
    /// The spec the daemon served (and validated every client against).
    pub spec: ProtocolSpec,
    /// The schema the daemon served.
    pub schema: Schema,
    /// Reports acknowledged over the daemon's lifetime.
    pub acked_reports: u64,
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
}

impl DrainedCollector {
    /// Persists the drained collector as a durable checkpoint directory
    /// — [`ShardedCollector::checkpoint`] with the daemon's own spec.
    pub fn checkpoint(
        &self,
        dir: &Path,
        app_state: Option<&str>,
    ) -> Result<CheckpointManifest, ServeError> {
        Ok(self.collector.checkpoint(&self.spec, dir, app_state)?)
    }

    /// [`DrainedCollector::checkpoint`] through an injected [`Storage`]
    /// handle (fault-injection seam).
    pub fn checkpoint_with(
        &self,
        dir: &Path,
        app_state: Option<&str>,
        storage: &Storage,
    ) -> Result<CheckpointManifest, ServeError> {
        Ok(self
            .collector
            .checkpoint_with(&self.spec, dir, app_state, storage)?)
    }
}

impl CollectorServer {
    /// Builds the collector for `spec` over `schema`, binds `addr`
    /// (use port 0 for an ephemeral port) and starts accepting.
    pub fn bind(
        addr: impl ToSocketAddrs,
        schema: &Schema,
        spec: &ProtocolSpec,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
        obs: Option<Arc<ServeObs>>,
    ) -> Result<CollectorServer, ServeError> {
        let config = config.validated()?;
        let protocol = spec.build_arc(schema)?;
        let collector = ShardedCollector::new(protocol, config.n_shards)?;
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::io("bind listener", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::io("set listener nonblocking", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ServeError::io("read bound address", e))?;
        let shared = Arc::new(Shared {
            collector: Mutex::new(collector),
            schema: schema.clone(),
            spec: spec.clone(),
            config,
            clock,
            obs,
            shutdown: AtomicBool::new(false),
            acked_reports: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
        });
        let shared_for_acceptor = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("mdrr-serve-acceptor".to_string())
            .spawn(move || accept_loop(listener, shared_for_acceptor))
            .map_err(|e| ServeError::io("spawn acceptor", e))?;
        Ok(CollectorServer {
            addr: local_addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Reports acknowledged so far.
    pub fn acked_reports(&self) -> u64 {
        self.shared.acked_reports.load(Ordering::SeqCst)
    }

    /// Connections currently live.
    pub fn open_connections(&self) -> u64 {
        self.shared.open_connections.load(Ordering::SeqCst)
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// Gracefully stops the daemon: flips the drain flag (in-flight
    /// sessions finish their current frame, answer further reads with a
    /// `draining` error frame and close), joins the acceptor and every
    /// session, and returns the final collector.  Every report that was
    /// acknowledged to any client is counted in it.
    pub fn drain(mut self) -> Result<DrainedCollector, ServeError> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            acceptor
                .join()
                .map_err(|_| ServeError::config("acceptor thread panicked"))?;
        }
        let acked_reports = self.shared.acked_reports.load(Ordering::SeqCst);
        let connections = self.shared.connections_total.load(Ordering::SeqCst);
        if let Some(obs) = &self.shared.obs {
            obs.drained(connections, acked_reports);
        }
        let spec = self.shared.spec.clone();
        let schema = self.shared.schema.clone();
        // Every session has joined, so this handle is normally the last
        // one; fall back to a clone if an abandoned clone of the handle
        // still exists somewhere.
        let collector = match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared
                .collector
                .into_inner()
                .unwrap_or_else(|p| p.into_inner()),
            Err(shared) => shared.lock_collector().clone(),
        };
        Ok(DrainedCollector {
            collector,
            spec,
            schema,
            acked_reports,
            connections,
        })
    }

    /// [`CollectorServer::drain`] followed by
    /// [`DrainedCollector::checkpoint`] into `dir` — the SIGTERM path:
    /// stop accepting, finish in-flight frames, persist everything
    /// acknowledged.
    pub fn drain_to_checkpoint(
        self,
        dir: &Path,
        app_state: Option<&str>,
    ) -> Result<(CheckpointManifest, DrainedCollector), ServeError> {
        let drained = self.drain()?;
        let manifest = drained.checkpoint(dir, app_state)?;
        Ok((manifest, drained))
    }
}

/// The acceptor: polls the nonblocking listener, spawns one session
/// thread per connection, and on drain joins every session before
/// returning (so `drain` sees a fully quiesced collector).
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn = shared.connections_total.fetch_add(1, Ordering::SeqCst);
                let open = shared
                    .open_connections
                    .fetch_add(1, Ordering::SeqCst)
                    .saturating_add(1);
                if let Some(obs) = &shared.obs {
                    obs.connection_opened(conn, open);
                }
                let shared_for_session = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("mdrr-serve-conn-{conn}"))
                    .spawn(move || session::run(shared_for_session, stream, conn));
                match spawned {
                    Ok(handle) => sessions.push(handle),
                    Err(_) => {
                        // Could not spawn: drop the connection and undo
                        // the open count.
                        let open = shared
                            .open_connections
                            .fetch_sub(1, Ordering::SeqCst)
                            .saturating_sub(1);
                        if let Some(obs) = &shared.obs {
                            obs.connection_closed(conn, 0, open);
                        }
                    }
                }
                // Reap sessions that already finished, so a long-lived
                // daemon's handle list stays bounded by live connections.
                sessions.retain(|handle| !handle.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                let deadline = shared
                    .clock
                    .now_nanos()
                    .saturating_add(shared.config.poll_interval_nanos);
                shared.clock.sleep_until(deadline);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake):
                // pause one poll interval and keep serving.
                let deadline = shared
                    .clock
                    .now_nanos()
                    .saturating_add(shared.config.poll_interval_nanos);
                shared.clock.sleep_until(deadline);
            }
        }
    }
    for handle in sessions {
        // A panicked session already released its Arc; nothing to do
        // beyond observing the join.
        let _ = handle.join();
    }
}
