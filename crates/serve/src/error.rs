//! Typed errors of the collector daemon.

use mdrr_protocols::MdrrError;
use mdrr_stream::WireError;
use std::fmt;
use std::io;

/// Errors produced by the daemon's lifecycle operations (bind, drain,
/// checkpoint).  Per-connection wire failures never surface here — they
/// are metered, journalled and answered with typed error frames inside
/// the session; only failures of the *server itself* reach the caller.
#[derive(Debug)]
pub enum ServeError {
    /// A wire-level failure while serving (handshake encode, snapshot
    /// encode).
    Wire(WireError),
    /// The protocol layer refused a configuration or an ingest
    /// (bad spec, zero shards, checkpoint validation).
    Protocol(MdrrError),
    /// An operating-system failure on the listening socket.
    Io {
        /// What the server was doing when the failure happened.
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The server was configured inconsistently (zero window, zero poll
    /// interval).
    Config {
        /// Description of the problem.
        message: String,
    },
}

impl ServeError {
    /// Convenience constructor for [`ServeError::Io`].
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        ServeError::Io {
            context: context.into(),
            source,
        }
    }

    /// Convenience constructor for [`ServeError::Config`].
    pub fn config(message: impl Into<String>) -> Self {
        ServeError::Config {
            message: message.into(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Wire(e) => write!(f, "collector wire failure: {e}"),
            ServeError::Protocol(e) => write!(f, "collector protocol failure: {e}"),
            ServeError::Io { context, source } => {
                write!(f, "collector i/o failure ({context}): {source}")
            }
            ServeError::Config { message } => {
                write!(f, "invalid collector configuration: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Wire(e) => Some(e),
            ServeError::Protocol(e) => Some(e),
            ServeError::Io { source, .. } => Some(source),
            ServeError::Config { .. } => None,
        }
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<MdrrError> for ServeError {
    fn from(e: MdrrError) -> Self {
        ServeError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_failure_mode() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::Wire(WireError::timeout("ack wait")), "ack wait"),
            (
                ServeError::Protocol(MdrrError::config("zero shards")),
                "zero shards",
            ),
            (
                ServeError::io("bind listener", io::Error::other("in use")),
                "bind listener",
            ),
            (ServeError::config("window must be positive"), "window"),
        ];
        for (error, needle) in cases {
            assert!(
                error.to_string().contains(needle),
                "{error} should mention {needle}"
            );
        }
    }

    #[test]
    fn sources_are_exposed_where_present() {
        use std::error::Error;
        assert!(ServeError::Wire(WireError::timeout("x")).source().is_some());
        assert!(ServeError::io("bind", io::Error::other("x"))
            .source()
            .is_some());
        assert!(ServeError::config("x").source().is_none());
    }
}
