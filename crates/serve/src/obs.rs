//! Opt-in daemon observability: counters, histograms and journal events
//! for the wire boundary.
//!
//! Attaching a [`ServeObs`] to a [`crate::CollectorServer`] makes the
//! daemon meter what it does without changing what it does — the same
//! contract as the stream layer's `StreamObs`.  Metric catalog (all in
//! one [`Registry`], exported via `mdrr_obs::to_json` /
//! `mdrr_obs::to_prometheus`):
//!
//! | metric | kind | labels | meaning |
//! |---|---|---|---|
//! | `serve_connections_total` | counter | — | connections accepted |
//! | `serve_connections_open` | gauge | — | connections currently live |
//! | `serve_frames_total` | counter | `type` | valid frames read, by frame type |
//! | `serve_bytes_read_total` | counter | — | frame bytes read (valid frames) |
//! | `serve_bytes_written_total` | counter | — | frame bytes written |
//! | `serve_reports_total` | counter | — | reports ingested and acknowledged |
//! | `serve_rejects_total` | counter | `reason` | frames/connections rejected, by [`WireError::label`] |
//! | `serve_decode_nanos` | histogram | — | batch payload decode time |
//! | `serve_ingest_nanos` | histogram | — | collector ingest time per batch |
//!
//! Journal events: `connection_opened`, `connection_closed`,
//! `server_drained` (plus the stream layer's own events if the collector
//! is separately instrumented).

use mdrr_obs::{Clock, Counter, EventKind, Gauge, Histogram, Journal, Registry};
use mdrr_stream::{FrameType, WireError};
use std::sync::Arc;

/// Default bound on the daemon's event journal.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// The daemon's metric bundle.  Cheap to share (`Arc` everywhere),
/// lock-free on the hot path (relaxed atomic counters, fixed-bucket
/// histograms).
#[derive(Debug)]
pub struct ServeObs {
    clock: Arc<dyn Clock>,
    registry: Arc<Registry>,
    journal: Arc<Journal>,
    connections_total: Arc<Counter>,
    connections_open: Arc<Gauge>,
    bytes_read_total: Arc<Counter>,
    bytes_written_total: Arc<Counter>,
    reports_total: Arc<Counter>,
    decode_nanos: Arc<Histogram>,
    ingest_nanos: Arc<Histogram>,
}

impl ServeObs {
    /// A fresh metric bundle timed by `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Arc<Self> {
        let registry = Arc::new(Registry::new());
        let journal = Arc::new(Journal::new(DEFAULT_JOURNAL_CAPACITY));
        Arc::new(ServeObs {
            connections_total: registry.counter("serve_connections_total"),
            connections_open: registry.gauge("serve_connections_open"),
            bytes_read_total: registry.counter("serve_bytes_read_total"),
            bytes_written_total: registry.counter("serve_bytes_written_total"),
            reports_total: registry.counter("serve_reports_total"),
            decode_nanos: registry.histogram("serve_decode_nanos"),
            ingest_nanos: registry.histogram("serve_ingest_nanos"),
            clock,
            registry,
            journal,
        })
    }

    /// The injected clock timing the histograms and journal.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The registry holding every `serve_*` metric.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The bounded event journal.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    pub(crate) fn connection_opened(&self, conn: u64, open_now: u64) {
        self.connections_total.inc();
        self.connections_open.set(open_now);
        self.journal
            .record(self.clock.now_nanos(), EventKind::ConnectionOpened { conn });
    }

    pub(crate) fn connection_closed(&self, conn: u64, reports: u64, open_now: u64) {
        self.connections_open.set(open_now);
        self.journal.record(
            self.clock.now_nanos(),
            EventKind::ConnectionClosed { conn, reports },
        );
    }

    pub(crate) fn drained(&self, connections: u64, total_reports: u64) {
        self.journal.record(
            self.clock.now_nanos(),
            EventKind::ServerDrained {
                connections,
                total_reports,
            },
        );
    }

    pub(crate) fn frame_read(&self, frame_type: FrameType, bytes: u64) {
        self.registry
            .counter_with("serve_frames_total", &[("type", frame_type.name())])
            .inc();
        self.bytes_read_total.add(bytes);
    }

    pub(crate) fn frame_written(&self, bytes: u64) {
        self.bytes_written_total.add(bytes);
    }

    pub(crate) fn reject(&self, error: &WireError) {
        self.registry
            .counter_with("serve_rejects_total", &[("reason", error.label())])
            .inc();
    }

    pub(crate) fn batch_ingested(&self, reports: u64, decode_nanos: u64, ingest_nanos: u64) {
        self.reports_total.add(reports);
        if self.clock.enabled() {
            self.decode_nanos.record(decode_nanos);
            self.ingest_nanos.record(ingest_nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_obs::ManualClock;

    #[test]
    fn metrics_and_journal_record_what_happened() {
        let clock = Arc::new(ManualClock::new());
        let obs = ServeObs::new(clock.clone());
        obs.connection_opened(0, 1);
        obs.frame_read(FrameType::Batch, 128);
        obs.frame_written(36);
        obs.batch_ingested(50, 1_000, 2_000);
        obs.reject(&WireError::timeout("slowloris"));
        obs.connection_closed(0, 50, 0);
        obs.drained(1, 50);

        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter_value("serve_connections_total", &[]), Some(1));
        assert_eq!(snap.gauge_value("serve_connections_open", &[]), Some(0));
        assert_eq!(
            snap.counter_value("serve_frames_total", &[("type", "batch")]),
            Some(1)
        );
        assert_eq!(snap.counter_value("serve_bytes_read_total", &[]), Some(128));
        assert_eq!(
            snap.counter_value("serve_bytes_written_total", &[]),
            Some(36)
        );
        assert_eq!(snap.counter_value("serve_reports_total", &[]), Some(50));
        assert_eq!(
            snap.counter_value("serve_rejects_total", &[("reason", "timeout")]),
            Some(1)
        );
        let kinds: Vec<&str> = obs
            .journal()
            .events()
            .iter()
            .map(|e| e.kind.name())
            .collect();
        assert_eq!(
            kinds,
            vec!["connection_opened", "connection_closed", "server_drained"]
        );
    }
}
