//! Daemon tuning knobs.

use mdrr_stream::MAX_WIRE_PAYLOAD;

/// Configuration of a [`crate::CollectorServer`].
///
/// All durations are injected-clock nanoseconds: the daemon never reads
/// ambient time (the `no-ambient-clock-in-lib` lint forbids it here), so
/// a test can drive every timeout with a manual clock.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// How many shards the collector fans batches into.
    pub n_shards: usize,
    /// The backpressure window advertised to every client: how many
    /// batch frames may be in flight (unacknowledged) per connection.
    /// Server memory stays bounded regardless — each session reads one
    /// frame at a time into one reusable capped buffer — but the window
    /// bounds how far a client may run ahead of its acks.
    pub window: u32,
    /// Per-frame payload cap, at most [`MAX_WIRE_PAYLOAD`].
    pub max_payload: u32,
    /// Socket poll granularity: how long a blocking accept/read waits
    /// before shutdown flags and deadlines are re-checked.
    pub poll_interval_nanos: u64,
    /// Mid-frame stall budget: once a frame's first byte has arrived,
    /// the rest must arrive within this budget or the connection is
    /// closed with a timeout (the slowloris defence).
    pub frame_budget_nanos: u64,
}

impl Default for ServeConfig {
    /// Four shards, a 64-frame window, the full payload cap, 2 ms polls
    /// and a 2 s mid-frame budget.
    fn default() -> Self {
        ServeConfig {
            n_shards: 4,
            window: 64,
            max_payload: MAX_WIRE_PAYLOAD,
            poll_interval_nanos: 2_000_000,
            frame_budget_nanos: 2_000_000_000,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration, normalizing the payload cap.
    pub(crate) fn validated(mut self) -> Result<Self, crate::ServeError> {
        if self.n_shards == 0 {
            return Err(crate::ServeError::config("n_shards must be positive"));
        }
        if self.window == 0 {
            return Err(crate::ServeError::config("window must be positive"));
        }
        if self.poll_interval_nanos == 0 {
            return Err(crate::ServeError::config(
                "poll_interval_nanos must be positive",
            ));
        }
        if self.frame_budget_nanos == 0 {
            return Err(crate::ServeError::config(
                "frame_budget_nanos must be positive",
            ));
        }
        self.max_payload = self.max_payload.min(MAX_WIRE_PAYLOAD);
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_zeroes_are_rejected() {
        assert!(ServeConfig::default().validated().is_ok());
        for bad in [
            ServeConfig {
                n_shards: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                window: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                poll_interval_nanos: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                frame_budget_nanos: 0,
                ..ServeConfig::default()
            },
        ] {
            assert!(bad.validated().is_err());
        }
        let capped = ServeConfig {
            max_payload: u32::MAX,
            ..ServeConfig::default()
        }
        .validated()
        .unwrap();
        assert_eq!(capped.max_payload, MAX_WIRE_PAYLOAD);
    }
}
