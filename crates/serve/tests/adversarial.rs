//! Adversarial wire-protocol tests, mirroring the snapshot store's
//! corruption corpus (`crates/store/tests/proptest_store.rs`).
//!
//! The load-bearing claims:
//!
//! 1. *every* truncation of a valid frame — all lengths from 0 to one
//!    byte short — decodes to a typed [`WireError`], never a panic;
//! 2. *every* single-bit flip of a valid frame is detected (the CRC-64
//!    trailer covers header and payload, and CRC-64 detects all
//!    single-bit errors) and decodes to a typed error;
//! 3. a hand-crafted corpus of hostile frames — wrong magic, future
//!    version, unknown type, reserved bits, lying length fields,
//!    overflowing batch dimensions — each maps to the *specific* typed
//!    error, and an oversized declared length is rejected before any
//!    buffer is sized from it;
//! 4. a live server answers hostile bytes with typed `error` frames and
//!    keeps serving well-formed clients afterwards.

mod common;

use mdrr_obs::MonotonicClock;
use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
use mdrr_serve::ServeConfig;
use mdrr_stream::wire::{
    self, decode_frame, decode_header, encode_frame, error_code, Hello, BATCH_PAYLOAD_HEADER_LEN,
    WIRE_HEADER_LEN,
};
use mdrr_stream::{
    ClientConfig, FrameType, ReportBatch, WireClient, WireError, MAX_WIRE_PAYLOAD, WIRE_MAGIC,
};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A valid batch frame with proptest-chosen dimensions and codes.
fn batch_frame_strategy() -> impl Strategy<Value = Vec<u8>> {
    (1usize..4, 0usize..12, any::<u64>(), any::<u32>()).prop_flat_map(
        |(n_channels, n_reports, seq, shard)| {
            prop::collection::vec(any::<u32>(), n_channels * n_reports).prop_map(move |codes| {
                let mut batch = ReportBatch::new(n_channels).unwrap();
                for (c, channel) in batch.channels_mut().iter_mut().enumerate() {
                    channel.extend((0..n_reports).map(|i| codes[c * n_reports + i]));
                }
                let payload = wire::encode_batch_payload(seq, shard, &batch).unwrap();
                encode_frame(FrameType::Batch, &payload).unwrap()
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Claim 1: every truncation of every valid frame is a typed error.
    #[test]
    fn every_truncation_is_a_typed_error(frame in batch_frame_strategy()) {
        for keep in 0..frame.len() {
            let truncated = &frame[..keep];
            let decoded = decode_frame(truncated);
            prop_assert!(
                decoded.is_err(),
                "truncation to {keep}/{} bytes decoded successfully",
                frame.len()
            );
        }
        // The untruncated frame still round-trips.
        prop_assert!(decode_frame(&frame).is_ok());
    }

    /// Claim 2: every single-bit flip of every valid frame is detected.
    #[test]
    fn every_single_bit_flip_is_detected(frame in batch_frame_strategy()) {
        let mut flipped = frame.clone();
        for byte in 0..frame.len() {
            for bit in 0..8u8 {
                flipped[byte] ^= 1 << bit;
                let decoded = decode_frame(&flipped);
                prop_assert!(
                    decoded.is_err(),
                    "flipping bit {bit} of byte {byte} went undetected"
                );
                // Batch *payload* decoding after a flip in the payload must
                // also never panic (it runs before CRC rejection on the
                // server only for valid frames, but the decoder itself must
                // hold on arbitrary bytes).
                let mut out = ReportBatch::new(3).unwrap();
                let _ = wire::decode_batch_payload(wire::frame_payload(&flipped), &mut out);
                flipped[byte] ^= 1 << bit; // restore
            }
        }
        prop_assert_eq!(&flipped, &frame);
    }

    /// The batch-payload decoder holds on arbitrary bytes: typed error or
    /// clean decode, never a panic, never an unchecked allocation.
    #[test]
    fn arbitrary_batch_payloads_never_panic(payload in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut out = ReportBatch::new(3).unwrap();
        let _ = wire::decode_batch_payload(&payload, &mut out);
    }
}

/// Claim 3: the hand-crafted hostile corpus maps to field-specific errors.
#[test]
fn hostile_corpus_yields_field_specific_errors() {
    let valid = encode_frame(FrameType::Goodbye, &[]).unwrap();

    // Empty and sub-header inputs.
    assert!(matches!(
        decode_frame(&[]),
        Err(WireError::Truncated { .. })
    ));
    assert!(matches!(
        decode_frame(&valid[..WIRE_HEADER_LEN - 1]),
        Err(WireError::Truncated { .. })
    ));

    // Wrong magic.
    let mut bad = valid.clone();
    bad[..8].copy_from_slice(b"NOTMDRR!");
    assert!(matches!(
        decode_frame(&bad),
        Err(WireError::BadMagic { .. })
    ));

    // Future version.
    let mut bad = valid.clone();
    bad[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        decode_frame(&bad),
        Err(WireError::UnsupportedVersion { found: 99, .. })
    ));

    // Unknown frame type.
    let mut bad = valid.clone();
    bad[12] = 0xEE;
    assert!(matches!(
        decode_frame(&bad),
        Err(WireError::UnknownFrameType { found: 0xEE })
    ));

    // Reserved bytes must be zero.
    let mut bad = valid.clone();
    bad[14] = 7;
    assert!(matches!(
        decode_frame(&bad),
        Err(WireError::ReservedNonZero { .. })
    ));

    // Declared length beyond the cap: rejected at the *header*, before
    // any payload bytes exist to buffer — the cap-before-alloc property.
    let mut header = valid[..WIRE_HEADER_LEN].to_vec();
    header[16..20].copy_from_slice(&(MAX_WIRE_PAYLOAD + 1).to_le_bytes());
    assert!(matches!(
        decode_header(&header),
        Err(WireError::Oversized { .. })
    ));
    // Same lying header inside a short frame: still Oversized, not an
    // attempt to read (or allocate) 16 MiB.
    assert!(matches!(
        decode_frame(&header),
        Err(WireError::Oversized { .. })
    ));

    // Trailing bytes after the trailer.
    let mut bad = valid.clone();
    bad.push(0);
    assert!(matches!(
        decode_frame(&bad),
        Err(WireError::Malformed { .. })
    ));

    // Corrupted CRC trailer.
    let mut bad = valid.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0xFF;
    assert!(matches!(
        decode_frame(&bad),
        Err(WireError::ChecksumMismatch { .. })
    ));

    // Zero-length payload where JSON is required.
    assert!(matches!(
        wire::decode_json::<Hello>("hello", &[]),
        Err(WireError::Malformed { .. })
    ));

    // Batch dimensions that lie: counts whose product overflows.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&0u32.to_le_bytes());
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // n_channels
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // n_reports
    let mut out = ReportBatch::new(3).unwrap();
    assert!(wire::decode_batch_payload(&payload, &mut out).is_err());

    // Batch that declares more code bytes than it carries.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&0u32.to_le_bytes());
    payload.extend_from_slice(&3u32.to_le_bytes());
    payload.extend_from_slice(&1000u32.to_le_bytes());
    payload.extend_from_slice(&[0u8; 8]); // far fewer than 3*1000*4 bytes
    assert!(matches!(
        wire::decode_batch_payload(&payload, &mut out),
        Err(WireError::Malformed { .. })
    ));

    // Channel-count mismatch against the receiver's protocol shape.
    let mut one_channel = ReportBatch::new(1).unwrap();
    one_channel.channels_mut()[0].push(0);
    let payload = wire::encode_batch_payload(9, 0, &one_channel).unwrap();
    assert!(matches!(
        wire::decode_batch_payload(&payload, &mut out),
        Err(WireError::SpecMismatch { .. })
    ));

    assert_eq!(
        payload.len(),
        BATCH_PAYLOAD_HEADER_LEN + 4,
        "batch payload layout drifted from docs/WIRE.md"
    );
}

/// Reads one reply frame from a raw socket, polling with a short read
/// timeout and bounded patience.
fn read_reply(stream: &mut TcpStream) -> Result<Option<(FrameType, Vec<u8>)>, WireError> {
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    let mut polls = 0u32;
    let mut wait = move |_: usize| -> Result<(), WireError> {
        polls += 1;
        if polls > 500 {
            return Err(WireError::timeout("no reply within 10s"));
        }
        Ok(())
    };
    let mut buf = Vec::new();
    let got = wire::read_frame(stream, &mut buf, &mut wait)?;
    Ok(got.map(|frame_type| (frame_type, wire::frame_payload(&buf).to_vec())))
}

/// Claim 4a: garbage bytes on the socket get a typed `error` frame and
/// the server keeps serving fresh, well-formed clients.
#[test]
fn server_survives_garbage_and_keeps_serving() {
    let schema = common::schema();
    let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    let (server, obs) = common::start_server(&schema, &spec, ServeConfig::default());
    let addr = server.local_addr();

    // A client that opens with bytes that are not even a frame header.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n____").unwrap();
    raw.flush().unwrap();
    let reply = read_reply(&mut raw).unwrap();
    let (frame_type, payload) = reply.expect("server should answer before closing");
    assert_eq!(frame_type, FrameType::Error);
    let (code, message) = wire::decode_error_payload(&payload).unwrap();
    assert_eq!(code, error_code::MALFORMED, "unexpected message: {message}");
    drop(raw);

    // A client that speaks a different spec gets a spec_mismatch error.
    let other_spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.9));
    let refused = WireClient::connect(
        addr,
        schema.clone(),
        other_spec,
        ClientConfig::default(),
        Arc::new(MonotonicClock::new()),
    );
    match refused {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, error_code::SPEC_MISMATCH),
        other => panic!("expected a remote spec_mismatch refusal, got {other:?}"),
    }

    // A batch with out-of-range codes is refused with a typed error…
    let protocol = spec.build_arc(&schema).unwrap();
    let mut client = WireClient::connect(
        addr,
        schema.clone(),
        spec.clone(),
        ClientConfig::default(),
        Arc::new(MonotonicClock::new()),
    )
    .unwrap();
    let mut hostile = ReportBatch::new(protocol.channel_sizes().len()).unwrap();
    for channel in hostile.channels_mut() {
        channel.push(u32::MAX); // far out of every channel's range
    }
    client.send_batch(0, &hostile).unwrap();
    match client.flush() {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, error_code::MALFORMED),
        other => panic!("expected a remote refusal of hostile codes, got {other:?}"),
    }

    // …and the server is still healthy: a well-formed client round-trips.
    let mut good = WireClient::connect(
        addr,
        schema.clone(),
        spec.clone(),
        ClientConfig::default(),
        Arc::new(MonotonicClock::new()),
    )
    .unwrap();
    let batch = common::deterministic_batch(&protocol.channel_sizes(), 1, 20);
    good.send_batch(0, &batch).unwrap();
    good.flush().unwrap();
    assert_eq!(good.acked_reports(), 20);
    assert_eq!(good.close().unwrap(), 20);

    let snap = obs.registry().snapshot();
    let rejects: u64 = ["malformed", "spec_mismatch", "protocol", "bad_magic"]
        .iter()
        .filter_map(|reason| snap.counter_value("serve_rejects_total", &[("reason", reason)]))
        .sum();
    assert!(rejects >= 3, "expected the hostile attempts to be metered");

    let drained = server.drain().unwrap();
    assert_eq!(drained.acked_reports, 20);
}

/// Claim 4b: a frame whose *header* declares an oversized payload is cut
/// off at the header — the server never tries to read (or allocate) the
/// declared 16 MiB+.
#[test]
fn oversized_declared_length_is_refused_at_the_header() {
    let schema = common::schema();
    let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    let (server, _obs) = common::start_server(&schema, &spec, ServeConfig::default());

    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(&WIRE_MAGIC);
    header.extend_from_slice(&mdrr_stream::WIRE_VERSION.to_le_bytes());
    header.push(0x01); // hello
    header.extend_from_slice(&[0u8; 3]);
    header.extend_from_slice(&(MAX_WIRE_PAYLOAD + 1).to_le_bytes());
    raw.write_all(&header).unwrap();
    raw.flush().unwrap();

    let reply = read_reply(&mut raw).unwrap();
    let (frame_type, payload) = reply.expect("server should refuse the header with an error");
    assert_eq!(frame_type, FrameType::Error);
    let (code, _) = wire::decode_error_payload(&payload).unwrap();
    assert_eq!(code, error_code::MALFORMED);

    drop(raw);
    let drained = server.drain().unwrap();
    assert_eq!(drained.acked_reports, 0);
}
