//! Fault-path tests: misbehaving clients and mid-traffic drains.
//!
//! Three scenarios, each asserting the two halves of the daemon's
//! contract under faults: (1) *zero accepted-report loss* — every report
//! that was acknowledged is present after the fault (and after a
//! restore, for the drain case); (2) *typed failure* — the surviving
//! peer sees a typed [`WireError`] / error frame, never a hang or a
//! panic, and the server keeps serving other clients.

mod common;

use mdrr_obs::MonotonicClock;
use mdrr_serve::ServeConfig;
use mdrr_stream::wire::{self, error_code, Hello};
use mdrr_stream::{ClientConfig, FrameType, ShardedCollector, WireClient, WireError};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Performs a raw (non-SDK) handshake on `stream`.
fn raw_handshake(stream: &mut TcpStream, hello: &Hello) {
    let payload = wire::encode_json("hello", hello).unwrap();
    wire::write_frame(stream, FrameType::Hello, &payload).unwrap();
    let mut buf = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    let mut polls = 0u32;
    let mut wait = move |_: usize| -> Result<(), WireError> {
        polls += 1;
        if polls > 500 {
            return Err(WireError::timeout("no hello ack within 10s"));
        }
        Ok(())
    };
    let got = wire::read_frame(stream, &mut buf, &mut wait).unwrap();
    assert_eq!(got, Some(FrameType::HelloAck));
}

#[test]
fn mid_frame_disconnect_is_survived_and_metered() {
    let schema = common::schema();
    let spec = common::all_specs().into_iter().next().unwrap();
    let protocol = spec.build_arc(&schema).unwrap();
    let (server, obs) = common::start_server(&schema, &spec, ServeConfig::default());
    let addr = server.local_addr();

    // A well-behaved client first, so loss would be observable.
    let mut good = WireClient::connect(
        addr,
        schema.clone(),
        spec.clone(),
        ClientConfig::default(),
        Arc::new(MonotonicClock::new()),
    )
    .unwrap();
    let batch = common::deterministic_batch(&protocol.channel_sizes(), 3, 30);
    good.send_batch(0, &batch).unwrap();
    good.flush().unwrap();
    assert_eq!(good.acked_reports(), 30);

    // The faulty client: handshake, then die 10 bytes into a batch frame.
    let mut faulty = TcpStream::connect(addr).unwrap();
    let hello = Hello {
        schema: schema.clone(),
        spec: spec.clone(),
    };
    raw_handshake(&mut faulty, &hello);
    let payload = wire::encode_batch_payload(0, 0, &batch).unwrap();
    let frame = wire::encode_frame(FrameType::Batch, &payload).unwrap();
    faulty.write_all(&frame[..10]).unwrap();
    faulty.flush().unwrap();
    drop(faulty);

    // The server notices the mid-frame close and meters it as a typed
    // reject — no panic, no stuck session.
    assert!(
        common::wait_until(|| {
            obs.registry()
                .snapshot()
                .counter_value("serve_rejects_total", &[("reason", "closed")])
                .unwrap_or(0)
                >= 1
        }),
        "mid-frame disconnect was never metered as a closed reject"
    );

    // The surviving client still works, and nothing acknowledged was lost.
    good.send_batch(1, &batch).unwrap();
    good.flush().unwrap();
    assert_eq!(good.acked_reports(), 60);
    good.close().unwrap();

    let drained = server.drain().unwrap();
    assert_eq!(drained.acked_reports, 60, "acknowledged reports were lost");
    assert_eq!(drained.collector.total_reports(), 60);
}

#[test]
fn slowloris_hits_the_frame_budget_and_is_cut_off() {
    let schema = common::schema();
    let spec = common::all_specs().into_iter().next().unwrap();
    let protocol = spec.build_arc(&schema).unwrap();
    let config = ServeConfig {
        // A tight mid-frame budget so the test is fast: 100 ms.
        frame_budget_nanos: 100_000_000,
        poll_interval_nanos: 2_000_000,
        ..ServeConfig::default()
    };
    let (server, obs) = common::start_server(&schema, &spec, config);
    let addr = server.local_addr();

    let mut slow = TcpStream::connect(addr).unwrap();
    let hello = Hello {
        schema: schema.clone(),
        spec: spec.clone(),
    };
    raw_handshake(&mut slow, &hello);

    // Dribble a valid batch frame one byte per 25 ms: the frame budget
    // expires after ~4 bytes.
    let batch = common::deterministic_batch(&protocol.channel_sizes(), 5, 40);
    let payload = wire::encode_batch_payload(0, 0, &batch).unwrap();
    let frame = wire::encode_frame(FrameType::Batch, &payload).unwrap();
    for byte in &frame {
        if slow.write_all(std::slice::from_ref(byte)).is_err() {
            break; // the server already cut us off
        }
        std::thread::sleep(Duration::from_millis(25));
        let timed_out = obs
            .registry()
            .snapshot()
            .counter_value("serve_rejects_total", &[("reason", "timeout")])
            .unwrap_or(0)
            >= 1;
        if timed_out {
            break;
        }
    }
    assert!(
        common::wait_until(|| {
            obs.registry()
                .snapshot()
                .counter_value("serve_rejects_total", &[("reason", "timeout")])
                .unwrap_or(0)
                >= 1
        }),
        "the slowloris connection never hit the frame budget"
    );

    // The client side sees a typed outcome: either the server's timeout
    // error frame, or a typed I/O failure once the socket is torn down.
    slow.set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    let mut buf = Vec::new();
    let mut polls = 0u32;
    let mut wait = move |_: usize| -> Result<(), WireError> {
        polls += 1;
        if polls > 250 {
            return Err(WireError::timeout("no verdict within 5s"));
        }
        Ok(())
    };
    match wire::read_frame(&mut slow, &mut buf, &mut wait) {
        Ok(Some(FrameType::Error)) => {
            let (code, message) = wire::decode_error_payload(wire::frame_payload(&buf)).unwrap();
            assert_eq!(code, error_code::TIMEOUT, "unexpected verdict: {message}");
        }
        Ok(Some(other)) => panic!("expected an error frame, got {other}"),
        Ok(None) | Err(WireError::Io { .. }) | Err(WireError::Closed { .. }) => {}
        Err(other) => panic!("expected a typed cut-off, got {other}"),
    }
    drop(slow);

    // The server is still healthy afterwards.
    let mut good = WireClient::connect(
        addr,
        schema.clone(),
        spec.clone(),
        ClientConfig::default(),
        Arc::new(MonotonicClock::new()),
    )
    .unwrap();
    good.send_batch(0, &batch).unwrap();
    good.flush().unwrap();
    assert_eq!(good.close().unwrap(), 40);

    let drained = server.drain().unwrap();
    assert_eq!(drained.acked_reports, 40);
}

#[test]
fn drain_mid_send_loses_no_acknowledged_report() {
    let schema = common::schema();
    let spec = common::all_specs().into_iter().next().unwrap();
    let protocol = spec.build_arc(&schema).unwrap();
    let sizes = protocol.channel_sizes();
    let (server, _obs) = common::start_server(&schema, &spec, ServeConfig::default());
    let addr = server.local_addr();

    // Two clients streaming as fast as they can until the drain cuts
    // them off; each returns its acked ledger and the typed error that
    // ended it.
    let workers: Vec<_> = (0..2u32)
        .map(|c| {
            let schema = schema.clone();
            let spec = spec.clone();
            let batch = common::deterministic_batch(&sizes, 11 + c as u64, 50);
            std::thread::spawn(move || {
                let mut client = WireClient::connect(
                    addr,
                    schema,
                    spec,
                    ClientConfig::default(),
                    Arc::new(MonotonicClock::new()),
                )
                .unwrap();
                let error = loop {
                    match client.send_batch(c, &batch) {
                        Ok(_) => {}
                        Err(e) => break e,
                    }
                };
                (client.acked_reports(), error)
            })
        })
        .collect();

    // Let traffic build up, then drain mid-stream.
    assert!(
        common::wait_until(|| server.acked_reports() >= 500),
        "clients never got going"
    );
    let dir = common::scratch_dir("drain-mid-send");
    let (manifest, drained) = server
        .drain_to_checkpoint(&dir, Some("drain test"))
        .unwrap();

    let mut client_acked_sum = 0u64;
    for worker in workers {
        let (acked, error) = worker.join().unwrap();
        client_acked_sum += acked;
        match error {
            WireError::Remote { code, .. } => assert_eq!(code, error_code::DRAINING),
            WireError::Closed { .. } | WireError::Io { .. } | WireError::Timeout { .. } => {}
            other => panic!("expected a typed drain cut-off, got {other}"),
        }
    }

    // Zero accepted-report loss: every report a client saw acked is in
    // the drained collector, the manifest, and the restored state.
    assert!(
        drained.acked_reports >= client_acked_sum,
        "server acked {} but clients hold acks for {client_acked_sum}",
        drained.acked_reports
    );
    assert_eq!(manifest.total_reports, drained.acked_reports);
    let restored = ShardedCollector::restore(&dir).unwrap();
    assert_eq!(restored.collector.total_reports(), drained.acked_reports);
    assert_eq!(restored.collector.shards(), drained.collector.shards());
    assert_eq!(restored.app_state.as_deref(), Some("drain test"));
    std::fs::remove_dir_all(&dir).ok();
}
