//! Shared fixtures for the serve integration suites.
#![allow(dead_code)]

use mdrr_data::{Attribute, Schema};
use mdrr_obs::MonotonicClock;
use mdrr_protocols::{AdjustmentConfig, Clustering, ProtocolSpec, RandomizationLevel};
use mdrr_serve::{CollectorServer, ServeConfig, ServeObs};
use mdrr_stream::{Report, ReportBatch};
use std::path::PathBuf;
use std::sync::Arc;

/// The suites' 3-attribute schema (cardinalities 3 × 4 × 2).
pub fn schema() -> Schema {
    Schema::new(vec![
        Attribute::indexed("A", 3).unwrap(),
        Attribute::indexed("B", 4).unwrap(),
        Attribute::indexed("C", 2).unwrap(),
    ])
    .unwrap()
}

/// All four `ProtocolSpec` shapes over [`schema`].
pub fn all_specs() -> Vec<ProtocolSpec> {
    let level = RandomizationLevel::KeepProbability(0.7);
    vec![
        ProtocolSpec::independent(level.clone()),
        ProtocolSpec::joint(level.clone()),
        ProtocolSpec::clusters(
            level.clone(),
            Clustering::new(vec![vec![0, 1], vec![2]], 3).unwrap(),
        ),
        ProtocolSpec::independent(level).adjusted(AdjustmentConfig::default()),
    ]
}

/// A deterministic batch: codes are a fixed function of `(seed, report,
/// channel)` and always in range for `channel_sizes`, so the same seed
/// yields the same batch on every run and on both sides of a socket.
pub fn deterministic_batch(channel_sizes: &[usize], seed: u64, n_reports: usize) -> ReportBatch {
    let mut batch = ReportBatch::new(channel_sizes.len()).unwrap();
    for i in 0..n_reports {
        let codes: Vec<u32> = channel_sizes
            .iter()
            .enumerate()
            .map(|(c, &size)| {
                let mix = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((i as u64).wrapping_mul(31))
                    .wrapping_add((c as u64).wrapping_mul(17));
                (mix % size as u64) as u32
            })
            .collect();
        batch.push(&Report::new(codes)).unwrap();
    }
    batch
}

/// Binds an instrumented server on an ephemeral loopback port.
pub fn start_server(
    schema: &Schema,
    spec: &ProtocolSpec,
    config: ServeConfig,
) -> (CollectorServer, Arc<ServeObs>) {
    let clock = Arc::new(MonotonicClock::new());
    let obs = ServeObs::new(clock.clone());
    let server = CollectorServer::bind(
        "127.0.0.1:0",
        schema,
        spec,
        config,
        clock,
        Some(obs.clone()),
    )
    .unwrap();
    (server, obs)
}

/// A fresh scratch directory under the system temp root, unique per
/// process and per call.
pub fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("mdrr-serve-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Spin-waits (real time) until `predicate` holds or ~5 s elapse.
pub fn wait_until(mut predicate: impl FnMut() -> bool) -> bool {
    for _ in 0..500 {
        if predicate() {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    predicate()
}
