//! Executable proof that `docs/WIRE.md` is sufficient for an external
//! implementer: a real frame is hand-decoded using nothing but the byte
//! offsets documented there, and the doc's worked example can be
//! regenerated with the ignored printer below.

mod common;

use mdrr_store::crc64;
use mdrr_stream::wire::{self, WIRE_HEADER_LEN, WIRE_TRAILER_LEN};
use mdrr_stream::{FrameType, ReportBatch, WIRE_MAGIC, WIRE_VERSION};

/// The doc's reference frame: a batch with `seq` 7, shard hint 2, two
/// channels of three reports each.
fn reference_frame() -> Vec<u8> {
    let mut batch = ReportBatch::new(2).unwrap();
    batch.channels_mut()[0].extend([1u32, 0, 2]);
    batch.channels_mut()[1].extend([3u32, 1, 0]);
    let payload = wire::encode_batch_payload(7, 2, &batch).unwrap();
    wire::encode_frame(FrameType::Batch, &payload).unwrap()
}

/// Hand-decodes [`reference_frame`] by the WIRE.md offset table alone.
#[test]
fn wire_md_offsets_hand_decode_a_real_frame() {
    let frame = reference_frame();

    // WIRE.md §framing: fixed 20-byte header.
    assert_eq!(&frame[0..8], &WIRE_MAGIC, "[0,8) magic");
    let version = u32::from_le_bytes(frame[8..12].try_into().unwrap());
    assert_eq!(version, WIRE_VERSION, "[8,12) version");
    assert_eq!(frame[12], 0x03, "[12] frame type = batch");
    assert_eq!(&frame[13..16], &[0, 0, 0], "[13,16) reserved, must be zero");
    let payload_len = u32::from_le_bytes(frame[16..20].try_into().unwrap()) as usize;
    assert_eq!(
        frame.len(),
        WIRE_HEADER_LEN + payload_len + WIRE_TRAILER_LEN,
        "[16,20) payload length frames the rest"
    );

    // WIRE.md §batch payload: 20-byte batch header, then C×R codes
    // channel-major.
    let payload = &frame[WIRE_HEADER_LEN..WIRE_HEADER_LEN + payload_len];
    let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    assert_eq!(seq, 7, "payload [0,8) sequence number");
    let shard = u32::from_le_bytes(payload[8..12].try_into().unwrap());
    assert_eq!(shard, 2, "payload [8,12) shard hint");
    let n_channels = u32::from_le_bytes(payload[12..16].try_into().unwrap());
    assert_eq!(n_channels, 2, "payload [12,16) channel count");
    let n_reports = u32::from_le_bytes(payload[16..20].try_into().unwrap());
    assert_eq!(n_reports, 3, "payload [16,20) report count");
    let codes: Vec<u32> = payload[20..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(codes, vec![1, 0, 2, 3, 1, 0], "codes, channel-major");
    assert_eq!(payload.len(), 20 + 4 * 2 * 3);

    // WIRE.md §integrity: trailing CRC-64/XZ over everything before it.
    let body_len = frame.len() - WIRE_TRAILER_LEN;
    let stored = u64::from_le_bytes(frame[body_len..].try_into().unwrap());
    assert_eq!(stored, crc64(&frame[..body_len]), "trailer CRC-64/XZ");

    // And the reference decoder agrees end to end.
    let (frame_type, decoded_payload) = wire::decode_frame(&frame).unwrap();
    assert_eq!(frame_type, FrameType::Batch);
    let mut out = ReportBatch::new(2).unwrap();
    let header = wire::decode_batch_payload(decoded_payload, &mut out).unwrap();
    assert_eq!((header.seq, header.shard), (7, 2));
}

/// WIRE.md documents every frame-type discriminant; pin them here so a
/// renumbering cannot slip through as a silent wire break.
#[test]
fn frame_type_discriminants_match_wire_md() {
    let documented: [(FrameType, u8); 11] = [
        (FrameType::Hello, 0x01),
        (FrameType::HelloAck, 0x02),
        (FrameType::Batch, 0x03),
        (FrameType::BatchAck, 0x04),
        (FrameType::StatsQuery, 0x05),
        (FrameType::Stats, 0x06),
        (FrameType::SnapshotQuery, 0x07),
        (FrameType::Snapshot, 0x08),
        (FrameType::Goodbye, 0x09),
        (FrameType::GoodbyeAck, 0x0A),
        (FrameType::Error, 0x0B),
    ];
    assert_eq!(documented.len(), FrameType::ALL.len());
    for (frame_type, byte) in documented {
        assert_eq!(frame_type.as_byte(), byte, "{frame_type} renumbered");
        assert_eq!(FrameType::from_byte(byte), Some(frame_type));
    }
}

/// Regenerates the annotated dump in `docs/WIRE.md` §Worked example
/// (run with `cargo test -p mdrr-serve --test wire_doc -- --ignored
/// print_reference --nocapture` after a wire change and refresh the doc).
#[test]
#[ignore]
fn print_reference_frame_hexdump() {
    let frame = reference_frame();
    println!("{} bytes:", frame.len());
    for (i, chunk) in frame.chunks(16).enumerate() {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        let ascii: String = chunk
            .iter()
            .map(|&b| {
                if (0x20..0x7f).contains(&b) {
                    b as char
                } else {
                    '.'
                }
            })
            .collect();
        println!("{:08x}  {:<47}  |{ascii}|", i * 16, hex.join(" "));
    }
}
