//! End-to-end loopback equivalence: the network is transparent.
//!
//! N clients stream K batches each through a real TCP socket; the same
//! batches, routed with the same `hint % n_shards` rule, are fed to an
//! in-process [`ShardedCollector`] via `ingest_batch`.  For all four
//! `ProtocolSpec` shapes, the drained server's shards must equal the
//! reference's exactly, and checkpoints of both must be *byte-identical*
//! file for file — counts are exact commutative sums, so thread
//! interleaving on the server cannot change the result.

mod common;

use mdrr_obs::MonotonicClock;
use mdrr_serve::ServeConfig;
use mdrr_store::Snapshot;
use mdrr_stream::{ClientConfig, ReportBatch, ShardedCollector, WireClient};
use std::sync::Arc;

const N_CLIENTS: usize = 3;
const K_BATCHES: usize = 4;
const REPORTS_PER_BATCH: usize = 40;
const N_SHARDS: usize = 3;

#[test]
fn socket_ingest_equals_in_process_ingest_for_every_spec() {
    let schema = common::schema();
    for (spec_index, spec) in common::all_specs().into_iter().enumerate() {
        let protocol = spec.build_arc(&schema).unwrap();
        let sizes = protocol.channel_sizes();

        // The shared seed: client c's batch b is deterministic_batch with
        // seed (spec, c, b) and shard hint c*K+b, on both sides.
        let batches: Vec<Vec<ReportBatch>> = (0..N_CLIENTS)
            .map(|c| {
                (0..K_BATCHES)
                    .map(|b| {
                        let seed = (spec_index * 1000 + c * 100 + b) as u64;
                        common::deterministic_batch(&sizes, seed, REPORTS_PER_BATCH)
                    })
                    .collect()
            })
            .collect();

        // Reference: in-process ingestion, single thread.
        let mut reference = ShardedCollector::new(protocol.clone(), N_SHARDS).unwrap();
        for (c, client_batches) in batches.iter().enumerate() {
            for (b, batch) in client_batches.iter().enumerate() {
                let hint = (c * K_BATCHES + b) as u32;
                reference
                    .ingest_batch(hint as usize % N_SHARDS, batch)
                    .unwrap();
            }
        }

        // Same reports through real sockets, concurrently.
        let config = ServeConfig {
            n_shards: N_SHARDS,
            ..ServeConfig::default()
        };
        let (server, _obs) = common::start_server(&schema, &spec, config);
        let addr = server.local_addr();
        let workers: Vec<_> = batches
            .iter()
            .enumerate()
            .map(|(c, client_batches)| {
                let schema = schema.clone();
                let spec = spec.clone();
                let client_batches = client_batches.clone();
                std::thread::spawn(move || {
                    let mut client = WireClient::connect(
                        addr,
                        schema,
                        spec,
                        ClientConfig::default(),
                        Arc::new(MonotonicClock::new()),
                    )
                    .unwrap();
                    for (b, batch) in client_batches.iter().enumerate() {
                        let hint = (c * K_BATCHES + b) as u32;
                        client.send_batch(hint, batch).unwrap();
                    }
                    client.flush().unwrap();
                    let acked = client.acked_reports();
                    // close() returns the *server-wide* total, which is
                    // racy across clients; only bound it from below.
                    assert!(client.close().unwrap() >= acked);
                    acked
                })
            })
            .collect();
        for worker in workers {
            assert_eq!(
                worker.join().unwrap(),
                (K_BATCHES * REPORTS_PER_BATCH) as u64
            );
        }
        let drained = server.drain().unwrap();
        assert_eq!(
            drained.acked_reports,
            (N_CLIENTS * K_BATCHES * REPORTS_PER_BATCH) as u64,
            "spec #{spec_index} lost acknowledged reports"
        );

        // Shard-for-shard equality of the live state…
        assert_eq!(
            drained.collector.shards(),
            reference.shards(),
            "spec #{spec_index}: socket and in-process ingestion diverged"
        );

        // …and byte-identical checkpoints on disk.
        let socket_dir = common::scratch_dir("loopback-socket");
        let local_dir = common::scratch_dir("loopback-local");
        drained.checkpoint(&socket_dir, Some("loopback")).unwrap();
        reference
            .checkpoint(&spec, &local_dir, Some("loopback"))
            .unwrap();
        let mut socket_files: Vec<_> = std::fs::read_dir(&socket_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        socket_files.sort();
        let mut local_files: Vec<_> = std::fs::read_dir(&local_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        local_files.sort();
        assert_eq!(socket_files, local_files);
        for name in &socket_files {
            if *name == *mdrr_stream::MANIFEST_FILE {
                // The manifest embeds a wall-clock timestamp; compare the
                // shard snapshot files, which are the durable counts.
                continue;
            }
            let socket_bytes = std::fs::read(socket_dir.join(name)).unwrap();
            let local_bytes = std::fs::read(local_dir.join(name)).unwrap();
            assert_eq!(
                socket_bytes, local_bytes,
                "spec #{spec_index}: checkpoint file {name:?} differs"
            );
        }
        std::fs::remove_dir_all(&socket_dir).ok();
        std::fs::remove_dir_all(&local_dir).ok();
    }
}

/// The snapshot query frame returns the merged state in the durable
/// `docs/FORMAT.md` encoding, equal to merging the reference in process.
#[test]
fn snapshot_query_returns_the_merged_state() {
    let schema = common::schema();
    let spec = common::all_specs().into_iter().next().unwrap();
    let protocol = spec.build_arc(&schema).unwrap();
    let sizes = protocol.channel_sizes();

    let (server, _obs) = common::start_server(&schema, &spec, ServeConfig::default());
    let mut client = WireClient::connect(
        server.local_addr(),
        schema.clone(),
        spec.clone(),
        ClientConfig::default(),
        Arc::new(MonotonicClock::new()),
    )
    .unwrap();

    let mut reference = ShardedCollector::new(protocol, 4).unwrap();
    for b in 0..3 {
        let batch = common::deterministic_batch(&sizes, 7 + b as u64, 25);
        client.send_batch(b, &batch).unwrap();
        reference.ingest_batch(b as usize % 4, &batch).unwrap();
    }
    client.flush().unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.total_reports, 75);
    assert_eq!(stats.n_shards, 4);
    assert_eq!(stats.shard_reports.iter().sum::<u64>(), 75);
    assert!(stats.quarantined.is_empty());

    let bytes = client.snapshot_bytes().unwrap();
    let over_wire = Snapshot::from_bytes(&bytes).unwrap();
    let merged = reference.merged().unwrap();
    assert_eq!(over_wire.n_reports(), merged.n_reports());
    assert_eq!(over_wire.counts(), merged.counts());
    assert_eq!(over_wire.schema(), &schema);
    assert_eq!(over_wire.spec(), &spec);

    client.close().unwrap();
    let drained = server.drain().unwrap();
    assert_eq!(drained.acked_reports, 75);
    assert_eq!(drained.connections, 1);
}
